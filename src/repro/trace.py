"""``python -m repro.trace`` — capture and export structured traces.

Runs the Figure-7 single-packet experiment with tracing on, then exports
the structured spans + trace records as a Chrome ``trace_event`` JSON
document (open it at https://ui.perfetto.dev or ``chrome://tracing``) or
as a human-readable span listing.  On top of the component spans the
exporter adds one synthetic complete span per Figure-7 pipeline stage
(scope ``fig7.pipeline``), so the paper's stage breakdown is directly
visible as a lane in the viewer.

The ``fig4-point`` experiment instead captures one bulk-transfer run
with *journey tracing* on: every message is followed send → fragment →
wire → switch → IRQ → reassembly → deliver (with retransmit genealogy
under injected loss), queue depths are sampled as time series, and the
Chrome export contains flow events (message arrows) plus counter
events (queue graphs).

Typical invocations::

    python -m repro.trace --chrome -o fig7.trace.json
    python -m repro.trace --variant direct --spans
    python -m repro.trace --summary --top 10
    python -m repro.trace --artifact fig7.artifact.json
    python -m repro.trace --input fig7.artifact.json --chrome
    python -m repro.trace --experiment fig4-point --loss 0.02 --outliers 5
    python -m repro.trace --experiment fig4-point --journey 3

``--source``/``--event`` filter the exported records (and, for
``--source``, the spans) by scope prefix / event name.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .obs import (
    HealthWatchdog,
    Objective,
    RunArtifact,
    SLOSpec,
    chrome_trace_json,
    evaluate,
    journey_latency_summary,
    outlier_report,
    records_of,
    render_html,
    spans_of,
    timeseries_of,
    waterfall_table,
)

__all__ = ["PIPELINE_SCOPE", "capture_fig4_point", "capture_fig7",
           "fig4_point_slo", "main"]

#: scope of the synthetic per-stage spans added on top of component spans
PIPELINE_SCOPE = "fig7.pipeline"


def _stage_spans(timeline, first_id: int) -> List[Dict[str, Any]]:
    """Synthetic complete spans, one per Figure-7 pipeline stage."""
    return [
        {
            "id": first_id + i,
            "scope": PIPELINE_SCOPE,
            "name": stage.name,
            "start_ns": stage.start_ns,
            "end_ns": stage.end_ns,
            "parent": None,
            "attrs": {"pkt": timeline.packet_id, "stage": i},
        }
        for i, stage in enumerate(timeline.stages)
    ]


def capture_fig7(direct: bool = False) -> RunArtifact:
    """Run the Figure-7 exchange and bundle everything observable.

    Returns a :class:`~repro.obs.RunArtifact` holding the extracted
    stage timings, the cluster-wide metrics snapshot, every completed
    span (component spans plus the synthetic ``fig7.pipeline`` stage
    spans), and the flat trace records.
    """
    from .experiments import fig7

    cluster, pkt_id, timeline, done_ns = fig7.capture(direct_rx=direct)
    spans = spans_of(cluster.tracer)
    next_id = max((s["id"] for s in spans), default=0) + 1
    spans.extend(_stage_spans(timeline, next_id))
    profiler = cluster.env.profiler
    return RunArtifact(
        experiment="fig7.direct" if direct else "fig7",
        result={
            "packet_id": pkt_id,
            "done_ns": done_ns,
            "total_us": timeline.total_us,
            "stages": [
                {"name": s.name, "start_ns": s.start_ns, "end_ns": s.end_ns}
                for s in timeline.stages
            ],
        },
        metrics=cluster.metrics.snapshot(),
        profile=profiler.snapshot() if profiler is not None else {},
        spans=spans,
        records=records_of(cluster.trace),
    )


def fig4_point_slo(nbytes: int, messages: int, loss: float) -> SLOSpec:
    """The declared SLO of a fig4-point capture, scaled to its workload.

    Thresholds derive from the physical envelope (1 Gb/s line rate, one
    RTO of recovery headroom, a retransmit allowance proportional to the
    injected loss), so the same spec passes a fault-free run strictly
    (zero retransmit budget) and an adversarial run generously — a
    regression has to be structural, not statistical, to trip it.
    """
    # per-message wire time at line rate, in µs (1 Gb/s = 8 ns/byte)
    wire_us = nbytes * 8e-3
    # budget over retransmitted *messages* (always present in the journey
    # summary, unlike the lazily-created pkts_retx counter): strictly
    # zero fault-free, anything-up-to-all under injected loss
    retx_budget = 0.0 if loss <= 0 else float(messages)
    return SLOSpec(
        name="fig4-point",
        description="bulk-transfer envelope: full delivery, tail latency "
                    "within the line-rate + one-RTO budget, bounded loss "
                    "recovery, no receive-buffer burn",
        objectives=(
            Objective("delivered", "result.latency.delivered", "floor",
                      float(messages),
                      description="every message must arrive"),
            Objective("p999-latency", "result.latency.p999_us", "ceiling",
                      messages * wire_us * 4.0 + 5_000.0,
                      description="worst tail within 4x serialized wire "
                                  "time plus one RTO"),
            Objective("goodput", "result.goodput_mbps", "floor",
                      50.0 if loss > 0 else 200.0),
            Objective("retransmit-budget", "result.latency.retransmitted",
                      "budget", retx_budget,
                      description="messages needing loss recovery "
                                  "(strictly zero when fault-free)"),
            Objective("rx-depth-burn", "timeseries.node1.nic0.rx_depth",
                      "burn_rate", 64_000.0, window_ns=1_000_000.0,
                      description="receive buffer may not fill faster "
                                  "than 64 frames/ms sustained"),
        ),
    )


def capture_fig4_point(
    nbytes: int = 1_000_000,
    messages: int = 4,
    loss: float = 0.02,
    loss_model: str = "ge",
    seed: int = 42,
    sample_ns: float = 50_000.0,
) -> RunArtifact:
    """One fig4-style bulk transfer with journey tracing + telemetry on.

    Runs ``messages`` x ``nbytes`` over CLIC on the Granada testbed
    (MTU 1500) with injected loss (``ge`` = Gilbert–Elliott bursts,
    ``uniform`` = Bernoulli), capturing every message's journey, the
    retransmit genealogy, and queue-depth time series sampled every
    ``sample_ns``.  Span tracing stays *off* — journeys are the
    per-message instrument and keep a 1 MB capture tractable.  The
    returned artifact is bit-reproducible under a fixed seed.

    A :class:`~repro.obs.HealthWatchdog` rides the sampler cadence
    (delivery-stall + retransmit-storm rules) and the parameterized
    :func:`fig4_point_slo` is evaluated over the finished run, so the
    artifact carries structured health events and an SLO scorecard.
    """
    import dataclasses

    from .cluster import Cluster
    from .config import granada2003
    from .faults import FaultPlan
    from .obs import JourneyProbe, JourneyRecorder, TimeSeriesSampler
    from .workloads.adapters import clic_pair
    from .workloads.pingpong import stream

    if loss_model == "ge":
        faults = FaultPlan.bursty(loss, mean_burst_frames=8.0, loss_bad=1.0)
    elif loss_model == "uniform":
        faults = FaultPlan.uniform(loss)
    else:
        raise ValueError(f"unknown loss model {loss_model!r} (want ge|uniform)")

    cfg = dataclasses.replace(granada2003(mtu=1500), seed=seed)
    cluster = Cluster(cfg, protocols=("clic",),
                      faults=faults if loss > 0 else None)
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    sampler = TimeSeriesSampler(cluster.env, interval_ns=sample_ns)
    for node in cluster.nodes:
        for nic in node.nics:
            # the NIC already owns a gauge called rx_buffer_depth, so the
            # sampled series takes a sibling name
            sampler.add(
                cluster.metrics.timeseries(f"{nic.name}.rx_depth", "frames"),
                lambda nic=nic: len(nic._rx_buffer))
            sampler.add(
                cluster.metrics.timeseries(f"{nic.name}.tx_queue", "frames"),
                lambda nic=nic: len(nic._tx_ring.items) + len(nic._tx_fifo.items))
        if node.clic is not None:
            sampler.add(
                cluster.metrics.timeseries(f"{node.name}.clic.inflight_bytes", "bytes"),
                lambda mod=node.clic: sum(
                    pkt.frag_bytes
                    for sender in mod._senders.values()
                    for pkt in sender._in_flight.values()))
    for port in cluster.switch.ports:
        sampler.add(
            cluster.metrics.timeseries(f"switch.port{port.index}.queue", "frames"),
            lambda port=port: len(port.queue.items))
    # health rules ride the sampler cadence; probes use the non-creating
    # registry read so a watched-but-silent counter stays out of the
    # snapshot (the watchdog must not perturb the metrics)
    watchdog = HealthWatchdog(cluster.env).attach(sampler)
    watchdog.watch_progress(
        "delivery", lambda: cluster.metrics.value("node1.clic.pkts_rx"),
        stall_ticks=max(2, int(10_000_000.0 / sample_ns)))
    watchdog.watch_rate(
        "retransmit-storm", lambda: cluster.metrics.value("node0.clic.pkts_retx"),
        threshold=32.0, window_ticks=max(2, int(1_000_000.0 / sample_ns)))
    sampler.start()
    try:
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        sampler.stop()
        probe.uninstall()
    journeys = recorder.as_dicts()
    profiler = cluster.env.profiler
    artifact = RunArtifact(
        experiment="fig4.point",
        result={
            "nbytes": nbytes,
            "messages": messages,
            "loss": loss,
            "loss_model": loss_model if loss > 0 else "none",
            "seed": seed,
            "elapsed_ns": res.elapsed_ns,
            "goodput_mbps": res.nbytes_total * 8 / (res.elapsed_ns / 1e9) / 1e6,
            "latency": journey_latency_summary(journeys),
        },
        metrics=cluster.metrics.snapshot(),
        profile=profiler.snapshot() if profiler is not None else {},
        spans=spans_of(cluster.tracer),
        records=records_of(cluster.trace),
        journeys=journeys,
        timeseries=timeseries_of(cluster.metrics),
        health=watchdog.to_dicts(),
    )
    artifact.slo = evaluate(fig4_point_slo(nbytes, messages, loss),
                            artifact.to_dict())
    return artifact


def _filtered(artifact: RunArtifact, source: Optional[str], event: Optional[str]):
    """(spans, records) with the --source/--event filters applied."""
    spans, records = artifact.spans, artifact.records
    if source:
        spans = [s for s in spans if s["scope"].startswith(source)]
        records = [r for r in records if r["source"].startswith(source)]
    if event:
        records = [r for r in records if r["event"] == event]
    return spans, records


def _span_listing(spans: List[Dict[str, Any]]) -> str:
    """Human-readable table of spans, ordered by start time then id."""
    lines = [f"{'start us':>12}  {'dur us':>10}  span"]
    for s in sorted(spans, key=lambda s: (s["start_ns"], s["id"])):
        dur = (s["end_ns"] - s["start_ns"]) / 1000.0
        attrs = " ".join(f"{k}={v}" for k, v in sorted(s["attrs"].items()))
        parent = f" <#{s['parent']}" if s.get("parent") else ""
        lines.append(
            f"{s['start_ns'] / 1000.0:12.3f}  {dur:10.3f}  "
            f"#{s['id']}{parent} {s['scope']}/{s['name']}"
            + (f" [{attrs}]" if attrs else "")
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry: capture (or load) a run and export its trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Capture a traced run and export spans/records",
    )
    parser.add_argument(
        "--experiment", choices=["fig7", "fig4-point"], default="fig7",
        help="experiment to capture: fig7 (traced single packet) or "
             "fig4-point (bulk transfer with journey tracing + telemetry)",
    )
    parser.add_argument(
        "--variant", choices=["stock", "direct"], default="stock",
        help="fig7 variant: stock bottom-half path or direct Figure 8(b)",
    )
    parser.add_argument(
        "--nbytes", type=int, default=1_000_000,
        help="fig4-point: message size in bytes (default 1 MB)",
    )
    parser.add_argument(
        "--messages", type=int, default=4,
        help="fig4-point: number of messages to stream (default 4)",
    )
    parser.add_argument(
        "--loss", type=float, default=0.02,
        help="fig4-point: average frame loss rate (default 0.02)",
    )
    parser.add_argument(
        "--loss-model", choices=["ge", "uniform"], default="ge",
        help="fig4-point: Gilbert–Elliott bursts (ge) or Bernoulli (uniform)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="fig4-point: cluster RNG seed (default 42)",
    )
    parser.add_argument(
        "--journey", type=int, default=None, metavar="ID",
        help="print one message's per-hop waterfall instead of Chrome JSON",
    )
    parser.add_argument(
        "--outliers", type=int, default=None, metavar="N",
        help="print the top-N slowest journeys with dominant-hop "
             "attribution instead of Chrome JSON",
    )
    parser.add_argument(
        "--input", metavar="PATH", default=None,
        help="re-export a previously written RunArtifact instead of running",
    )
    parser.add_argument(
        "--chrome", action="store_true",
        help="emit Chrome trace_event JSON (the default output)",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="emit a human-readable span listing instead of Chrome JSON",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="emit a top-N table of scopes by total/self time instead of "
             "Chrome JSON (inspect a trace without a viewer)",
    )
    parser.add_argument(
        "--html", action="store_true",
        help="emit a self-contained HTML run dashboard (stat tiles, SLO "
             "scorecard, health events, time-series charts, journey "
             "waterfall) instead of Chrome JSON",
    )
    parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="number of rows in the --summary table (default 15)",
    )
    parser.add_argument(
        "--artifact", metavar="PATH", default=None,
        help="also write the full RunArtifact JSON to PATH",
    )
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the export here instead of stdout")
    parser.add_argument("--source", default=None,
                        help="only scopes/sources with this prefix (e.g. node1)")
    parser.add_argument("--event", default=None,
                        help="only trace records with this event name")
    parser.add_argument("--indent", type=int, default=None,
                        help="pretty-print the Chrome JSON with this indent")
    args = parser.parse_args(argv)

    if args.input:
        try:
            artifact = RunArtifact.load(args.input)
        except FileNotFoundError:
            parser.error(f"--input: no such file: {args.input}")
    elif args.experiment == "fig4-point":
        artifact = capture_fig4_point(
            nbytes=args.nbytes, messages=args.messages, loss=args.loss,
            loss_model=args.loss_model, seed=args.seed)
    else:
        artifact = capture_fig7(direct=args.variant == "direct")

    if args.artifact:
        artifact.write(args.artifact)
        print(f"wrote {args.artifact}", file=sys.stderr)

    spans, records = _filtered(artifact, args.source, args.event)
    if args.journey is not None or args.outliers is not None:
        if not artifact.journeys:
            parser.error(
                f"artifact {artifact.experiment!r} has no journeys — "
                "capture with --experiment fig4-point (or load such an "
                "artifact with --input)")
        if args.journey is not None:
            matches = [j for j in artifact.journeys if j["id"] == args.journey]
            if not matches:
                known = ", ".join(str(j["id"]) for j in artifact.journeys[:20])
                parser.error(f"no journey with id {args.journey} "
                             f"(known ids: {known})")
            out = waterfall_table(matches[0])
        else:
            out = outlier_report(artifact.journeys, top=args.outliers)
    elif args.html:
        out = render_html(artifact.to_dict())
    elif args.spans:
        out = _span_listing(spans)
    elif args.summary:
        from .obs import summary_table

        out = summary_table(spans, top=args.top,
                            title=f"{artifact.experiment}: top scopes by self time")
    else:
        out = chrome_trace_json(spans, records, artifact.journeys,
                                artifact.timeseries, indent=args.indent)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        try:
            print(out)
        except BrokenPipeError:
            # Downstream consumer (e.g. ``| head``) closed the pipe early;
            # that is not an error for a listing/export command.
            sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
