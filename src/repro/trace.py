"""``python -m repro.trace`` — capture and export structured traces.

Runs the Figure-7 single-packet experiment with tracing on, then exports
the structured spans + trace records as a Chrome ``trace_event`` JSON
document (open it at https://ui.perfetto.dev or ``chrome://tracing``) or
as a human-readable span listing.  On top of the component spans the
exporter adds one synthetic complete span per Figure-7 pipeline stage
(scope ``fig7.pipeline``), so the paper's stage breakdown is directly
visible as a lane in the viewer.

Typical invocations::

    python -m repro.trace --chrome -o fig7.trace.json
    python -m repro.trace --variant direct --spans
    python -m repro.trace --summary --top 10
    python -m repro.trace --artifact fig7.artifact.json
    python -m repro.trace --input fig7.artifact.json --chrome

``--source``/``--event`` filter the exported records (and, for
``--source``, the spans) by scope prefix / event name.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .obs import RunArtifact, chrome_trace_json, records_of, spans_of

__all__ = ["PIPELINE_SCOPE", "capture_fig7", "main"]

#: scope of the synthetic per-stage spans added on top of component spans
PIPELINE_SCOPE = "fig7.pipeline"


def _stage_spans(timeline, first_id: int) -> List[Dict[str, Any]]:
    """Synthetic complete spans, one per Figure-7 pipeline stage."""
    return [
        {
            "id": first_id + i,
            "scope": PIPELINE_SCOPE,
            "name": stage.name,
            "start_ns": stage.start_ns,
            "end_ns": stage.end_ns,
            "parent": None,
            "attrs": {"pkt": timeline.packet_id, "stage": i},
        }
        for i, stage in enumerate(timeline.stages)
    ]


def capture_fig7(direct: bool = False) -> RunArtifact:
    """Run the Figure-7 exchange and bundle everything observable.

    Returns a :class:`~repro.obs.RunArtifact` holding the extracted
    stage timings, the cluster-wide metrics snapshot, every completed
    span (component spans plus the synthetic ``fig7.pipeline`` stage
    spans), and the flat trace records.
    """
    from .experiments import fig7

    cluster, pkt_id, timeline, done_ns = fig7.capture(direct_rx=direct)
    spans = spans_of(cluster.tracer)
    next_id = max((s["id"] for s in spans), default=0) + 1
    spans.extend(_stage_spans(timeline, next_id))
    profiler = cluster.env.profiler
    return RunArtifact(
        experiment="fig7.direct" if direct else "fig7",
        result={
            "packet_id": pkt_id,
            "done_ns": done_ns,
            "total_us": timeline.total_us,
            "stages": [
                {"name": s.name, "start_ns": s.start_ns, "end_ns": s.end_ns}
                for s in timeline.stages
            ],
        },
        metrics=cluster.metrics.snapshot(),
        profile=profiler.snapshot() if profiler is not None else {},
        spans=spans,
        records=records_of(cluster.trace),
    )


def _filtered(artifact: RunArtifact, source: Optional[str], event: Optional[str]):
    """(spans, records) with the --source/--event filters applied."""
    spans, records = artifact.spans, artifact.records
    if source:
        spans = [s for s in spans if s["scope"].startswith(source)]
        records = [r for r in records if r["source"].startswith(source)]
    if event:
        records = [r for r in records if r["event"] == event]
    return spans, records


def _span_listing(spans: List[Dict[str, Any]]) -> str:
    """Human-readable table of spans, ordered by start time then id."""
    lines = [f"{'start us':>12}  {'dur us':>10}  span"]
    for s in sorted(spans, key=lambda s: (s["start_ns"], s["id"])):
        dur = (s["end_ns"] - s["start_ns"]) / 1000.0
        attrs = " ".join(f"{k}={v}" for k, v in sorted(s["attrs"].items()))
        parent = f" <#{s['parent']}" if s.get("parent") else ""
        lines.append(
            f"{s['start_ns'] / 1000.0:12.3f}  {dur:10.3f}  "
            f"#{s['id']}{parent} {s['scope']}/{s['name']}"
            + (f" [{attrs}]" if attrs else "")
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry: capture (or load) a run and export its trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Capture a traced run and export spans/records",
    )
    parser.add_argument(
        "--experiment", choices=["fig7"], default="fig7",
        help="experiment to capture (only fig7 carries a traced pipeline)",
    )
    parser.add_argument(
        "--variant", choices=["stock", "direct"], default="stock",
        help="fig7 variant: stock bottom-half path or direct Figure 8(b)",
    )
    parser.add_argument(
        "--input", metavar="PATH", default=None,
        help="re-export a previously written RunArtifact instead of running",
    )
    parser.add_argument(
        "--chrome", action="store_true",
        help="emit Chrome trace_event JSON (the default output)",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="emit a human-readable span listing instead of Chrome JSON",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="emit a top-N table of scopes by total/self time instead of "
             "Chrome JSON (inspect a trace without a viewer)",
    )
    parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="number of rows in the --summary table (default 15)",
    )
    parser.add_argument(
        "--artifact", metavar="PATH", default=None,
        help="also write the full RunArtifact JSON to PATH",
    )
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the export here instead of stdout")
    parser.add_argument("--source", default=None,
                        help="only scopes/sources with this prefix (e.g. node1)")
    parser.add_argument("--event", default=None,
                        help="only trace records with this event name")
    parser.add_argument("--indent", type=int, default=None,
                        help="pretty-print the Chrome JSON with this indent")
    args = parser.parse_args(argv)

    if args.input:
        try:
            artifact = RunArtifact.load(args.input)
        except FileNotFoundError:
            parser.error(f"--input: no such file: {args.input}")
    else:
        artifact = capture_fig7(direct=args.variant == "direct")

    if args.artifact:
        artifact.write(args.artifact)
        print(f"wrote {args.artifact}", file=sys.stderr)

    spans, records = _filtered(artifact, args.source, args.event)
    if args.spans:
        out = _span_listing(spans)
    elif args.summary:
        from .obs import summary_table

        out = summary_table(spans, top=args.top,
                            title=f"{artifact.experiment}: top scopes by self time")
    else:
        out = chrome_trace_json(spans, records, indent=args.indent)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        try:
            print(out)
        except BrokenPipeError:
            # Downstream consumer (e.g. ``| head``) closed the pipe early;
            # that is not an error for a listing/export command.
            sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
