"""Declarative fault plans.

A plan is configuration, not machinery: frozen dataclasses naming loss
models, corruption rates, outage timelines and switch blackouts.  The
cluster builder resolves one :class:`LinkFaultSpec` per link direction
(``node -> switch`` is ``"up"``, ``switch -> node`` is ``"down"``) and
compiles it into a :class:`~repro.faults.inject.ChannelFaults` engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "OutageWindow",
    "BurstLoss",
    "DelayJitter",
    "Duplication",
    "CongestionWindow",
    "LinkFaultSpec",
    "SwitchBlackout",
    "FaultPlan",
    "flap_timeline",
]

#: link directions a spec can address
DIRECTIONS = ("up", "down")


@dataclass(frozen=True, order=True)
class OutageWindow:
    """A half-open interval ``[start_ns, end_ns)`` during which a link
    (or switch port) transmits nothing."""

    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ValueError("outage start must be >= 0")
        if self.end_ns <= self.start_ns:
            raise ValueError("outage must end after it starts")

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def covers(self, now: float) -> bool:
        """True when ``now`` falls inside the window."""
        return self.start_ns <= now < self.end_ns


def flap_timeline(
    first_down_ns: float, down_ns: float, up_ns: float, flaps: int
) -> Tuple[OutageWindow, ...]:
    """A periodic down/up timeline: ``flaps`` outages of ``down_ns`` each,
    separated by ``up_ns`` of healthy link."""
    if flaps < 1:
        raise ValueError("need at least one flap")
    if down_ns <= 0 or up_ns < 0:
        raise ValueError("down_ns must be positive and up_ns non-negative")
    windows = []
    start = first_down_ns
    for _ in range(flaps):
        windows.append(OutageWindow(start, start + down_ns))
        start += down_ns + up_ns
    return tuple(windows)


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert–Elliott two-state loss channel.

    The channel sits in a *good* or *bad* state; each offered frame
    first steps the state machine (``p_good_to_bad`` / ``p_bad_to_good``
    per frame), then is dropped with the state's loss probability.  Mean
    burst length is ``1 / p_bad_to_good`` frames.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability (got {v!r})")
        if self.p_bad_to_good == 0.0:
            raise ValueError("p_bad_to_good must be > 0 (the bad state must be escapable)")

    @property
    def bad_fraction(self) -> float:
        """Stationary fraction of frames seen in the bad state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom else 0.0

    @property
    def average_loss_rate(self) -> float:
        """Long-run loss rate (for comparing against a uniform model)."""
        bad = self.bad_fraction
        return (1.0 - bad) * self.loss_good + bad * self.loss_bad

    @classmethod
    def from_average(
        cls,
        average: float,
        mean_burst_frames: float = 8.0,
        loss_bad: float = 0.6,
    ) -> "BurstLoss":
        """A bursty channel with the given *average* loss rate.

        Useful for apples-to-apples burst-vs-uniform comparisons: same
        long-run rate, different clustering.
        """
        if not 0.0 < average < loss_bad:
            raise ValueError(
                f"average rate must be in (0, loss_bad={loss_bad}) (got {average!r})"
            )
        p_bad_to_good = 1.0 / mean_burst_frames
        bad_fraction = average / loss_bad
        p_good_to_bad = p_bad_to_good * bad_fraction / (1.0 - bad_fraction)
        return cls(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_good=0.0,
            loss_bad=loss_bad,
        )


def _require_probability(owner: str, name: str, value: float) -> None:
    """Shared ``__post_init__`` range check: ``value`` must be in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{owner}.{name} must be a probability (got {value!r})")


@dataclass(frozen=True)
class DelayJitter:
    """Per-frame extra delivery delay — the *reordering* fault family.

    Each delivered frame is independently jittered with probability
    ``rate``; a jittered frame arrives up to ``max_delay_ns`` late
    (uniform draw), so it can be overtaken by later frames.  The delay
    bound makes the displacement bound explicit: a frame can be passed
    only by frames serialized within ``max_delay_ns`` behind it.
    """

    #: probability a delivered frame is delayed
    rate: float
    #: upper bound of the uniform extra delay (ns)
    max_delay_ns: float

    def __post_init__(self) -> None:
        _require_probability("DelayJitter", "rate", self.rate)
        if self.max_delay_ns <= 0:
            raise ValueError(
                f"DelayJitter.max_delay_ns must be positive (got {self.max_delay_ns!r})"
            )


@dataclass(frozen=True)
class Duplication:
    """Frame duplication: a delivered frame arrives more than once.

    Each delivered frame is duplicated with probability ``rate``; a
    duplicated frame arrives as ``1 + k`` copies with ``k`` drawn
    uniformly from ``[1, max_copies]``.  Models switch flooding during
    table churn and ARQ bridges re-emitting frames.
    """

    #: probability a delivered frame is duplicated
    rate: float
    #: most *extra* copies one duplication event can produce
    max_copies: int = 1

    def __post_init__(self) -> None:
        _require_probability("Duplication", "rate", self.rate)
        if self.max_copies < 1:
            raise ValueError(
                f"Duplication.max_copies must be >= 1 (got {self.max_copies!r})"
            )


@dataclass(frozen=True)
class CongestionWindow:
    """A transient congestion spike on a link (or switch uplink).

    While ``window`` covers the current time, the link's effective
    bandwidth collapses by ``bandwidth_factor`` (serialization takes
    that many times longer) and every delivery picks up
    ``extra_latency_ns`` of queueing delay.  Deterministic — no RNG
    draws — so adding a congestion schedule never perturbs the loss /
    corruption draw sequence of an existing plan.
    """

    window: OutageWindow
    #: serialization-time multiplier while congested (>= 1)
    bandwidth_factor: float = 1.0
    #: added one-way latency while congested (ns)
    extra_latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_factor < 1.0:
            raise ValueError(
                "CongestionWindow.bandwidth_factor must be >= 1 "
                f"(got {self.bandwidth_factor!r})"
            )
        if self.extra_latency_ns < 0:
            raise ValueError(
                "CongestionWindow.extra_latency_ns must be >= 0 "
                f"(got {self.extra_latency_ns!r})"
            )
        if self.bandwidth_factor == 1.0 and self.extra_latency_ns == 0.0:
            raise ValueError("CongestionWindow must collapse bandwidth or add latency")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Everything that can go wrong on one link direction."""

    #: Bernoulli frame-loss probability (ignored when ``burst`` is set)
    loss_rate: float = 0.0
    #: Gilbert–Elliott burst model (overrides ``loss_rate``)
    burst: Optional[BurstLoss] = None
    #: probability a delivered frame arrives with a bad CRC
    corrupt_rate: float = 0.0
    #: down/up timeline for this direction
    outages: Tuple[OutageWindow, ...] = ()
    #: bounded-displacement reordering via delay jitter
    jitter: Optional[DelayJitter] = None
    #: frame duplication (rate + max extra copies)
    duplicate: Optional[Duplication] = None
    #: transient congestion spikes (deterministic timeline)
    congestion: Tuple[CongestionWindow, ...] = ()

    def __post_init__(self) -> None:
        _require_probability("LinkFaultSpec", "loss_rate", self.loss_rate)
        _require_probability("LinkFaultSpec", "corrupt_rate", self.corrupt_rate)

    @property
    def active(self) -> bool:
        """True when this spec injects anything at all."""
        return bool(
            self.loss_rate or self.burst is not None or self.corrupt_rate
            or self.outages or self.jitter is not None
            or self.duplicate is not None or self.congestion
        )


@dataclass(frozen=True)
class SwitchBlackout:
    """An egress blackout of one (or every) switch port."""

    window: OutageWindow
    #: target node (None = every port)
    node: Optional[int] = None
    #: target NIC channel on that node (None = every channel)
    channel: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node is not None and self.node < 0:
            raise ValueError(f"SwitchBlackout.node must be >= 0 (got {self.node!r})")
        if self.channel is not None and self.channel < 0:
            raise ValueError(
                f"SwitchBlackout.channel must be >= 0 (got {self.channel!r})"
            )

    def matches(self, node_id: int, channel: int) -> bool:
        """Does this blackout target the port feeding (node, channel)?"""
        return (self.node is None or self.node == node_id) and (
            self.channel is None or self.channel == channel
        )


@dataclass
class FaultPlan:
    """The full fault schedule for one cluster run.

    ``default_link`` applies to every link direction unless an entry in
    ``links`` (keyed by ``(node_id, channel, direction)``) overrides it.
    """

    default_link: LinkFaultSpec = field(default_factory=LinkFaultSpec)
    links: Dict[Tuple[int, int, str], LinkFaultSpec] = field(default_factory=dict)
    switch_blackouts: Tuple[SwitchBlackout, ...] = ()

    def __post_init__(self) -> None:
        for key in self.links:
            node_id, channel, direction = key
            if direction not in DIRECTIONS:
                raise ValueError(f"direction must be one of {DIRECTIONS} (got {direction!r})")

    def link_spec(self, node_id: int, channel: int, direction: str) -> LinkFaultSpec:
        """The effective spec for one link direction."""
        return self.links.get((node_id, channel, direction), self.default_link)

    def blackouts_for(self, node_id: int, channel: int) -> Tuple[OutageWindow, ...]:
        """The egress-blackout windows of the switch port feeding
        ``node_id``'s ``channel``-th NIC."""
        return tuple(
            b.window for b in self.switch_blackouts if b.matches(node_id, channel)
        )

    # -- convenience constructors -------------------------------------------
    @classmethod
    def uniform(cls, loss_rate: float) -> "FaultPlan":
        """Bernoulli loss on every link direction (the historical
        ``Cluster(loss_rate=...)`` behaviour)."""
        return cls(default_link=LinkFaultSpec(loss_rate=loss_rate))

    @classmethod
    def bursty(
        cls,
        average_loss_rate: float,
        mean_burst_frames: float = 8.0,
        loss_bad: float = 0.6,
    ) -> "FaultPlan":
        """Gilbert–Elliott burst loss on every link direction, tuned to a
        given long-run average rate."""
        burst = BurstLoss.from_average(
            average_loss_rate, mean_burst_frames=mean_burst_frames, loss_bad=loss_bad
        )
        return cls(default_link=LinkFaultSpec(burst=burst))

    @classmethod
    def corruption(cls, corrupt_rate: float) -> "FaultPlan":
        """CRC-corruption on every link direction."""
        return cls(default_link=LinkFaultSpec(corrupt_rate=corrupt_rate))

    @classmethod
    def reordering(cls, rate: float, max_delay_ns: float) -> "FaultPlan":
        """Bounded-displacement reordering (delay jitter) on every link
        direction."""
        return cls(default_link=LinkFaultSpec(
            jitter=DelayJitter(rate=rate, max_delay_ns=max_delay_ns)
        ))

    @classmethod
    def duplication(cls, rate: float, max_copies: int = 1) -> "FaultPlan":
        """Frame duplication on every link direction."""
        return cls(default_link=LinkFaultSpec(
            duplicate=Duplication(rate=rate, max_copies=max_copies)
        ))

    @classmethod
    def congestion_spike(
        cls,
        start_ns: float,
        end_ns: float,
        bandwidth_factor: float = 1.0,
        extra_latency_ns: float = 0.0,
    ) -> "FaultPlan":
        """A transient congestion spike on every link direction (which
        includes the switch uplinks: each ``down`` channel is a switch
        egress)."""
        spike = CongestionWindow(
            window=OutageWindow(start_ns, end_ns),
            bandwidth_factor=bandwidth_factor,
            extra_latency_ns=extra_latency_ns,
        )
        return cls(default_link=LinkFaultSpec(congestion=(spike,)))

    @classmethod
    def link_outage(
        cls,
        start_ns: float,
        end_ns: float,
        node: Optional[int] = None,
        channel: int = 0,
    ) -> "FaultPlan":
        """Both directions of one node's link (or of every link when
        ``node`` is None) go dark for ``[start_ns, end_ns)``."""
        spec = LinkFaultSpec(outages=(OutageWindow(start_ns, end_ns),))
        if node is None:
            return cls(default_link=spec)
        return cls(links={(node, channel, "up"): spec, (node, channel, "down"): spec})
