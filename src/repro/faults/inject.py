"""Per-channel fault engines compiled from a :class:`~repro.faults.plan.FaultPlan`.

A :class:`ChannelFaults` sits inside one :class:`~repro.hw.link.Channel`
and passes verdict on every frame the moment its serialization finishes:
delivered, lost to the loss model, lost to a scheduled outage, or
delivered *corrupted* (to be dropped by the receiving NIC's CRC check).

Draw discipline: the engine consumes its RNG stream in a fixed order
(loss model first, then corruption, then — for delivered frames only —
delay jitter, then duplication) and only draws for mechanisms that are
actually configured — so a plain uniform-loss plan consumes exactly
one draw per frame, bit-identical to the historical
``Cluster(loss_rate=...)`` behaviour under the same seed, and adding a
new fault family never perturbs the draw sequence of an existing plan.
Congestion windows are a deterministic timeline: zero draws.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..sim import Counters
from .plan import BurstLoss, LinkFaultSpec, OutageWindow

__all__ = [
    "FrameVerdict",
    "FrameDecision",
    "UniformLossModel",
    "GilbertElliottModel",
    "ChannelFaults",
]


class FrameVerdict(enum.Enum):
    """What happens to one offered frame."""

    DELIVER = "deliver"
    LOST = "lost"
    OUTAGE = "outage"
    CORRUPT = "corrupt"

    @property
    def dropped(self) -> bool:
        """True when the frame never reaches the far end of the wire."""
        return self in (FrameVerdict.LOST, FrameVerdict.OUTAGE)


@dataclass(frozen=True)
class FrameDecision:
    """The full fate of one offered frame.

    Extends the bare :class:`FrameVerdict` with the adversarial-delivery
    families: how many copies arrive (duplication), how much extra
    delay each pick up (jitter-driven reordering), and whether a
    congestion window covered the frame.
    """

    verdict: FrameVerdict
    #: extra delivery delay from jitter (ns; 0 = undisturbed)
    extra_delay_ns: float = 0.0
    #: total delivered copies (1 = normal; > 1 = duplication)
    copies: int = 1
    #: a congestion window covered this frame's serialization
    congested: bool = False

    @property
    def dropped(self) -> bool:
        """True when no copy reaches the far end of the wire."""
        return self.verdict.dropped


class UniformLossModel:
    """Bernoulli (i.i.d.) frame loss — one draw per frame."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be a probability (got {rate!r})")
        self.rate = rate

    def frame_lost(self, rng: np.random.Generator) -> bool:
        """One Bernoulli trial: is this frame dropped?"""
        return rng.random() < self.rate


class GilbertElliottModel:
    """Stateful two-state burst-loss channel (Gilbert–Elliott).

    Per offered frame: step the state machine, then draw against the
    current state's loss probability (skipping the draw for the
    degenerate 0.0 / 1.0 probabilities so schedules stay compact).
    """

    def __init__(self, spec: BurstLoss):
        self.spec = spec
        self.bad = False
        self.bursts = 0  # completed good->bad transitions

    def frame_lost(self, rng: np.random.Generator) -> bool:
        """Step the two-state machine, then draw this frame's fate."""
        flip = self.spec.p_bad_to_good if self.bad else self.spec.p_good_to_bad
        if rng.random() < flip:
            self.bad = not self.bad
            if self.bad:
                self.bursts += 1
        loss = self.spec.loss_bad if self.bad else self.spec.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return rng.random() < loss


class ChannelFaults:
    """One channel's fault engine: loss model + corruption + outages."""

    def __init__(
        self,
        spec: LinkFaultSpec,
        rng: Optional[np.random.Generator],
        counters: Optional[Counters] = None,
    ):
        self.spec = spec
        self.rng = rng
        self.counters = counters if counters is not None else Counters()
        #: any draw-consuming model configured — such a channel is never
        #: provably quiet, so flow-mode trains may not cross it
        self.stochastic = bool(
            spec.loss_rate or spec.burst is not None or spec.corrupt_rate
            or spec.jitter is not None or spec.duplicate is not None
        )
        if self.stochastic and rng is None:
            raise ValueError("stochastic fault injection requires an RNG stream")
        self.model = None
        if spec.burst is not None:
            self.model = GilbertElliottModel(spec.burst)
        elif spec.loss_rate:
            self.model = UniformLossModel(spec.loss_rate)
        self._outages: Tuple[OutageWindow, ...] = tuple(sorted(spec.outages))
        self._congestion = tuple(sorted(spec.congestion, key=lambda c: c.window))

    def link_down(self, now: float) -> bool:
        """True while a scheduled outage window covers ``now``."""
        return any(w.covers(now) for w in self._outages)

    def quiet_over(self, start: float, end: float) -> bool:
        """True when this channel is provably undisturbed over ``[start, end)``.

        The flow-mode eligibility check: a stochastic model (loss,
        burst, corruption, jitter, duplication) can strike any frame, so
        its mere presence answers False; otherwise the channel is quiet
        iff no scheduled outage or congestion window intersects the
        interval.
        """
        if self.stochastic:
            return False
        for w in self._outages:
            if w.start_ns < end and start < w.end_ns:
                return False
        for c in self._congestion:
            w = c.window
            if w.start_ns < end and start < w.end_ns:
                return False
        return True

    # -- congestion (deterministic: no draws) ------------------------------
    def congested(self, now: float) -> bool:
        """True while a congestion window covers ``now``."""
        return any(c.window.covers(now) for c in self._congestion)

    def congestion_factor(self, now: float) -> float:
        """Serialization-time multiplier at ``now`` (1.0 when healthy).
        Overlapping windows compound multiplicatively."""
        factor = 1.0
        for c in self._congestion:
            if c.window.covers(now):
                factor *= c.bandwidth_factor
        return factor

    def congestion_latency_ns(self, now: float) -> float:
        """Extra one-way queueing delay at ``now`` (overlaps add up)."""
        return sum(
            c.extra_latency_ns for c in self._congestion if c.window.covers(now)
        )

    def judge(self, now: float) -> FrameVerdict:
        """Pass verdict on one frame whose serialization ends at ``now``."""
        if self.link_down(now):
            self.counters.add("outage_drops")
            return FrameVerdict.OUTAGE
        if self.model is not None and self.model.frame_lost(self.rng):
            self.counters.add(
                "burst_drops" if isinstance(self.model, GilbertElliottModel) else "loss_drops"
            )
            return FrameVerdict.LOST
        if self.spec.corrupt_rate and self.rng.random() < self.spec.corrupt_rate:
            self.counters.add("corrupted")
            return FrameVerdict.CORRUPT
        return FrameVerdict.DELIVER

    def decide(self, now: float) -> FrameDecision:
        """The full fate of one frame whose serialization ends at ``now``.

        Extends :meth:`judge` with jitter and duplication.  Draw order
        is strict — outage check, loss model, corruption, *then* jitter,
        *then* duplication, and the new families draw only for frames
        that are actually delivered — so a plan without them consumes
        exactly the draws it always did.
        """
        congested = self.congested(now)
        if congested:
            self.counters.add("congested")
        verdict = self.judge(now)
        if verdict.dropped:
            return FrameDecision(verdict, congested=congested)
        extra_delay = 0.0
        jitter = self.spec.jitter
        if jitter is not None and self.rng.random() < jitter.rate:
            extra_delay = float(self.rng.random() * jitter.max_delay_ns)
            self.counters.add("jittered")
        copies = 1
        duplicate = self.spec.duplicate
        if duplicate is not None and self.rng.random() < duplicate.rate:
            copies = 1 + int(self.rng.integers(1, duplicate.max_copies + 1))
            self.counters.add("duplicated")
            self.counters.add("dup_copies", copies - 1)
        return FrameDecision(
            verdict, extra_delay_ns=extra_delay, copies=copies, congested=congested
        )
