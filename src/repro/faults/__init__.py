"""Fault injection: declarative plans, deterministic injectors.

CLIC is "a reliable transport protocol" (§3.1); this package supplies the
adversity that claim is tested against.  A :class:`FaultPlan` is pure
data — *what* goes wrong, *where* and *when* — and the cluster builder
compiles it into per-channel :class:`ChannelFaults` engines driven by
the cluster's seeded :class:`~repro.sim.RngStreams`, so every fault
schedule is bit-reproducible from ``(seed, plan)``:

* **uniform loss** — the historical Bernoulli frame-drop model;
* **bursty loss** — a Gilbert–Elliott two-state channel
  (:class:`BurstLoss`), matching how real links actually fail (clock
  slips, EMI bursts, congested queues) rather than i.i.d. coin flips;
* **frame corruption** — frames arrive but fail the NIC's Ethernet CRC
  check and are dropped there (counted as ``rx_crc_drops``);
* **link outages / flaps** — a down/up timeline per link direction
  (:class:`OutageWindow`, :func:`flap_timeline`);
* **switch egress blackouts** — a switch port stops transmitting for a
  window (:class:`SwitchBlackout`), modelling e.g. a spanning-tree
  reconvergence or a misbehaving line card;
* **frame reordering** — bounded-displacement reordering via a per-link
  delay-jitter distribution (:class:`DelayJitter`): jittered frames are
  delivered late and can be overtaken by their successors;
* **frame duplication** — delivered frames arrive more than once
  (:class:`Duplication`: rate + max extra copies), as flooding switches
  and ARQ bridges produce in practice;
* **congestion spikes** — transient bandwidth collapse / added latency
  on links and switch uplinks (:class:`CongestionWindow`), deterministic
  timelines that never perturb the stochastic draw sequence.

Every injected fault is observable: drop/corruption tallies land in the
cluster's :class:`~repro.obs.MetricsRegistry` under ``faults.*`` and
scheduled windows are emitted as ``link_outage`` / ``egress_blackout``
spans on the cluster tracer.
"""

from .inject import (
    ChannelFaults,
    FrameDecision,
    FrameVerdict,
    GilbertElliottModel,
    UniformLossModel,
)
from .plan import (
    BurstLoss,
    CongestionWindow,
    DelayJitter,
    Duplication,
    FaultPlan,
    LinkFaultSpec,
    OutageWindow,
    SwitchBlackout,
    flap_timeline,
)

__all__ = [
    "BurstLoss",
    "ChannelFaults",
    "CongestionWindow",
    "DelayJitter",
    "Duplication",
    "FaultPlan",
    "FrameDecision",
    "FrameVerdict",
    "GilbertElliottModel",
    "LinkFaultSpec",
    "OutageWindow",
    "SwitchBlackout",
    "UniformLossModel",
    "flap_timeline",
]
