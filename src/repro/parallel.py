"""Deterministic fan-out of independent simulation points.

The paper's figures are built from dozens of *independent* ping-pong
simulations — every sweep size, experiment id, bench scenario and
resilience loss-rate builds a fresh cluster from a config and a seed.
This module exploits that embarrassing parallelism (NetPIPE-style
harnesses do the same) without giving up bit-reproducibility:

* tasks are **pure-data specs** (config + seed + point parameters);
  workers rebuild the cluster from the spec — nothing stateful is ever
  pickled, so results cannot depend on which process ran them;
* results come back in **submission order** (``ProcessPoolExecutor.map``
  preserves input order), so a parallel run produces byte-identical
  artifacts to a serial one;
* worker-side :class:`~repro.obs.EnvProfiler` tallies flow back to the
  parent's ambient :func:`~repro.sim.profiled` sink as snapshot dicts,
  so ``--json`` artifacts account simulator cost identically at any
  ``--jobs`` value.

Spawn-safety: workers reference the task function by qualified name, so
it must be a **module-level** callable importable in a fresh interpreter
(under the ``spawn``/``forkserver`` start methods the ``repro`` package
must be on the child's path, e.g. ``PYTHONPATH=src``).  Closures and
lambdas are rejected by pickling with ``jobs > 1``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .obs.profile import aggregate_profiles
from .sim import core as _sim_core
from .sim import profiled

__all__ = [
    "add_jobs_argument",
    "resolve_jobs",
    "run_tasks",
    "run_tasks_profiled",
]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def add_jobs_argument(parser: Any) -> None:
    """Attach the standard ``--jobs/-j`` option to an argparse parser."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="fan independent simulation points over N worker processes "
             "(0 = one per core); results are byte-identical to --jobs 1",
    )


def _collect_task_garbage() -> None:
    """Collect cyclic garbage at a task boundary (profiling only).

    Tearing down a finished simulation closes its suspended generators,
    and their cleanup (releasing resource grants) can schedule a final
    event on the dead environment.  Whether that lands before or after
    the profiler snapshot depends on when the cycle collector happens to
    run — different between serial and pooled layouts.  Collecting at
    the task boundary pins the cleanup inside the task's own tally, so
    aggregated ``events_scheduled`` is identical at any ``--jobs``.
    """
    import gc

    gc.collect()


def _call(payload: Tuple[Callable[[Any], Any], Any, bool]) -> Tuple[Any, List[dict]]:
    """Worker-side shim: run one spec, optionally under a profiler sink.

    Module-level so the pool can pickle it by reference; returns the
    task result plus the profiler snapshots of every environment the
    task built (empty when profiling is off).
    """
    worker, spec, profile = payload
    if not profile:
        return worker(spec), []
    with profiled() as profilers:
        result = worker(spec)
        _collect_task_garbage()
    # A task that fans out through a nested run_tasks has already frozen
    # its slice of the sink to snapshot dicts — pass those through.
    return result, [p.snapshot() if hasattr(p, "snapshot") else p
                    for p in profilers]


def _pool_map(
    worker: Callable[[Any], Any],
    specs: Sequence[Any],
    jobs: int,
    profile: bool,
) -> List[Tuple[Any, List[dict]]]:
    """Map ``worker`` over ``specs`` on a process pool, submission order."""
    from concurrent.futures import ProcessPoolExecutor

    payloads = [(worker, spec, profile) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(_call, payloads))


def run_tasks(
    worker: Callable[[Any], Any],
    specs: Iterable[Any],
    jobs: int = 1,
) -> List[Any]:
    """Run ``worker`` over every spec; results in submission order.

    With ``jobs <= 1`` (or a single spec) this is a plain serial loop in
    the current process — no pool, no pickling, and any ambient
    :func:`~repro.sim.profiled` block observes the environments
    directly.  With more jobs, specs fan out over a process pool and
    worker-side profiler snapshots are appended to the ambient sink, so
    aggregated simulator-cost stats match the serial run exactly.

    A worker exception propagates to the caller either way (the pool
    re-raises it from ``map``).
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    sink = _sim_core._PROFILE_SINK
    if jobs <= 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            start = 0 if sink is None else len(sink)
            results.append(worker(spec))
            if sink is not None:
                # Same task-boundary discipline as the pool path: collect
                # teardown garbage, then freeze this task's profilers to
                # snapshot dicts so later cleanup cannot skew the tally.
                _collect_task_garbage()
                sink[start:] = [p.snapshot() if hasattr(p, "snapshot") else p
                                for p in sink[start:]]
        return results
    pairs = _pool_map(worker, specs, jobs, profile=sink is not None)
    results = []
    for result, snapshots in pairs:
        if sink is not None:
            sink.extend(snapshots)
        results.append(result)
    return results


def run_tasks_profiled(
    worker: Callable[[Any], Any],
    specs: Iterable[Any],
    jobs: int = 1,
) -> List[Tuple[Any, dict]]:
    """Like :func:`run_tasks`, returning ``(result, profile)`` pairs.

    ``profile`` is the :func:`~repro.obs.aggregate_profiles` summary of
    every environment that task built — per-task attribution for run
    artifacts and bench documents.  The task's environments are *not*
    reported to an ambient ``profiled()`` sink (the per-task profile
    supersedes it), matching a serial ``with profiled():`` per task.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        out: List[Tuple[Any, dict]] = []
        for spec in specs:
            with profiled() as profilers:
                result = worker(spec)
            out.append((result, aggregate_profiles(profilers)))
        return out
    pairs = _pool_map(worker, specs, jobs, profile=True)
    return [(result, aggregate_profiles(snaps)) for result, snaps in pairs]
