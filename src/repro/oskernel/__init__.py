"""Operating-system substrate: kernel, interrupts, driver, buffers, processes."""

from .driver import VendorDriver
from .interrupts import BottomHalves, IrqController
from .kernel import Kernel
from .membuf import BufferPool, PoolExhausted
from .process import UserProcess
from .skbuff import NIC_MEMORY, SYSTEM_MEMORY, USER_MEMORY, SkBuff

__all__ = [
    "BottomHalves",
    "BufferPool",
    "IrqController",
    "Kernel",
    "NIC_MEMORY",
    "PoolExhausted",
    "SkBuff",
    "SYSTEM_MEMORY",
    "USER_MEMORY",
    "UserProcess",
    "VendorDriver",
]
