"""The operating-system kernel of one node.

CLIC's thesis (versus VIA/U-Net-style user-level networking) is that the
OS *should* stay on the communication path — the trick is making its
mediation cheap.  This class models exactly the mechanisms whose costs
the paper itemizes:

* **system calls** — INT 80h entry/exit (~0.65 µs round trip) wrapping
  every CLIC/TCP API call, with the scheduler consulted on return
  (§3.2(a): CLIC deliberately keeps the scheduler in the loop; GAMMA's
  lightweight traps skip it — both are modeled);
* **blocking and wake-up** — a process waiting in ``recv`` costs a
  context switch out, and a scheduler pass plus context switch back in
  when the message arrives;
* **interrupts and bottom halves** — via :mod:`repro.oskernel.interrupts`;
* **data movement** — ``copy_*`` helpers charging the CPU+memory bus, and
  a protocol-handler registry that the driver demuxes received frames
  into (by ethertype), either through a bottom half (default) or
  directly from interrupt context (Figure 8b improvement).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from ..config import KernelParams, MemoryParams
from ..hw.cpu import PRIO_IRQ, PRIO_KERNEL, PRIO_SOFTIRQ, PRIO_USER, Cpu
from ..hw.memory import MemoryBus
from ..obs import MetricsRegistry, Tracer
from ..sim import Counters, Environment, Event, Trace
from .interrupts import BottomHalves, IrqController

__all__ = ["Kernel"]


class Kernel:
    """OS services for one node."""

    def __init__(
        self,
        env: Environment,
        params: KernelParams,
        cpu: Cpu,
        memory: MemoryBus,
        name: str = "kernel",
        trace: Optional[Trace] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.params = params
        self.cpu = cpu
        self.memory = memory
        self.name = name
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: span tracer; shared cluster-wide when supplied, private otherwise
        self.tracer = tracer if tracer is not None else Tracer(env, self.trace)
        #: typed metrics registry (counters/gauges/histograms)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.counters = Counters(registry=self.metrics, prefix=f"{name}.")
        self.irq = IrqController(env, cpu, params, name=f"{name}.irq")
        self.bottom_halves = BottomHalves(
            env, cpu, params, name=f"{name}.bh", metrics=self.metrics
        )
        #: ethertype -> generator factory taking (skbuff) — protocol rx entry
        self.protocol_handlers: Dict[int, Callable] = {}

    # ------------------------------------------------------------------
    # syscall mechanics
    # ------------------------------------------------------------------
    def syscall(self, body: Generator, label: str = "syscall") -> Generator:
        """Run ``body`` inside a full system call.

        Charges mode-switch entry, runs the body at kernel priority (the
        body itself charges its own CPU/bus costs), charges the exit and —
        per CLIC's design — a scheduler pass on return to user mode.
        """
        self.counters.add("syscalls")
        t0 = self.env.now
        span = self.tracer.begin(self.name, "syscall", label=label)
        self.tracer.instant(self.name, "syscall_enter", label=label)
        yield from self.cpu.execute(self.params.syscall_enter_ns, PRIO_KERNEL, label="sys_enter")
        result = yield from body
        yield from self.cpu.execute(self.params.syscall_exit_ns, PRIO_KERNEL, label="sys_exit")
        if self.params.scheduler_on_syscall_return:
            yield from self.cpu.scheduler_pass(PRIO_KERNEL)
        self.tracer.instant(self.name, "syscall_exit", label=label)
        span.end()
        self.metrics.histogram(f"{self.name}.syscall_ns").record(self.env.now - t0)
        return result

    def lightweight_call(self, body: Generator, label: str = "lwcall") -> Generator:
        """GAMMA-style lightweight trap: minimal switch, no scheduler."""
        self.counters.add("lightweight_calls")
        yield from self.cpu.execute(self.params.lightweight_syscall_ns, PRIO_KERNEL, label="lw_enter")
        result = yield from body
        yield from self.cpu.execute(self.params.lightweight_syscall_ns / 2, PRIO_KERNEL, label="lw_exit")
        return result

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------
    def block_on(self, event: Event, label: str = "block") -> Generator:
        """Put the calling process to sleep until ``event`` fires.

        Charges the context switch away now and the scheduler pass +
        context switch back when woken; returns the event's value.
        """
        self.counters.add("blocks")
        t0 = self.env.now
        span = self.tracer.begin(self.name, "blocked", label=label)
        self.tracer.instant(self.name, "block", label=label)
        yield from self.cpu.context_switch(PRIO_KERNEL)
        value = yield event
        yield from self.cpu.scheduler_pass(PRIO_KERNEL)
        yield from self.cpu.context_switch(PRIO_KERNEL)
        self.tracer.instant(self.name, "wake", label=label)
        span.end()
        self.metrics.histogram(f"{self.name}.block_ns").record(self.env.now - t0)
        return value

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def copy_user_to_system(self, nbytes: int, priority: int = PRIO_KERNEL,
                            setups: int = 1) -> Generator:
        """CPU copy from user buffer into kernel memory (the "1-copy").

        ``setups`` batches a flow-mode train's per-fragment copies into
        one bus hold charging ``setups`` copy-setup costs.
        """
        self.counters.add("copies_user_to_system", setups)
        self.counters.add("copy_bytes", nbytes)
        yield from self.memory.cpu_copy(self.cpu, nbytes, priority, label="u2s",
                                        setups=setups)

    def copy_system_to_user(self, nbytes: int, priority: int = PRIO_KERNEL,
                            setups: int = 1) -> Generator:
        """CPU copy from kernel memory to the user buffer (receive side)."""
        self.counters.add("copies_system_to_user", setups)
        self.counters.add("copy_bytes", nbytes)
        yield from self.memory.cpu_copy(self.cpu, nbytes, priority, label="s2u",
                                        setups=setups)

    def copy_user_to_user(self, nbytes: int, priority: int = PRIO_KERNEL) -> Generator:
        """Same-node process-to-process copy (CLIC local delivery)."""
        self.counters.add("copies_user_to_user")
        self.counters.add("copy_bytes", nbytes)
        yield from self.memory.cpu_copy(self.cpu, nbytes, priority, label="u2u")

    # ------------------------------------------------------------------
    # protocol demux
    # ------------------------------------------------------------------
    def register_protocol(self, ethertype: int, handler: Callable) -> None:
        """Install a protocol rx entry: ``handler(skb) -> Generator``."""
        if ethertype in self.protocol_handlers:
            raise ValueError(f"ethertype {ethertype:#06x} already registered")
        self.protocol_handlers[ethertype] = handler

    def deliver_rx(self, ethertype: int, skb, in_irq_context: bool) -> None:
        """Route a received buffer to its protocol module.

        Default path: schedule a bottom half (Figure 8a).  With
        ``direct_rx_dispatch`` the handler generator is returned to the
        caller to run inline in IRQ context — see :meth:`direct_rx`.
        """
        handler = self.protocol_handlers.get(ethertype)
        if handler is None:
            self.counters.add("rx_unknown_ethertype")
            return
        self.bottom_halves.schedule(lambda h=handler, s=skb: h(s))

    def direct_rx(self, ethertype: int, skb) -> Generator:
        """Figure 8(b): run the protocol rx inline (caller is the driver,
        already in interrupt context)."""
        handler = self.protocol_handlers.get(ethertype)
        if handler is None:
            self.counters.add("rx_unknown_ethertype")
            return
        yield from handler(skb)
