"""The vendor NIC driver — deliberately *unmodified*.

CLIC's distinguishing design constraint (§1, §5): the protocol must work
with stock drivers, unlike GAMMA which patches them.  The driver model
therefore only does what a 2003 vendor driver does:

* **transmit** — fill a ring descriptor from an ``SK_BUFF`` (possibly
  scatter/gather over user pages) and tell the protocol module whether
  the send was accepted (ring full -> CLIC stages in system memory);
* **receive** — in interrupt context, allocate an ``sk_buff``, keep the
  CPU captive while the frame's bytes cross PCI into system memory, then
  hand the buffer to the registered protocol through the bottom halves.

The Figure 8(b) *direct dispatch* variant (kernel flag
``direct_rx_dispatch``) models the paper's proposed improvement: the
driver calls the protocol module in-line from the handler, skipping the
sk_buff staging and the bottom-half hop.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import DriverParams
from ..hw.cpu import PRIO_IRQ, PRIO_KERNEL
from ..hw.nic import MacAddress, Nic, TxDescriptor
from ..sim import Counters, Event
from .kernel import Kernel
from .skbuff import NIC_MEMORY, SYSTEM_MEMORY, USER_MEMORY, SkBuff

__all__ = ["VendorDriver"]


def _pkt_id(payload) -> Optional[int]:
    return getattr(payload, "packet_id", None)


class VendorDriver:
    """Stock driver for one NIC on one node."""

    def __init__(self, kernel: Kernel, nic: Nic, params: DriverParams, name: str = "eth0"):
        self.kernel = kernel
        self.nic = nic
        self.params = params
        self.name = name
        #: shares the kernel's tracer so driver spans nest with kernel ones
        self.tracer = kernel.tracer
        self.counters = Counters(registry=kernel.metrics, prefix=f"{name}.")
        if nic.rx_deliver == "irq-pull":
            nic.irq_callback = self._on_irq

    # ------------------------------------------------------------------
    # transmit
    # ------------------------------------------------------------------
    def transmit(
        self,
        skb: SkBuff,
        dst: MacAddress,
        ethertype: int,
        on_wire: Optional[Event] = None,
    ) -> Generator:
        """Try to hand ``skb`` to the NIC; returns True if accepted.

        Runs in the caller's (kernel) context; charges the driver's tx
        entry cost either way — a full ring is discovered *inside* the
        driver (§3.1: "the driver ... finishes indicating to _MODULE if
        it is possible or not to send the data").
        """
        # A flow-mode train skb carries a batch payload (anything with a
        # ``packets`` sequence): charge k driver-entry costs in one CPU
        # slice and post one k-wide descriptor.
        packets = getattr(skb.payload, "packets", None)
        train_frames = len(packets) if packets is not None else 1
        yield from self.kernel.cpu.execute(
            self.params.tx_call_ns * train_frames, PRIO_KERNEL, label="drv_tx"
        )
        desc = TxDescriptor(
            dst=dst,
            ethertype=ethertype,
            payload_bytes=skb.total_bytes(),
            payload=skb.payload,
            from_user_memory=skb.is_zero_copy,
            on_wire=on_wire,
            train_frames=train_frames,
        )
        accepted = self.nic.try_post_tx(desc)
        if accepted:
            self.counters.add("tx_accepted", train_frames)
            self.tracer.instant(
                self.name, "driver_tx",
                pkt=_pkt_id(skb.payload), nbytes=skb.total_bytes(),
            )
        else:
            self.counters.add("tx_ring_busy")
        return accepted

    # ------------------------------------------------------------------
    # receive (interrupt context)
    # ------------------------------------------------------------------
    def _on_irq(self) -> None:
        self.kernel.irq.raise_irq(self._irq_handler, label=f"{self.name}.rx")

    def _irq_handler(self) -> Generator:
        env = self.kernel.env
        cpu = self.kernel.cpu
        direct = self.kernel.params.direct_rx_dispatch
        self.counters.add("rx_irqs")
        irq_span = self.tracer.begin(self.name, "irq", direct=direct)
        self.tracer.instant(self.name, "irq_begin")
        yield from cpu.execute(self.params.irq_overhead_ns, PRIO_IRQ, label="drv_irq")
        drained = 0
        while self.nic.rx_pending() and drained < self.params.rx_budget_per_irq:
            head = self.nic.peek_rx()
            k = head.frame.train_frames
            if k > 1 and drained + k > self.params.rx_budget_per_irq:
                # A train drains whole or not at all; leave it pending and
                # let ``service_done`` schedule the next IRQ round.
                break
            t0 = env.now
            frame_span = self.tracer.begin(self.name, "rx_frame")
            if direct:
                # Figure 8(b): no sk_buff staging; DMA lands where the
                # module directs (user memory if a receiver waits).
                rx = yield from cpu.occupy(self.nic.dma_frame_to_host(), PRIO_IRQ, label="drv_rx_dma")
                journeys = self.tracer.journeys
                if journeys is not None:
                    journeys.hop(rx.frame.payload, "irq", self.name, direct=True)
                skb = SkBuff(
                    payload_bytes=rx.frame.payload_bytes,
                    fragments=[(SYSTEM_MEMORY, rx.frame.payload_bytes)] if rx.frame.payload_bytes else [],
                    payload=rx.frame.payload,
                    direct_delivery=True,
                )
                frame_span.end(pkt=_pkt_id(rx.frame.payload), nbytes=rx.frame.payload_bytes)
                self.tracer.instant(
                    self.name, "driver_rx",
                    pkt=_pkt_id(rx.frame.payload), t0=t0, nbytes=rx.frame.payload_bytes,
                )
                yield from self.kernel.direct_rx(rx.frame.ethertype, skb)
            else:
                # Stock path: allocate sk_buff, move NIC -> system memory
                # with the CPU captive, defer protocol work to a BH.
                # A train charges its k per-frame costs in one CPU slice.
                yield from cpu.execute(self.params.rx_per_frame_ns * k, PRIO_IRQ, label="drv_rx_skb")
                rx = yield from cpu.occupy(self.nic.dma_frame_to_host(), PRIO_IRQ, label="drv_rx_dma")
                journeys = self.tracer.journeys
                if journeys is not None:
                    journeys.hop(rx.frame.payload, "irq", self.name, direct=False)
                skb = SkBuff(
                    payload_bytes=rx.frame.payload_bytes,
                    fragments=[(SYSTEM_MEMORY, rx.frame.payload_bytes)] if rx.frame.payload_bytes else [],
                    payload=rx.frame.payload,
                )
                frame_span.end(pkt=_pkt_id(rx.frame.payload), nbytes=rx.frame.payload_bytes)
                self.tracer.instant(
                    self.name, "driver_rx",
                    pkt=_pkt_id(rx.frame.payload), t0=t0, nbytes=rx.frame.payload_bytes,
                )
                self.kernel.deliver_rx(rx.frame.ethertype, skb, in_irq_context=True)
            drained += k
        self.counters.add("rx_frames", drained)
        self.tracer.instant(self.name, "irq_end", drained=drained)
        irq_span.end(drained=drained)
        self.kernel.metrics.histogram(f"{self.name}.irq_frames").record(drained)
        self.nic.irq_service_done()
