"""Interrupt dispatch and bottom halves.

The receive path the paper measures (Figure 7a / Figure 8a) is:

    NIC asserts IRQ  ->  kernel IRQ entry  ->  driver handler (moves data
    NIC->system memory, CPU captive)  ->  IRQ exit  ->  *bottom half*
    runs later at softirq priority  ->  CLIC_MODULE / IP stack processes
    the packet.

The bottom-half hop adds both CPU cost and scheduling latency; Figure 8b
proposes (and :attr:`~repro.config.KernelParams.direct_rx_dispatch`
enables) calling the protocol module directly from the handler.

Priorities map to :mod:`repro.hw.cpu` levels: handlers run at IRQ
priority (preempting everything), bottom halves at SOFTIRQ priority
(preempted by new interrupts but beating syscall bodies and user code —
which is how interrupt storms starve applications, the Section 2
effect).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..config import KernelParams
from ..hw.cpu import PRIO_IRQ, PRIO_SOFTIRQ, Cpu
from ..obs import MetricsRegistry
from ..sim import Counters, Environment, Store

__all__ = ["IrqController", "BottomHalves"]


class BottomHalves:
    """The deferred-work queue (Linux 2.4 bottom halves / softirqs)."""

    def __init__(self, env: Environment, cpu: Cpu, params: KernelParams, name: str = "bh",
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.cpu = cpu
        self.params = params
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.counters = Counters(registry=self.metrics, prefix=f"{name}.")
        #: live queue depth (+ high-water mark) of deferred work
        self._depth_gauge = self.metrics.gauge(f"{name}.queue_depth")
        self._queue: Store = Store(env, name=f"{name}.queue")
        env.process(self._worker(), name=f"{name}.worker")

    def schedule(self, work: Callable[[], Generator]) -> None:
        """Queue ``work`` (a generator factory) to run in softirq context."""
        self.counters.add("scheduled")
        self._queue.put(work)
        self._depth_gauge.set(len(self._queue.items))

    def pending(self) -> int:
        """Number of queued, not-yet-run bottom halves."""
        return len(self._queue.items)

    def _worker(self) -> Generator:
        while True:
            work = yield self._queue.get()
            self._depth_gauge.set(len(self._queue.items))
            yield from self.cpu.execute(
                self.params.bottom_half_dispatch_ns, PRIO_SOFTIRQ, label="bh_dispatch"
            )
            yield from work()
            self.counters.add("executed")


class IrqController:
    """Hardware interrupt fan-in for one CPU."""

    def __init__(self, env: Environment, cpu: Cpu, params: KernelParams, name: str = "irq"):
        self.env = env
        self.cpu = cpu
        self.params = params
        self.name = name
        self.counters = Counters()

    def raise_irq(self, handler: Callable[[], Generator], label: str = "irq") -> None:
        """Deliver an interrupt: run ``handler()`` in interrupt context.

        Fire-and-forget from the device's perspective (the NIC's IRQ line
        is edge-like here; re-arming is the coalescer's job).
        """
        self.counters.add("raised")
        self.env.process(self._service(handler, label), name=f"{self.name}.{label}")

    def _service(self, handler: Callable[[], Generator], label: str) -> Generator:
        yield from self.cpu.execute(self.params.irq_entry_ns, PRIO_IRQ, label="irq_entry")
        yield from handler()
        yield from self.cpu.execute(self.params.irq_exit_ns, PRIO_IRQ, label="irq_exit")
        self.counters.add("serviced")
