"""User processes.

A :class:`UserProcess` is an application context on a node: it owns a
PID, computes at user priority (preempted by all kernel activity — so
interrupt load visibly eats application throughput, the Section 2
effect), and invokes protocol APIs which internally enter the kernel.

CLIC explicitly supports multiprogramming — several processes using the
network at once, protection between them, and communication between
processes on the *same* node (§5) — so processes are first-class here
rather than an afterthought.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, Optional

from ..hw.cpu import PRIO_USER, Cpu
from ..sim import Counters, Environment, Process

__all__ = ["UserProcess"]

_pids = itertools.count(1)


class UserProcess:
    """An application process bound to one node."""

    def __init__(self, node, name: str = ""):
        self.node = node
        self.pid = next(_pids)
        self.name = name or f"pid{self.pid}"
        self.counters = Counters()
        self._main: Optional[Process] = None

    @property
    def env(self) -> Environment:
        return self.node.env

    @property
    def cpu(self) -> Cpu:
        return self.node.cpu

    def compute(self, duration_ns: float) -> Generator:
        """Burn application CPU time (preemptible by kernel work)."""
        self.counters.add("compute_ns", duration_ns)
        yield from self.cpu.execute(duration_ns, PRIO_USER, label=f"user.{self.name}")

    def run(self, body: Callable[["UserProcess"], Generator]) -> Process:
        """Start the process main: ``body(self)`` as a simulation process."""
        if self._main is not None:
            raise RuntimeError(f"{self.name} already running")
        self._main = self.env.process(body(self), name=f"{self.node.name}.{self.name}")
        return self._main

    @property
    def main(self) -> Optional[Process]:
        return self._main

    def __repr__(self) -> str:
        return f"<UserProcess {self.name} on {self.node.name}>"
