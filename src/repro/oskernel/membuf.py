"""Bounded kernel buffer pools.

CLIC stages outgoing data in system memory when the NIC cannot accept it
immediately, and parks received packets in system memory until a process
asks for them (§3.1).  TCP likewise owns socket send/receive buffers.
All of these are finite: a producer faster than its consumer must
eventually block (or, for the NIC rx ring, drop).  :class:`BufferPool`
provides the blocking byte-count accounting.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..sim import Counters, Environment, Event

__all__ = ["BufferPool", "PoolExhausted"]


class PoolExhausted(Exception):
    """Raised by :meth:`BufferPool.take` when ``block=False`` and no room."""


class BufferPool:
    """A byte-counted pool with blocking allocation.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity_bytes:
        Pool size; ``float('inf')`` disables accounting (still counted).
    """

    def __init__(self, env: Environment, capacity_bytes: float, name: str = "pool"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity_bytes
        self.name = name
        self.in_use = 0.0
        self.counters = Counters()
        self._waiters: List[Tuple[float, Event]] = []

    @property
    def available(self) -> float:
        return self.capacity - self.in_use

    def try_take(self, nbytes: float) -> bool:
        """Non-blocking allocation; True on success."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        if nbytes > self.capacity:
            raise ValueError(
                f"allocation of {nbytes} B can never fit pool {self.name} "
                f"({self.capacity} B)"
            )
        if self._waiters or nbytes > self.available:
            self.counters.add("alloc_denied")
            return False
        self.in_use += nbytes
        self.counters.add("allocs")
        self.counters.add("alloc_bytes", nbytes)
        return True

    def take(self, nbytes: float) -> Generator:
        """Blocking allocation: a generator the caller ``yield from``-s."""
        if self.try_take(nbytes):
            return
        event = self.env.event()
        self._waiters.append((nbytes, event))
        self.counters.add("alloc_waits")
        yield event
        # The releaser granted us the bytes before waking us.

    def give(self, nbytes: float) -> None:
        """Return ``nbytes`` to the pool, waking eligible waiters in order."""
        if nbytes < 0:
            raise ValueError("negative free")
        self.in_use -= nbytes
        if self.in_use < -1e-9:
            raise RuntimeError(f"pool {self.name} freed more than allocated")
        self.counters.add("frees")
        while self._waiters:
            want, event = self._waiters[0]
            if want > self.available:
                break
            self._waiters.pop(0)
            self.in_use += want
            self.counters.add("allocs")
            self.counters.add("alloc_bytes", want)
            event.succeed()

    def utilization(self) -> float:
        """Fraction of the pool currently allocated."""
        return self.in_use / self.capacity if self.capacity != float("inf") else 0.0
