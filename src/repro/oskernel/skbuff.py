"""The ``sk_buff`` abstraction.

The Linux socket buffer is central to the paper's 0-copy story (§3.1):
an ``SK_BUFF`` can describe *fragmented* data — pointers to headers in
kernel memory plus pointers to payload pages still sitting in **user**
memory — which lets the NIC's scatter/gather DMA engine pull the bytes
straight from the application's buffer (path #2 of Figure 1) without the
CPU ever copying them.

Our model tracks where each fragment lives (``user``/``system``/``nic``)
and the header stack pushed by each protocol layer, so tests can assert
copy-count invariants ("a 0-copy send never creates a system-memory
payload fragment").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["SkBuff", "USER_MEMORY", "SYSTEM_MEMORY", "NIC_MEMORY"]

USER_MEMORY = "user"
SYSTEM_MEMORY = "system"
NIC_MEMORY = "nic"

_skb_ids = itertools.count(1)


@dataclass
class SkBuff:
    """A socket buffer: header stack + payload fragments.

    Attributes
    ----------
    payload_bytes:
        Total user-data bytes described.
    fragments:
        ``(location, nbytes)`` pairs; locations are the module constants.
    headers:
        ``(layer_name, nbytes)`` pairs, outermost last (push order).
    payload:
        Opaque reference to the protocol packet / message object.
    """

    payload_bytes: int
    fragments: List[Tuple[str, int]] = field(default_factory=list)
    headers: List[Tuple[str, int]] = field(default_factory=list)
    payload: Any = None
    skb_id: int = field(default_factory=lambda: next(_skb_ids))
    #: Figure 8(b) receive path: the DMA was directed by the protocol
    #: module and may have landed straight in user memory — the module
    #: skips its own staging copy for bound receivers.
    direct_delivery: bool = False

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("negative payload")
        if not self.fragments and self.payload_bytes:
            self.fragments = [(SYSTEM_MEMORY, self.payload_bytes)]
        total = sum(n for _, n in self.fragments)
        if total != self.payload_bytes:
            raise ValueError(
                f"fragments sum to {total}, payload says {self.payload_bytes}"
            )

    # -- header stack ------------------------------------------------------
    def push_header(self, layer: str, nbytes: int) -> None:
        """Prepend a protocol header (kernel memory, negligible to move)."""
        if nbytes < 0:
            raise ValueError("negative header size")
        self.headers.append((layer, nbytes))

    def header_bytes(self) -> int:
        """Total pushed protocol-header bytes."""
        return sum(n for _, n in self.headers)

    def total_bytes(self) -> int:
        """Bytes that cross the PCI bus / wire for this buffer."""
        return self.payload_bytes + self.header_bytes()

    # -- fragment queries ----------------------------------------------------
    def bytes_in(self, location: str) -> int:
        """Payload bytes residing in the given memory location."""
        return sum(n for loc, n in self.fragments if loc == location)

    @property
    def is_zero_copy(self) -> bool:
        """True when the payload still lives entirely in user memory."""
        return self.payload_bytes > 0 and self.bytes_in(USER_MEMORY) == self.payload_bytes

    def relocate(self, location: str) -> None:
        """Record that the payload now lives entirely in ``location``
        (the cost of moving it is charged by the caller)."""
        if self.payload_bytes:
            self.fragments = [(location, self.payload_bytes)]

    @classmethod
    def for_user_payload(cls, nbytes: int, payload: Any = None) -> "SkBuff":
        """A buffer describing user-memory data (scatter/gather send)."""
        frags = [(USER_MEMORY, nbytes)] if nbytes else []
        return cls(payload_bytes=nbytes, fragments=frags, payload=payload)

    @classmethod
    def for_system_payload(cls, nbytes: int, payload: Any = None) -> "SkBuff":
        """A buffer whose data has been staged into kernel memory."""
        frags = [(SYSTEM_MEMORY, nbytes)] if nbytes else []
        return cls(payload_bytes=nbytes, fragments=frags, payload=payload)
