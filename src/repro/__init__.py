"""repro — reproduction of *The Lightweight Protocol CLIC on Gigabit
Ethernet* (Díaz et al., IPPS 2003) as a discrete-event simulation.

The package builds the paper's entire experimental stack in software: a
mechanism-level cluster node (CPU with interrupt priorities, memory and
PCI buses, Gigabit Ethernet NICs with coalescing/jumbo/scatter-gather,
link + switch), a Linux-2.4-like kernel substrate (syscalls, IRQs,
bottom halves, sk_buffs), the CLIC protocol itself, the TCP/IP baseline,
GAMMA and VIA comparators, and MPI/PVM middleware — then re-runs every
figure of the paper's evaluation on top.

Quickstart::

    from repro import Cluster, granada2003, ClicEndpoint

    cluster = Cluster(granada2003())
    a, b = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    ep_a, ep_b = ClicEndpoint(a, port=5), ClicEndpoint(b, port=5)

    def sender(proc):
        yield from ep_a.send(1, nbytes=64_000)

    def receiver(proc):
        msg = yield from ep_b.recv()
        print(f"{msg.nbytes} bytes at t={proc.env.now/1000:.1f} us")

    a.run(sender); b.run(receiver)
    cluster.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .cluster import Cluster, Node
from .config import (
    ClusterConfig,
    MTU_JUMBO,
    MTU_STANDARD,
    NodeConfig,
    granada2003,
)
from .protocols.clic import ClicEndpoint, ClicMessage
from .protocols.tcpip import TcpIpStack, TcpSocket, UdpSocket
from .workloads import pingpong, stream

__version__ = "1.0.0"

__all__ = [
    "ClicEndpoint",
    "ClicMessage",
    "Cluster",
    "ClusterConfig",
    "MTU_JUMBO",
    "MTU_STANDARD",
    "Node",
    "NodeConfig",
    "TcpIpStack",
    "TcpSocket",
    "UdpSocket",
    "granada2003",
    "pingpong",
    "stream",
]
