"""ASCII log-x line plots.

The paper's Figures 4-6 are bandwidth-vs-size plots with a logarithmic
size axis; this renders the reproduced curves directly in the terminal /
benchmark output so the *shape* comparison (who wins, where curves
cross, how fast they rise) is visible without a plotting stack.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["logx_plot"]

_MARKERS = "ox+*#@%&"


def logx_plot(
    series_list: Sequence,
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    ylabel: str = "Mbps",
) -> str:
    """Render SweepSeries curves on a log-x / linear-y character grid."""
    if not series_list:
        raise ValueError("no series")
    all_x = [x for s in series_list for x in s.sizes if x > 0]
    all_y = [y for s in series_list for y in s.mbps]
    if not all_x:
        raise ValueError("no positive sizes to plot")
    x_lo, x_hi = math.log10(min(all_x)), math.log10(max(all_x))
    y_hi = max(all_y) * 1.05 or 1.0
    x_span = max(x_hi - x_lo, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for si, series in enumerate(series_list):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(series.sizes, series.mbps):
            if x <= 0:
                continue
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int(y / y_hi * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi * (height - 1 - i) / (height - 1)
        lines.append(f"{y_val:8.0f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    # Decade tick labels.
    ticks = [" "] * width
    decade = math.ceil(x_lo)
    while decade <= x_hi:
        col = int((decade - x_lo) / x_span * (width - 1))
        label = f"1e{decade}"
        for j, ch in enumerate(label):
            if col + j < width:
                ticks[col + j] = ch
        decade += 1
    lines.append(" " * 10 + "".join(ticks) + "  bytes")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(series_list)
    )
    lines.append(f"  [{ylabel}]  {legend}")
    return "\n".join(lines)
