"""Result analysis: tables, ASCII plots, pipeline timelines, curve metrics."""

from .ascii_plot import logx_plot
from .cpu_report import breakdown_table, categorize, cpu_breakdown
from .metrics import (
    crossover_size,
    interpolate_half_bandwidth,
    ratio_at,
    rise_rate,
    size_reaching,
)
from .tables import format_series_table, format_table
from .timeline import (
    PacketTimeline,
    Stage,
    extract_packet_timeline,
    extract_packet_timeline_from_spans,
)

__all__ = [
    "PacketTimeline",
    "breakdown_table",
    "categorize",
    "cpu_breakdown",
    "Stage",
    "crossover_size",
    "extract_packet_timeline",
    "extract_packet_timeline_from_spans",
    "format_series_table",
    "format_table",
    "interpolate_half_bandwidth",
    "logx_plot",
    "ratio_at",
    "rise_rate",
    "size_reaching",
]
