"""Curve metrics for the paper's headline comparisons."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "interpolate_half_bandwidth",
    "crossover_size",
    "ratio_at",
    "rise_rate",
    "size_reaching",
]


def interpolate_half_bandwidth(sizes: Sequence[int], mbps: Sequence[float]) -> Optional[float]:
    """Size (log-interpolated) at which a curve first reaches half its
    final bandwidth — the paper's 4 KB / 16 KB metric."""
    if len(sizes) != len(mbps) or not sizes:
        raise ValueError("mismatched or empty curve")
    target = mbps[-1] / 2
    for i, bw in enumerate(mbps):
        if bw >= target:
            if i == 0:
                return float(sizes[0])
            x0, x1 = math.log10(sizes[i - 1]), math.log10(sizes[i])
            y0, y1 = mbps[i - 1], mbps[i]
            frac = (target - y0) / (y1 - y0) if y1 != y0 else 0.0
            return 10 ** (x0 + frac * (x1 - x0))
    return None


def crossover_size(
    sizes: Sequence[int], curve_a: Sequence[float], curve_b: Sequence[float]
) -> Optional[int]:
    """First size where curve A stops beating curve B (None if never)."""
    for n, a, b in zip(sizes, curve_a, curve_b):
        if a < b:
            return n
    return None


def ratio_at(
    sizes: Sequence[int], curve_a: Sequence[float], curve_b: Sequence[float], nbytes: int
) -> float:
    """A/B bandwidth ratio at a given measured size."""
    idx = list(sizes).index(nbytes)
    if curve_b[idx] == 0:
        raise ZeroDivisionError(f"curve B is zero at {nbytes}")
    return curve_a[idx] / curve_b[idx]


def size_reaching(sizes: Sequence[int], mbps: Sequence[float], threshold: float) -> Optional[float]:
    """Log-interpolated size at which the curve first reaches
    ``threshold`` Mb/s (None if it never does).  Comparing two curves at
    a common threshold captures the paper's "rises faster" claim."""
    for i, bw in enumerate(mbps):
        if bw >= threshold:
            if i == 0:
                return float(sizes[0])
            x0, x1 = math.log10(sizes[i - 1]), math.log10(sizes[i])
            y0, y1 = mbps[i - 1], mbps[i]
            frac = (threshold - y0) / (y1 - y0) if y1 != y0 else 0.0
            return 10 ** (x0 + frac * (x1 - x0))
    return None


def rise_rate(sizes: Sequence[int], mbps: Sequence[float], frac: float = 0.8) -> float:
    """Log-size at which the curve reaches ``frac`` of its asymptote —
    lower means "rises faster" (the paper's claim about CLIC vs TCP)."""
    target = mbps[-1] * frac
    for n, bw in zip(sizes, mbps):
        if bw >= target:
            return math.log10(n)
    return math.log10(sizes[-1])
