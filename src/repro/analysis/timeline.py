"""Pipeline timeline extraction — reproduces Figure 7.

Figure 7 shows where the microseconds go for a single 1400-byte packet
crossing the CLIC pipeline: sender syscall + CLIC_MODULE + driver, wire
flight, receiver driver-interrupt stage (the dominant ~15 µs), bottom
halves -> CLIC_MODULE, and the copy into user memory.  This module
reconstructs those stages from the simulator's trace records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim import Trace, TraceRecord

__all__ = ["Stage", "PacketTimeline", "extract_packet_timeline"]


@dataclass
class Stage:
    """One labeled interval of the pipeline."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_us(self) -> float:
        return (self.end_ns - self.start_ns) / 1000

    def __repr__(self) -> str:
        return f"{self.name}: {self.duration_us:.2f} us"


@dataclass
class PacketTimeline:
    """The full pipeline breakdown of one packet."""

    packet_id: int
    stages: List[Stage]

    @property
    def total_us(self) -> float:
        return (self.stages[-1].end_ns - self.stages[0].start_ns) / 1000

    def stage(self, name: str) -> Stage:
        """Return the stage named ``name`` (KeyError if absent)."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r} (have {[s.name for s in self.stages]})")

    def as_rows(self) -> List[tuple]:
        """Rows of (stage, start us, duration us) for tabulation."""
        return [(s.name, round(s.start_ns / 1000, 2), round(s.duration_us, 2)) for s in self.stages]


def _first(records: List[TraceRecord], source_suffix: str, event: str, **detail) -> Optional[TraceRecord]:
    for r in records:
        if not r.source.endswith(source_suffix) and source_suffix:
            continue
        if r.event != event:
            continue
        if all(r.detail.get(k) == v for k, v in detail.items()):
            return r
    return None


def extract_packet_timeline(trace: Trace, packet_id: int, sender: str, receiver: str) -> PacketTimeline:
    """Rebuild Figure 7's stages for ``packet_id``.

    ``sender``/``receiver`` are node name prefixes ("node0", "node1").
    Expected trace records (all emitted by the kernel/driver/module):

    * sender: ``syscall_enter``/``syscall_exit`` around the send,
      ``driver_tx`` when the descriptor is posted;
    * receiver: ``irq_begin``, ``driver_rx`` (with ``t0``), ``module_rx``,
      and the receive syscall/wake records.
    """
    records = trace.records
    sys_enter = _first(records, f"{sender}.kernel", "syscall_enter", label="clic_send")
    drv_tx = _first(records, "", "driver_tx", pkt=packet_id)
    drv_rx = _first(records, "", "driver_rx", pkt=packet_id)
    mod_rx = _first(records, f"{receiver}.clic", "module_rx", pkt=packet_id)
    if sys_enter is None or drv_tx is None or drv_rx is None or mod_rx is None:
        missing = [
            name
            for name, rec in [
                ("syscall_enter", sys_enter),
                ("driver_tx", drv_tx),
                ("driver_rx", drv_rx),
                ("module_rx", mod_rx),
            ]
            if rec is None
        ]
        raise ValueError(f"trace incomplete for packet {packet_id}: missing {missing}")

    irq_begin = None
    for r in records:
        if r.event == "irq_begin" and r.source.startswith(receiver) and r.time <= r.time:
            if r.time <= drv_rx.time:
                irq_begin = r
    if irq_begin is None:
        raise ValueError("no irq_begin before driver_rx")

    # Wake of the receiving process (first wake after module_rx), if any.
    wake = None
    for r in records:
        if r.event == "wake" and r.source.startswith(receiver) and r.time >= mod_rx.time:
            wake = r
            break

    stages = [
        Stage("sender: syscall + CLIC_MODULE + driver", sys_enter.time, drv_tx.time),
        Stage("NIC DMA + flight", drv_tx.time, irq_begin.time),
        Stage("receiver: driver interrupt (NIC->system copy)", irq_begin.time, drv_rx.time),
        Stage("bottom halves -> CLIC_MODULE", drv_rx.time, mod_rx.time),
    ]
    if wake is not None:
        stages.append(Stage("CLIC_MODULE copy to user + wake", mod_rx.time, wake.time))
    return PacketTimeline(packet_id=packet_id, stages=stages)
