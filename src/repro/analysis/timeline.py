"""Pipeline timeline extraction — reproduces Figure 7.

Figure 7 shows where the microseconds go for a single 1400-byte packet
crossing the CLIC pipeline: sender syscall + CLIC_MODULE + driver, wire
flight, receiver driver-interrupt stage (the dominant ~15 µs), bottom
halves -> CLIC_MODULE, and the copy into user memory.  This module
reconstructs those stages two ways:

* :func:`extract_packet_timeline` from the flat trace-record stream
  (the original path, now using the trace's per-event index);
* :func:`extract_packet_timeline_from_spans` from the structured spans
  emitted by :class:`repro.obs.Tracer` — a set of lookups instead of
  record scans.  Both produce identical stage boundaries because the
  spans are begun/ended at exactly the simulated times the legacy
  records are emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import Tracer
from ..sim import Trace, TraceRecord

__all__ = [
    "Stage",
    "PacketTimeline",
    "extract_packet_timeline",
    "extract_packet_timeline_from_spans",
]


@dataclass
class Stage:
    """One labeled interval of the pipeline."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_us(self) -> float:
        return (self.end_ns - self.start_ns) / 1000

    def __repr__(self) -> str:
        return f"{self.name}: {self.duration_us:.2f} us"


@dataclass
class PacketTimeline:
    """The full pipeline breakdown of one packet."""

    packet_id: int
    stages: List[Stage]

    @property
    def total_us(self) -> float:
        return (self.stages[-1].end_ns - self.stages[0].start_ns) / 1000

    def stage(self, name: str) -> Stage:
        """Return the stage named ``name`` (KeyError if absent)."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r} (have {[s.name for s in self.stages]})")

    def as_rows(self) -> List[tuple]:
        """Rows of (stage, start us, duration us) for tabulation."""
        return [(s.name, round(s.start_ns / 1000, 2), round(s.duration_us, 2)) for s in self.stages]


def _require(packet_id: int, **found) -> None:
    missing = [name for name, rec in found.items() if rec is None]
    if missing:
        raise ValueError(f"trace incomplete for packet {packet_id}: missing {missing}")


def _build_stages(packet_id: int, sys_enter_ns: float, drv_tx_ns: float,
                  irq_begin_ns: float, drv_rx_ns: float, mod_rx_ns: float,
                  wake_ns: Optional[float]) -> PacketTimeline:
    stages = [
        Stage("sender: syscall + CLIC_MODULE + driver", sys_enter_ns, drv_tx_ns),
        Stage("NIC DMA + flight", drv_tx_ns, irq_begin_ns),
        Stage("receiver: driver interrupt (NIC->system copy)", irq_begin_ns, drv_rx_ns),
        Stage("bottom halves -> CLIC_MODULE", drv_rx_ns, mod_rx_ns),
    ]
    if wake_ns is not None:
        stages.append(Stage("CLIC_MODULE copy to user + wake", mod_rx_ns, wake_ns))
    return PacketTimeline(packet_id=packet_id, stages=stages)


def extract_packet_timeline(trace: Trace, packet_id: int, sender: str, receiver: str) -> PacketTimeline:
    """Rebuild Figure 7's stages for ``packet_id`` from trace records.

    ``sender``/``receiver`` are node name prefixes ("node0", "node1").
    Expected trace records (all emitted by the kernel/driver/module):

    * sender: ``syscall_enter``/``syscall_exit`` around the send,
      ``driver_tx`` when the descriptor is posted;
    * receiver: ``irq_begin``, ``driver_rx`` (with ``t0``), ``module_rx``,
      and the receive syscall/wake records.
    """
    sys_enter = trace.first("syscall_enter", source_suffix=f"{sender}.kernel", label="clic_send")
    drv_tx = trace.first("driver_tx", pkt=packet_id)
    drv_rx = trace.first("driver_rx", pkt=packet_id)
    mod_rx = trace.first("module_rx", source_suffix=f"{receiver}.clic", pkt=packet_id)
    _require(packet_id, syscall_enter=sys_enter, driver_tx=drv_tx,
             driver_rx=drv_rx, module_rx=mod_rx)

    # The interrupt this frame was drained in: the *latest* irq_begin on
    # the receiver at or before the frame's driver_rx (coalescing means
    # earlier interrupts may have serviced earlier frames).
    candidates = [
        r for r in trace.by_event("irq_begin")
        if r.source.startswith(receiver) and r.time <= drv_rx.time
    ]
    if not candidates:
        raise ValueError("no irq_begin before driver_rx")
    irq_begin = max(candidates, key=lambda r: r.time)

    # Wake of the receiving process (first wake after module_rx), if any.
    wake = None
    for r in trace.by_event("wake"):
        if r.source.startswith(receiver) and r.time >= mod_rx.time:
            wake = r
            break

    return _build_stages(
        packet_id, sys_enter.time, drv_tx.time, irq_begin.time, drv_rx.time,
        mod_rx.time, wake.time if wake is not None else None,
    )


def extract_packet_timeline_from_spans(
    tracer: Tracer, packet_id: int, sender: str, receiver: str
) -> PacketTimeline:
    """Rebuild Figure 7's stages for ``packet_id`` from structured spans.

    Pure index lookups on the :class:`~repro.obs.Tracer`: the sender's
    ``syscall`` span (label ``clic_send``), the ``driver_tx`` /
    ``driver_rx`` / ``module_rx`` instants for the packet, the latest
    receiver ``irq`` span enclosing the frame drain, and the receiver's
    first ``wake`` instant after module processing.  Stage boundaries are
    identical to :func:`extract_packet_timeline` by construction.
    """
    sys_span = tracer.first(scope=f"{sender}.kernel", name="syscall", label="clic_send")
    drv_tx = tracer.first_instant("driver_tx", pkt=packet_id)
    drv_rx = tracer.first_instant("driver_rx", pkt=packet_id)
    mod_rx = tracer.first_instant("module_rx", scope_prefix=receiver, pkt=packet_id)
    _require(packet_id, syscall_span=sys_span, driver_tx=drv_tx,
             driver_rx=drv_rx, module_rx=mod_rx)

    irq_spans = [
        s for s in tracer.find(name="irq", scope_prefix=receiver)
        if s.start_ns <= drv_rx.time
    ]
    if not irq_spans:
        raise ValueError("no irq span before driver_rx")
    irq_span = max(irq_spans, key=lambda s: s.start_ns)

    wake = None
    for inst in tracer.instants("wake", scope_prefix=receiver):
        if inst.time >= mod_rx.time:
            wake = inst
            break

    return _build_stages(
        packet_id, sys_span.start_ns, drv_tx.time, irq_span.start_ns,
        drv_rx.time, mod_rx.time, wake.time if wake is not None else None,
    )
