"""CPU-time breakdown reporting.

Every :meth:`~repro.hw.cpu.Cpu.execute` call carries a label; the CPU
accumulates per-label busy time in its counters (``work.<label>``).
This module folds those labels into the categories the paper argues
about — interrupt handling, protocol processing, data copies,
application — so an experiment can show *where the cycles went* (the
§2 claim that gigabit communication eats the host CPU, and the §5 claim
that CLIC gives most of it back).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..hw.cpu import Cpu
from .tables import format_table

__all__ = ["CATEGORIES", "categorize", "cpu_breakdown", "breakdown_table"]

#: label-prefix -> category, first match wins.
CATEGORIES: List[Tuple[str, str]] = [
    ("irq", "interrupts"),
    ("drv_irq", "interrupts"),
    ("drv_rx_dma", "driver rx"),
    ("drv_rx", "driver rx"),
    ("drv_tx", "driver tx"),
    ("bh_dispatch", "bottom halves"),
    ("sys_", "syscalls"),
    ("lw_", "syscalls"),
    ("sched", "scheduling"),
    ("ctxsw", "scheduling"),
    ("u2s", "copies"),
    ("s2u", "copies"),
    ("u2u", "copies"),
    ("memcpy", "copies"),
    ("pvm_pack", "copies"),
    ("pvm_unpack", "copies"),
    ("clic_", "protocol"),
    ("tcp_", "protocol"),
    ("udp_", "protocol"),
    ("sock_", "protocol"),
    ("gamma_", "protocol"),
    ("via_poll", "polling"),
    ("via_", "protocol"),
    ("mpi_", "middleware"),
    ("pvm", "middleware"),
    ("user.", "application"),
]


def categorize(label: str) -> str:
    """Map a CPU work label to its reporting category."""
    for prefix, category in CATEGORIES:
        if label.startswith(prefix):
            return category
    return "other"


def cpu_breakdown(cpu: Cpu) -> Dict[str, float]:
    """Aggregate a CPU's ``work.*`` counters into category -> busy ns."""
    out: Dict[str, float] = {}
    for name, value in cpu.counters.snapshot().items():
        if not name.startswith("work."):
            continue
        label = name[len("work."):]
        category = categorize(label)
        out[category] = out.get(category, 0.0) + value
    return out


def breakdown_table(
    cpus: Mapping[str, Cpu],
    wall_ns: Optional[float] = None,
    title: str = "CPU time breakdown",
) -> str:
    """Tabulate breakdowns for several CPUs side by side (us, with a
    percent-of-wall column when ``wall_ns`` is given)."""
    if not cpus:
        raise ValueError("no CPUs")
    breakdowns = {name: cpu_breakdown(cpu) for name, cpu in cpus.items()}
    categories = sorted({c for b in breakdowns.values() for c in b})
    headers = ["category"] + [
        h for name in breakdowns for h in ((f"{name} (us)", f"{name} %") if wall_ns else (f"{name} (us)",))
    ]
    rows = []
    for category in categories:
        row: List = [category]
        for name in breakdowns:
            ns = breakdowns[name].get(category, 0.0)
            row.append(round(ns / 1000, 1))
            if wall_ns:
                row.append(round(ns / wall_ns * 100, 1))
        rows.append(row)
    total_row: List = ["TOTAL busy"]
    for name in breakdowns:
        total = sum(breakdowns[name].values())
        total_row.append(round(total / 1000, 1))
        if wall_ns:
            total_row.append(round(total / wall_ns * 100, 1))
    rows.append(total_row)
    return format_table(headers, rows, title=title)
