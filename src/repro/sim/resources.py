"""Shared-resource primitives for the simulation core.

Provides the queuing abstractions the hardware and OS models are built on:

* :class:`Resource` — a counted server with FIFO queueing (e.g. a DMA
  engine, a bus grant).
* :class:`PriorityResource` — FIFO within priority classes (e.g. the PCI
  arbiter favouring the NIC over programmed I/O).
* :class:`PreemptiveResource` — priority plus preemption of the running
  user (the CPU model: interrupts preempt user code).
* :class:`Store` — a producer/consumer buffer of Python objects (e.g. NIC
  descriptor rings, socket receive queues).

All requests are events; processes ``yield`` them.  Request objects are
context managers so ``with resource.request() as req: yield req`` releases
automatically.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional

from .core import Environment, Event, SimulationError

__all__ = [
    "Request",
    "PriorityRequest",
    "Release",
    "Preempted",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Store",
    "StorePut",
    "StoreGet",
]


class Preempted:
    """Cause object delivered with the Interrupt when a request is preempted."""

    __slots__ = ("by", "usage_since", "resource")

    def __init__(self, by: "PriorityRequest", usage_since: float, resource: "Resource"):
        #: The request that preempted us.
        self.by = by
        #: Simulation time at which the preempted request acquired the resource.
        self.usage_since = usage_since
        #: The resource involved.
        self.resource = resource

    def __repr__(self) -> str:
        return f"<Preempted by={self.by!r} since={self.usage_since}>"


class Request(Event):
    """A request to use a :class:`Resource` (also a context manager)."""

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        #: When the request was granted (None while queued).
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.resource is not None:
            self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a still-queued request (no-op if already granted)."""
        self.resource._do_cancel(self)


class PriorityRequest(Request):
    """A request with priority (lower value = more important) and preempt flag."""

    __slots__ = ("priority", "preempt", "time", "key")

    def __init__(self, resource: "Resource", priority: int = 0, preempt: bool = False):
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        # FIFO within the same priority; preempting requests beat
        # non-preempting ones of equal priority and time.
        self.key = (priority, self.time, not preempt)
        super().__init__(resource)


class Release(Event):
    """Event representing a release; triggers immediately."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        resource._do_release(request)
        self.succeed(request)


class Resource:
    """A counted, FIFO-queued resource.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Number of concurrent users (>= 1).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: List[Request] = []

    # -- public API -----------------------------------------------------
    def request(self) -> Request:
        """Queue a request; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a granted request (or cancel a queued one)."""
        return Release(self, request)

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self.users)

    # -- mechanics -------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        self.queue.append(request)
        self._trigger_queued()

    def _do_release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Never granted; drop from the wait queue instead.
            self._do_cancel(request)
            return
        self._trigger_queued()

    def _do_cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed(self)

    def _trigger_queued(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.pop(0)
            if request.triggered:  # cancelled/failed while queued
                continue
            self._grant(request)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def request(self, priority: int = 0, preempt: bool = False) -> PriorityRequest:  # type: ignore[override]
        """Queue a prioritized request (lower = more important)."""
        return PriorityRequest(self, priority=priority, preempt=preempt)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        self.queue.append(request)
        self.queue.sort(key=lambda r: r.key)
        self._trigger_queued()


class PreemptiveResource(PriorityResource):
    """A priority resource where preempting requests evict lower-priority users.

    When a request with ``preempt=True`` arrives and all slots are taken,
    the user with the *worst* key is compared against the new request; if
    strictly less important it is interrupted (its owning process receives
    an :class:`~repro.sim.core.Interrupt` whose cause is a
    :class:`Preempted` record) and the slot is handed over.

    This models the CPU: a hardware interrupt (priority 0, preempt) evicts
    user-mode computation (priority 10).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._owners: dict = {}  # request -> process to interrupt on preemption

    def request(self, priority: int = 0, preempt: bool = True) -> PriorityRequest:  # type: ignore[override]
        """Request that may evict a lower-priority holder."""
        req = PriorityRequest.__new__(PriorityRequest)
        req.priority = priority
        req.preempt = preempt
        req.time = self.env.now
        req.key = (priority, req.time, not preempt)
        Event.__init__(req, self.env)
        req.resource = self
        req.usage_since = None
        owner = self.env.active_process
        self._owners[req] = owner
        self._do_request(req)
        return req

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if request.preempt and len(self.users) >= self.capacity and not self.queue:
            self._maybe_preempt(request)
        elif request.preempt and len(self.users) >= self.capacity:
            self._maybe_preempt(request)
        super()._do_request(request)

    def _maybe_preempt(self, request: PriorityRequest) -> None:
        victims = [u for u in self.users if isinstance(u, PriorityRequest)]
        if not victims:
            return
        victim = max(victims, key=lambda r: r.key)
        if victim.key > request.key:
            owner = self._owners.get(victim)
            self.users.remove(victim)
            self._owners.pop(victim, None)
            if owner is not None and owner.is_alive:
                owner.interrupt(Preempted(request, victim.usage_since, self))

    def _do_release(self, request: Request) -> None:
        self._owners.pop(request, None)
        super()._do_release(request)


class StorePut(Event):
    """Put request on a :class:`Store`; triggers once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Get request on a :class:`Store`; triggers with the retrieved item."""

    __slots__ = ("filter", "_store")

    def __init__(self, store: "Store", filter=None):
        super().__init__(store.env)
        self.filter = filter
        self._store = store
        store._get_queue.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw the get request if not yet satisfied."""
        if not self.triggered:
            try:
                self._store._get_queue.remove(self)
            except ValueError:
                pass


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put(item)`` blocks (as an event) while the store is full;
    ``get()`` blocks while it is empty.  ``get(filter=f)`` retrieves the
    first item matching predicate ``f`` (a *FilterStore* in SimPy terms),
    used e.g. for tag-matched message receive queues.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Event that triggers once the item is stored."""
        return StorePut(self, item)

    def get(self, filter=None) -> StoreGet:
        """Event that triggers with the next (or first matching) item."""
        return StoreGet(self, filter)

    def try_get(self) -> Any:
        """Non-blocking get: pop and return the head item or ``None``."""
        if self.items:
            item = self.items.pop(0)
            self._trigger()
            return item
        return None

    def __len__(self) -> int:
        return len(self.items)

    # -- mechanics -------------------------------------------------------
    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Satisfy puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                if put.triggered:
                    continue
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets while items match.
            idx = 0
            while idx < len(self._get_queue):
                get = self._get_queue[idx]
                if get.triggered:
                    self._get_queue.pop(idx)
                    continue
                item_idx = self._find(get.filter)
                if item_idx is None:
                    idx += 1
                    continue
                item = self.items.pop(item_idx)
                self._get_queue.pop(idx)
                get.succeed(item)
                progressed = True

    def _find(self, filter) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None
