"""Discrete-event simulation core.

This module implements the event loop at the heart of the reproduction: a
deterministic, single-threaded discrete-event simulator in the style of
SimPy, built from scratch so the whole stack is self-contained.  Simulated
entities (CPUs, buses, NICs, kernel activities, user processes) are Python
generator *processes* that ``yield`` events; the :class:`Environment`
advances virtual time from one scheduled event to the next.

Time is measured in **nanoseconds** throughout the project (see
:mod:`repro.units`).  Events scheduled for the same timestamp are processed
in FIFO order of scheduling (a monotonic tie-break counter in the heap
entries — never re-sorted), which keeps every simulation bit-reproducible.

Two hot-path shortcuts keep the per-event Python cost down:

* :meth:`Environment.call_later` schedules a bare callback through a
  slotted :class:`TimerHandle` instead of the full ``Process`` +
  ``Timeout`` machinery — the dominant shape for protocol timers that
  are armed and cancelled far more often than they fire;
* cancellation is *lazy*: :meth:`TimerHandle.cancel` just marks the
  handle dead, and the loop drops the stale heap entry when it reaches
  the top, instead of rebuilding the heap.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable, Iterator, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "TimerHandle",
    "Process",
    "Interrupt",
    "Condition",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "profiled",
]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Scheduling priority for events that must run before ordinary events at
#: the same timestamp (used internally, e.g. for process resumption after
#: an interrupt so the interrupt wins races deterministically).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: When a :func:`profiled` block is active, every new Environment
#: attaches an :class:`~repro.obs.profile.EnvProfiler` and registers it
#: here, so tooling (``repro.perf``, ``--json`` artifact capture) can
#: account simulator cost without threading a flag through every config.
_PROFILE_SINK: Optional[List[Any]] = None


@contextmanager
def profiled() -> Iterator[List[Any]]:
    """Profile every :class:`Environment` created inside the block.

    Yields the list the profilers accumulate into (one
    :class:`~repro.obs.profile.EnvProfiler` per environment, in creation
    order); aggregate it with
    :func:`repro.obs.profile.aggregate_profiles`.  Blocks nest — the
    inner block temporarily shadows the outer sink.
    """
    global _PROFILE_SINK
    sink: List[Any] = []
    prev, _PROFILE_SINK = _PROFILE_SINK, sink
    try:
        yield sink
    finally:
        _PROFILE_SINK = prev


class SimulationError(Exception):
    """Base class for errors raised by the simulation core."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    triggers it, scheduling its callbacks to run at the current simulation
    time.  Processes wait for events by ``yield``-ing them.

    Attributes
    ----------
    env:
        The environment the event lives in.
    callbacks:
        List of callables invoked with the event once it is processed.
        ``None`` after processing.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value (even if not yet processed)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is untriggered."""
        if self._value is Event._PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits, the environment raises it at the
        end of the step (an *undefused* failure), so programming errors
        cannot vanish silently.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defuse_of(event)
            self.fail(event._value)

    @staticmethod
    def _defuse_of(event: "Event") -> None:
        event._defused = True

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed delay.

    Construction is inlined (no ``Event.__init__``/``_schedule`` calls):
    a ``Timeout`` is the most frequently created object in the whole
    simulator, so it pays to assign the slots and push the heap entry
    directly.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq += 1
        _heappush(env._queue, (env._now + delay, NORMAL, env._seq, self))
        if env.profiler is not None:
            env.profiler.on_schedule(len(env._queue))


class TimerHandle:
    """A one-shot scheduled callback (see :meth:`Environment.call_later`).

    The cheap alternative to a timer *process*: one slotted object, one
    heap entry, and a bare no-argument callable stored in the
    ``callbacks`` slot (the event loop dispatches on its type).  The
    reliability/coalescing timers arm and cancel these constantly and
    only rarely let them fire.

    :meth:`cancel` is O(1) and lazy — the dead heap entry is discarded
    when the loop pops it, without touching the rest of the heap.  A
    fired or cancelled handle is never reused (pooling handles was
    considered and rejected: a stale ``cancel()`` on a recycled handle
    would silently kill an unrelated timer).
    """

    __slots__ = ("callbacks",)

    def __init__(self, fn: Callable[[], None]):
        self.callbacks = fn

    @property
    def active(self) -> bool:
        """``True`` while the callback is still scheduled to run."""
        return self.callbacks is not None

    def cancel(self) -> None:
        """Stop the callback from running (idempotent, O(1))."""
        self.callbacks = None

    def __repr__(self) -> str:
        state = "active" if self.callbacks is not None else "dead"
        return f"<TimerHandle {state} at {hex(id(self))}>"


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """Whatever the interrupter passed as the cause."""
        return self.args[0]


class _Initialize(Event):
    """Starts a newly created process on the next event-loop step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A process wrapping a generator.

    The process itself is an event that triggers when the generator
    returns (with its return value) or raises (with the exception), so
    processes can wait for each other simply by yielding them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event the process is currently waiting for (or None).
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator has terminated."""
        return self._value is Event._PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered on the next event-loop step with URGENT
        priority.  Interrupting a dead process, or a process from within
        itself, is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)

    # -- internal -------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome."""
        env = self.env
        env._active_proc = self
        # Disconnect from a pending target if we are being interrupted
        # while waiting on some other event.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as exc:
                env._active_proc = None
                self._ok = True
                self._value = exc.value
                env._schedule(self)
                return
            except BaseException as exc:
                env._active_proc = None
                self._ok = False
                self._value = exc
                env._schedule(self)
                return
            # The generator yielded an event to wait for.
            if not isinstance(next_event, Event):
                env._active_proc = None
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                self._generator.close()
                self._ok = False
                self._value = err
                env._schedule(self)
                return
            if next_event.callbacks is not None:
                # Event still pending: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop and resume immediately with it.
            event = next_event
        env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Waits for a combination of events (base for AnyOf/AllOf)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        """Map of event -> value for all already-processed ok events, in order.

        Uses ``processed`` rather than ``triggered`` because a
        :class:`Timeout` carries its value from construction (it is
        "triggered" before it happens).
        """
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


class AllOf(Condition):
    """Triggers when all of the given events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count == len(events), events)


class Environment:
    """The simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (nanoseconds).
    profile:
        When true, attach an :class:`~repro.obs.profile.EnvProfiler`
        that tallies events per process/type and the queue's high-water
        mark (see :attr:`profiler`).  Off by default: the disabled cost
        is one ``is None`` check per scheduled/processed event.
    """

    def __init__(self, initial_time: float = 0, profile: bool = False):
        self._now = initial_time
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_proc: Optional[Process] = None
        #: optional :class:`~repro.obs.profile.EnvProfiler`
        self.profiler = None
        #: optional :class:`~repro.sim.flowmode.FlowModeController` — the
        #: hybrid flow/packet engine's eligibility oracle.  ``None`` (the
        #: default) means every frame is simulated discretely at every
        #: hop; the cluster builder installs a controller when
        #: ``SimParams.flow_mode == "auto"``.
        self.flow = None
        if profile or _PROFILE_SINK is not None:
            self.enable_profiling()
        if _PROFILE_SINK is not None:
            _PROFILE_SINK.append(self.profiler)

    def enable_profiling(self):
        """Attach (or return the existing) event-loop profiler."""
        if self.profiler is None:
            from ..obs.profile import EnvProfiler

            self.profiler = EnvProfiler()
        return self.profiler

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (ns)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Lazily prunes cancelled timer entries from the head of the heap
        so the answer always refers to an event that will actually run.
        """
        queue = self._queue
        while queue:
            if queue[0][3].callbacks is None:
                _heappop(queue)  # lazily-cancelled timer: drop and retry
                continue
            return queue[0][0]
        return float("inf")

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def call_later(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> TimerHandle:
        """Schedule ``fn()`` to run after ``delay`` ns; returns a handle.

        The fast path for one-shot timers: compared to spawning a
        process that yields a :class:`Timeout`, this allocates one
        slotted handle and one heap entry, and cancellation via
        :meth:`TimerHandle.cancel` leaves the dead entry to be dropped
        lazily by the loop.  ``fn`` takes no arguments and must not
        raise (an exception would abort the whole simulation, exactly
        as an undefused failure does).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        handle = TimerHandle(fn)
        self._seq += 1
        _heappush(self._queue, (self._now + delay, priority, self._seq, handle))
        if self.profiler is not None:
            self.profiler.on_schedule(len(self._queue))
        return handle

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    # -- scheduling & the loop ---------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0) -> None:
        self._seq += 1
        _heappush(self._queue, (self._now + delay, priority, self._seq, event))
        if self.profiler is not None:
            self.profiler.on_schedule(len(self._queue))

    def step(self) -> None:
        """Process the next scheduled event (advancing the clock).

        A lazily-cancelled timer entry at the head of the heap is
        dropped without running anything or advancing the clock (it is
        no longer an event, just garbage awaiting collection).
        """
        if not self._queue:
            raise SimulationError("no more events")
        when, _, _, event = _heappop(self._queue)
        callbacks = event.callbacks
        if callbacks is None:
            return  # cancelled timer: drop the dead entry
        self._now = when
        event.callbacks = None
        if self.profiler is not None:
            self.profiler.on_step(event, callbacks)
        if type(callbacks) is list:
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # A failure nobody waited on: surface it loudly.
                exc = event._value
                raise exc
        else:
            callbacks()  # TimerHandle fast path: a bare callable

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulation time), or an :class:`Event` (run until
        it is processed, returning its value).
        """
        stop_at = None
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    return stop_event.value if stop_event._ok else self._reraise(stop_event)
                stop_event.callbacks.append(self._stop_callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until ({stop_at}) must not be earlier than now ({self._now})"
                    )
        try:
            if stop_at is None and self.profiler is None:
                # Hot loop: ``step()`` inlined with the queue, heappop
                # and the per-event bookkeeping bound to locals.  Event
                # semantics are identical to ``step()`` (the ordering
                # tests in tests/sim pin this).
                queue = self._queue
                pop = _heappop
                while queue:
                    item = pop(queue)
                    event = item[3]
                    callbacks = event.callbacks
                    if callbacks is None:
                        continue  # lazily-cancelled timer entry
                    self._now = item[0]
                    event.callbacks = None
                    if type(callbacks) is list:
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                    else:
                        callbacks()  # TimerHandle fast path
            else:
                while self._queue:
                    if stop_at is not None and self._queue[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    self.step()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                f"event queue drained but {stop_event!r} never triggered"
            )
        if stop_event is not None:
            return stop_event.value if stop_event._ok else self._reraise(stop_event)
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _reraise(event: Event) -> None:
        raise event._value

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
