"""Deterministic random-number streams.

Every stochastic element of a simulation (packet-loss injection, workload
inter-arrival jitter, scheduler tie-breaking noise, ...) draws from its own
named stream so that adding randomness to one subsystem never perturbs
another.  All streams derive from a single root seed, making whole runs
bit-reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent, named :class:`numpy.random.Generator` streams.

    >>> rngs = RngStreams(seed=42)
    >>> a = rngs.stream("loss")       # stable across runs
    >>> b = rngs.stream("jitter")     # independent of "loss"
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family (e.g. one per node) from this one."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
