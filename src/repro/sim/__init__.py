"""Self-contained discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.core.Environment` and the event/process machinery,
* queuing resources in :mod:`repro.sim.resources`,
* deterministic RNG streams in :mod:`repro.sim.rng`,
* tracing and accounting in :mod:`repro.sim.monitor`.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    TimerHandle,
    profiled,
)
from .flowmode import FlowModeController, FlowRoute
from .monitor import BusyTracker, Counters, IntervalStats, Trace, TraceRecord
from .resources import (
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Request,
    Resource,
    Store,
)
from .rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Condition",
    "Counters",
    "Environment",
    "Event",
    "FlowModeController",
    "FlowRoute",
    "Interrupt",
    "IntervalStats",
    "Preempted",
    "PreemptiveResource",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "TimerHandle",
    "Trace",
    "TraceRecord",
    "profiled",
]
