"""Hybrid flow/packet engine: eligibility oracle for bulk-train batching.

The perf profile of a bulk transfer is one event per frame per hop —
NIC tx pump, wire, switch forward, egress wire, NIC rx, IRQ, bottom
half — even though in steady state every one of those per-frame steps
is analytically predictable.  The hybrid engine exploits that: when a
sender's window is in steady state, the protocol layer hands the
pipeline a *train* — one frame object that stands for ``k`` back-to-back
full-size fragments — and every hop advances it as a single batched
event whose duration and counters are computed closed-form over the
batch (``k`` x per-frame serialization, ``k`` PCI setups, ``k`` ring
slots, one coalesced interrupt).  Frames only materialize individually
at protocol-relevant boundaries: window edges, scheduled fault windows,
switch contention, reorder stash occupancy, ack cadence.

:class:`FlowModeController` owns *eligibility*.  It never touches the
hardware models directly (this module stays import-free of ``hw`` and
``protocols``; everything is duck-typed), it only answers one question:
"may the next ``k`` full-size fragments of this flow advance as one
train, starting now?"  Anything it cannot prove quiet forces the exact
per-packet path for the affected flow — and because the answer is
re-evaluated per train, the fast path re-engages seamlessly once the
disturbance has passed.

The controller is installed on :attr:`Environment.flow
<repro.sim.Environment>` by the cluster builder when
``SimParams.flow_mode == "auto"``; with the default ``"off"`` the
attribute stays ``None`` and every run is bit-identical to the
pre-hybrid simulator.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["FlowModeController", "FlowRoute"]


def _windows_quiet(windows, start: float, end: float) -> bool:
    """True when no window in ``windows`` intersects ``[start, end)``."""
    for w in windows:
        if w.start_ns < end and start < w.end_ns:
            return False
    return True


class FlowRoute:
    """Everything the controller must inspect along one (src, dst) path.

    Built by the cluster wiring (single-NIC endpoints only — channel
    bonding always takes the exact path).  All attributes are duck-typed
    references into the hardware graph; the controller only reads them.
    """

    __slots__ = ("up", "down", "port", "src_nic", "dst_nic",
                 "rx_budget", "dst_coalescing", "stash_depth",
                 "forward_ns", "switch_counters", "ack_latency_ns",
                 "deliver_ack")

    def __init__(self, up: Any, down: Any, port: Any, src_nic: Any,
                 dst_nic: Any, rx_budget: int, dst_coalescing: bool,
                 forward_ns: float = 0.0, switch_counters: Any = None,
                 ack_latency_ns: float = 0.0):
        #: src NIC -> switch channel
        self.up = up
        #: switch -> dst NIC channel
        self.down = down
        #: the switch egress port feeding ``down``
        self.port = port
        self.src_nic = src_nic
        self.dst_nic = dst_nic
        #: dst driver's per-IRQ rx budget (a train must fit one IRQ)
        self.rx_budget = rx_budget
        #: dst NIC interrupt coalescing enabled (without it the per-frame
        #: IRQ cadence is itself the protocol-relevant boundary)
        self.dst_coalescing = dst_coalescing
        #: zero-arg callable: the dst reorder stash depth for this flow
        #: (assigned once the protocol layer is attached; a non-empty
        #: stash means in-flight reordering is being repaired)
        self.stash_depth = lambda: 0
        #: switch store-and-forward latency for the analytic hop
        self.forward_ns = forward_ns
        #: the switch's counters (``forwarded`` is bumped closed-form)
        self.switch_counters = switch_counters
        #: closed-form one-way latency of a cumulative-ack frame along
        #: this route (computed once by the cluster wiring from the
        #: per-node hardware parameters)
        self.ack_latency_ns = ack_latency_ns
        #: one-arg callable delivering an express ack (cumulative seq)
        #: to the peer module, bumping conservation counters on the way
        #: (assigned by the cluster wiring)
        self.deliver_ack = None

    # -- analytic hop ----------------------------------------------------
    def hop_clear(self) -> bool:
        """May a train skip the wire/switch event machinery right now?

        True only when both wires are idle (nothing serializing *or*
        queued) and the egress port is empty — i.e. the train cannot
        overtake, delay, or be delayed by any in-flight frame, so one
        closed-form timer is indistinguishable (to the protocols) from
        the exact resource walk.
        """
        return self.up.idle and self.down.idle and self.port.occupancy == 0

    def complete_hop(self, frame: Any) -> None:
        """Land an analytically advanced train on the destination NIC.

        Bumps the same per-layer counters the exact path would (the
        frame-conservation invariants balance NIC tx -> wire -> switch
        -> wire -> NIC rx), then hands the train to the normal NIC rx
        machinery — ring admission, coalescing and the IRQ path stay
        fully simulated.
        """
        k = frame.train_frames
        nbytes = frame.payload_bytes
        for channel in (self.up, self.down):
            c = channel.counters
            c.add("frames_offered", k)
            c.add("bytes_offered", nbytes)
            c.add("frames", k)
            c.add("bytes", nbytes)
        if self.switch_counters is not None:
            self.switch_counters.add("forwarded", k)
        self.dst_nic.receive_frame(frame)


class FlowModeController:
    """Eligibility oracle + accounting for the hybrid flow/packet engine.

    Parameters mirror :class:`repro.config.SimParams`: ``min_train`` is
    the smallest batch worth forming, ``max_train`` the largest batch one
    analytic step may advance, and ``horizon_ns`` the lookahead over
    which the path must be provably quiet (no scheduled outage,
    congestion or blackout window may intersect ``[now, now+horizon)``).
    """

    __slots__ = ("min_train", "max_train", "horizon_ns", "topology_known",
                 "_routes", "_by_src_nic", "counters")

    def __init__(self, min_train: int = 4, max_train: int = 16,
                 horizon_ns: float = 10_000_000.0,
                 topology_known: bool = True):
        if min_train < 2:
            raise ValueError(f"min_train must be >= 2 (got {min_train!r})")
        if max_train < min_train:
            raise ValueError("max_train must be >= min_train")
        if horizon_ns <= 0:
            raise ValueError("horizon_ns must be positive")
        self.min_train = min_train
        self.max_train = max_train
        self.horizon_ns = horizon_ns
        #: False when the cluster's fabric has no closed-form route model
        #: (multi-switch topologies): every train then falls back to the
        #: exact engine, counted as ``fallback_unknown_topology``.
        self.topology_known = topology_known
        self._routes: Dict[Tuple[int, int], FlowRoute] = {}
        self._by_src_nic: Dict[int, FlowRoute] = {}
        #: accounting: trains formed, frames batched, and per-reason
        #: fallback tallies (why the exact path was taken)
        self.counters: Dict[str, int] = {"trains": 0, "frames_batched": 0}

    # -- wiring ----------------------------------------------------------
    def register_route(self, src: int, dst: int, route: FlowRoute) -> None:
        """Register the hardware path for one (src, dst) node pair."""
        self._routes[(src, dst)] = route
        self._by_src_nic[(id(route.src_nic), route.dst_nic.mac)] = route

    def route(self, src: int, dst: int) -> Optional[FlowRoute]:
        """The registered route, or None (bonded/unknown paths)."""
        return self._routes.get((src, dst))

    def hop_route(self, src_nic: Any, dst_mac: Any) -> Optional[FlowRoute]:
        """Route for a train leaving ``src_nic`` toward ``dst_mac``.

        The NIC tx pump uses this to advance an eligible train across
        wire -> switch -> wire as one closed-form timer.
        """
        return self._by_src_nic.get((id(src_nic), dst_mac))

    def express_ack_route(self, src: int, dst: int,
                          now: float) -> Optional[FlowRoute]:
        """Route for a closed-form ack hop, or None (exact path).

        An ack may skip the event-level transit only when its whole path
        is provably quiet for the flight: no fault model on either wire,
        both wires idle, egress port empty, and no blackout window
        intersecting the horizon.  Reordering against exact-path acks is
        tolerated by cumulative-ack semantics; reordering against *data*
        is impossible because acks travel the reverse direction.
        """
        route = self._routes.get((src, dst))
        if route is None or route.deliver_ack is None:
            self.counters["acks_exact"] = self.counters.get("acks_exact", 0) + 1
            return None
        horizon_end = now + self.horizon_ns
        for channel in (route.up, route.down):
            faults = channel.faults
            if faults is not None and not faults.quiet_over(now, horizon_end):
                self.counters["acks_exact"] = self.counters.get("acks_exact", 0) + 1
                return None
        if (not route.up.idle or not route.down.idle
                or route.port.occupancy > 0
                or not _windows_quiet(route.port.blackouts, now, horizon_end)):
            self.counters["acks_exact"] = self.counters.get("acks_exact", 0) + 1
            return None
        self.counters["acks_express"] = self.counters.get("acks_express", 0) + 1
        return route

    # -- accounting ------------------------------------------------------
    def _fallback(self, reason: str) -> int:
        key = f"fallback_{reason}"
        self.counters[key] = self.counters.get(key, 0) + 1
        return 0

    def note_train(self, k: int) -> None:
        """Record a formed train of ``k`` frames."""
        self.counters["trains"] += 1
        self.counters["frames_batched"] += k

    # -- the eligibility decision ---------------------------------------
    def plan_train(self, src: int, dst: int, sender: Any,
                   remaining_full: int, now: float) -> int:
        """Largest train size admissible right now (0 = exact path).

        ``sender`` is the flow's :class:`~repro.protocols.reliability.
        WindowedSender`; ``remaining_full`` counts the full-size
        fragments still ahead of the current one in this message (the
        short tail fragment never rides a train, so a train can never
        complete a message and batched delivery stays a pure
        mid-stream operation).

        The checks, in cheap-to-expensive order; each names the
        boundary that forces packet-exact simulation:

        * unknown topology — the fabric is multi-switch, so no
          closed-form route model exists at all;
        * window edge — fewer than ``min_train`` fragments or window
          slots available;
        * recovery — the sender is failed, retransmitting, or has
          dupack/timeout state in flight;
        * topology — no registered route (channel bonding, unknown
          peer);
        * faults — a stochastic loss/corruption/jitter/duplication
          model on either link direction, or a scheduled
          outage/congestion window intersecting the horizon;
        * switch contention — the egress queue is non-empty or a
          blackout window intersects the horizon;
        * receiver — coalescing off, reorder stash occupied, or not
          enough rx-ring headroom for the whole train.
        """
        if not self.topology_known:
            return self._fallback("unknown_topology")
        if remaining_full < self.min_train:
            return self._fallback("window_edge")
        window_free = sender.window - sender.in_flight
        if window_free < self.min_train:
            return self._fallback("window_edge")
        if sender.failed or sender.retransmitting:
            return self._fallback("recovery")
        route = self._routes.get((src, dst))
        if route is None:
            return self._fallback("topology")
        horizon_end = now + self.horizon_ns
        for channel in (route.up, route.down):
            faults = channel.faults
            if faults is not None and not faults.quiet_over(now, horizon_end):
                return self._fallback("faults")
        port = route.port
        if port.occupancy > 0:
            return self._fallback("switch_contention")
        if not _windows_quiet(port.blackouts, now, horizon_end):
            return self._fallback("switch_contention")
        if not route.dst_coalescing:
            return self._fallback("coalescing_off")
        if route.stash_depth() > 0:
            return self._fallback("reorder_stash")
        k = min(remaining_full, window_free, self.max_train, route.rx_budget)
        headroom = route.dst_nic.rx_headroom()
        if headroom < k:
            k = headroom
        if k < self.min_train:
            return self._fallback("rx_ring")
        self.note_train(k)
        return k
