"""Instrumentation: trace records, counters, and utilization accounting.

The experiments need three kinds of observability:

* **Trace** — timestamped named records (used to extract the Figure 7
  per-stage pipeline timeline of a packet).
* **Counter** — monotonically increasing event tallies (interrupt counts
  for the Section 2 analysis, packets, retransmissions, ...).
* **BusyTracker** — integrates busy time of a device to report CPU / bus
  utilization over an interval.

Everything is cheap no-op-able: a disabled :class:`Trace` costs one
attribute check per record.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TraceRecord", "Trace", "Counters", "BusyTracker", "IntervalStats"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:,.0f} ns] {self.source}: {self.event} {extras}".rstrip()


class Trace:
    """An append-only trace of :class:`TraceRecord` entries."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def record(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, source, event, detail))

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        """All records matching the given source and/or event name."""
        out = self.records
        if source is not None:
            out = [r for r in out if r.source == source]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def matching(self, **detail: Any) -> List[TraceRecord]:
        """All records whose detail dict contains every given key/value."""
        return [
            r
            for r in self.records
            if all(r.detail.get(k) == v for k, v in detail.items())
        ]

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class Counters:
    """Named monotonic counters with a dict-like face."""

    def __init__(self):
        self._counts: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 when never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __repr__(self) -> str:
        return f"Counters({dict(self._counts)!r})"


class BusyTracker:
    """Integrates the busy time of a device for utilization reporting.

    Call :meth:`acquire`/:meth:`release` around busy intervals (re-entrant:
    overlapping busy intervals from several users count once).
    """

    def __init__(self):
        self._depth = 0
        self._busy_since: Optional[float] = None
        self.total_busy: float = 0.0
        self._mark_time: float = 0.0
        self._mark_busy: float = 0.0

    def acquire(self, now: float) -> None:
        """Mark the device busy from ``now`` (re-entrant)."""
        if self._depth == 0:
            self._busy_since = now
        self._depth += 1

    def release(self, now: float) -> None:
        """Mark one busy interval finished at ``now``."""
        if self._depth <= 0:
            raise RuntimeError("BusyTracker.release without matching acquire")
        self._depth -= 1
        if self._depth == 0:
            self.total_busy += now - self._busy_since
            self._busy_since = None

    def busy_time(self, now: float) -> float:
        """Total busy time up to ``now`` (including an open interval)."""
        open_part = (now - self._busy_since) if self._busy_since is not None else 0.0
        return self.total_busy + open_part

    def mark(self, now: float) -> None:
        """Start a measurement window at ``now``."""
        self._mark_time = now
        self._mark_busy = self.busy_time(now)

    def utilization_since_mark(self, now: float) -> float:
        """Fraction of wall time busy since the last :meth:`mark`."""
        span = now - self._mark_time
        if span <= 0:
            return 0.0
        return (self.busy_time(now) - self._mark_busy) / span


@dataclass
class IntervalStats:
    """Streaming mean/min/max/count over observed samples."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """The statistics as a plain dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
