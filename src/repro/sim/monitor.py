"""Instrumentation: trace records, counters, and utilization accounting.

The experiments need three kinds of observability:

* **Trace** — timestamped named records, indexed by event name (used to
  extract the Figure 7 per-stage pipeline timeline of a packet); the
  span layer in :mod:`repro.obs.span` emits its begin/end markers here
  too, so the record stream stays the single source of truth.
* **Counter** — monotonically increasing event tallies (interrupt counts
  for the Section 2 analysis, packets, retransmissions, ...).  Since the
  observability refactor, :class:`Counters` is a thin dict-like face
  over :class:`repro.obs.metrics.MetricsRegistry` counters, so ad-hoc
  tallies and typed instruments share one implementation.
* **BusyTracker** — integrates busy time of a device to report CPU / bus
  utilization over an interval.

Everything is cheap no-op-able: a disabled :class:`Trace` costs one
attribute check per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.metrics import Histogram, MetricsRegistry

__all__ = ["TraceRecord", "Trace", "Counters", "BusyTracker", "IntervalStats"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:,.0f} ns] {self.source}: {self.event} {extras}".rstrip()


class Trace:
    """An append-only trace of :class:`TraceRecord` entries.

    Records are additionally indexed by event name, so stage extraction
    (:mod:`repro.analysis.timeline`) is a lookup instead of a scan over
    the whole trace.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._by_event: Dict[str, List[TraceRecord]] = {}

    def record(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if self.enabled:
            rec = TraceRecord(time, source, event, detail)
            self.records.append(rec)
            self._by_event.setdefault(event, []).append(rec)

    def by_event(self, event: str) -> List[TraceRecord]:
        """All records with the given event name (indexed, append order)."""
        return list(self._by_event.get(event, ()))

    def first(
        self,
        event: str,
        source_suffix: str = "",
        source_prefix: str = "",
        **detail: Any,
    ) -> Optional[TraceRecord]:
        """First record of ``event`` matching source affixes + detail."""
        for r in self._by_event.get(event, ()):
            if source_suffix and not r.source.endswith(source_suffix):
                continue
            if source_prefix and not r.source.startswith(source_prefix):
                continue
            if all(r.detail.get(k) == v for k, v in detail.items()):
                return r
        return None

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        """All records matching the given source and/or event name."""
        out = self._by_event.get(event, []) if event is not None else self.records
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def matching(self, **detail: Any) -> List[TraceRecord]:
        """All records whose detail dict contains every given key/value."""
        return [
            r
            for r in self.records
            if all(r.detail.get(k) == v for k, v in detail.items())
        ]

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
        self._by_event.clear()

    def __len__(self) -> int:
        return len(self.records)


class Counters:
    """Named monotonic counters with a dict-like face.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counter
    instruments; pass a shared ``registry`` (and optional ``prefix``) to
    fold a component's tallies into a cluster-wide namespace, or omit
    both for a private registry (the historical behaviour).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None, prefix: str = ""):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._prefix = prefix

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._registry.counter(self._prefix + name).value += amount

    def set(self, name: str, value: float) -> None:
        """Record ``name`` as a gauge *level* (a typed gauge instrument,
        not a counter — for values that may hold still or only move in
        jumps, like the highest cumulatively-acked sequence)."""
        self._registry.gauge(self._prefix + name).set(value)

    def level(self, name: str) -> float:
        """Current level of gauge ``name`` (0 when never set)."""
        gauge = self._registry.peek(self._prefix + name)
        return gauge.value if gauge is not None else 0

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 when never incremented)."""
        counter = self._registry.peek(self._prefix + name)
        return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters (under this face's prefix)."""
        start = len(self._prefix)
        return {
            name[start:]: inst.value
            for name, inst in self._registry.items()
            if name.startswith(self._prefix) and inst.kind == "counter"
        }

    def reset(self) -> None:
        """Zero all counters."""
        for name in list(self.snapshot()):
            self._registry.discard(self._prefix + name)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __repr__(self) -> str:
        return f"Counters({self.snapshot()!r})"


class BusyTracker:
    """Integrates the busy time of a device for utilization reporting.

    Call :meth:`acquire`/:meth:`release` around busy intervals (re-entrant:
    overlapping busy intervals from several users count once).
    """

    def __init__(self):
        self._depth = 0
        self._busy_since: Optional[float] = None
        self.total_busy: float = 0.0
        self._mark_time: float = 0.0
        self._mark_busy: float = 0.0

    def acquire(self, now: float) -> None:
        """Mark the device busy from ``now`` (re-entrant)."""
        if self._depth == 0:
            self._busy_since = now
        self._depth += 1

    def release(self, now: float) -> None:
        """Mark one busy interval finished at ``now``."""
        if self._depth <= 0:
            raise RuntimeError(
                f"BusyTracker.release at t={now:,.0f} ns without matching acquire"
            )
        self._depth -= 1
        if self._depth == 0:
            self.total_busy += now - self._busy_since
            self._busy_since = None

    def busy_time(self, now: float) -> float:
        """Total busy time up to ``now`` (including an open interval)."""
        open_part = (now - self._busy_since) if self._busy_since is not None else 0.0
        return self.total_busy + open_part

    def mark(self, now: float) -> None:
        """Start a measurement window at ``now``."""
        self._mark_time = now
        self._mark_busy = self.busy_time(now)

    def utilization_since_mark(self, now: float) -> float:
        """Fraction of wall time busy since the last :meth:`mark`."""
        span = now - self._mark_time
        if span <= 0:
            return 0.0
        return (self.busy_time(now) - self._mark_busy) / span


class IntervalStats:
    """Streaming sample statistics (now histogram-backed: adds p50/p95/p99).

    Kept as the historical name; internally a log-bucketed
    :class:`~repro.obs.metrics.Histogram`, so mean/min/max/count stay
    exact while percentiles come for free.
    """

    __slots__ = ("_hist",)

    def __init__(self):
        self._hist = Histogram()

    def observe(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self._hist.record(value)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def total(self) -> float:
        return self._hist.total

    @property
    def minimum(self) -> float:
        return self._hist.minimum

    @property
    def maximum(self) -> float:
        return self._hist.maximum

    @property
    def mean(self) -> float:
        return self._hist.mean

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile of the observed samples."""
        return self._hist.percentile(p)

    def as_dict(self) -> Dict[str, float]:
        """The statistics as a plain dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
