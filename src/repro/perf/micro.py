"""A/B microbenchmarks for the event-loop hot path (``repro.perf micro``).

Three cases, each driving the same retransmission-timer churn (arm,
then cancel-and-re-arm on every "ack", so only the last timer fires):

* ``timer_process`` — the legacy shape: every re-arm spawns a timer
  *process* (generator + ``_Initialize`` event + ``Timeout``) and
  cancellation is a generation counter the stale process checks when it
  finally wakes.  Every churn costs several heap events and a dead
  wake-up.
* ``timer_fastpath`` — the current shape: ``Environment.call_later``
  returns a slotted :class:`~repro.sim.TimerHandle`; cancellation flips
  one slot and the dead heap entry is dropped at pop time without
  advancing the clock or dispatching anything.
* ``timeout_chain`` — a single process yielding a chain of Timeouts:
  the baseline step/dispatch cost both timer shapes sit on.

Wall time is informational (machine-dependent, never gated); the ratio
``timer_process / timer_fastpath`` is the point of the document — it
isolates what the slotted-timer rewrite in the reliability and NIC
layers bought, independent of protocol behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Environment, Process, Timeout
from .bench import current_rev

__all__ = ["MICRO_SCHEMA", "MICRO_CASES", "run_micro"]

MICRO_SCHEMA = "repro.micro/1"

#: simulated ns between churns; shorter than the timer delay so every
#: re-arm really does race a pending timer (the hot path under test)
CHURN_GAP_NS = 10
TIMER_DELAY_NS = 1_000


def _run_timer_process(ops: int) -> int:
    """Legacy timer shape: one generator process per (re)arm, cancelled
    by bumping a generation counter the process re-checks on wake-up."""
    env = Environment()
    state = {"generation": 0, "fired": 0}

    def timer(generation: int):
        yield Timeout(env, TIMER_DELAY_NS)
        if generation == state["generation"]:
            state["fired"] += 1

    def driver():
        for _ in range(ops):
            state["generation"] += 1
            Process(env, timer(state["generation"]))
            yield Timeout(env, CHURN_GAP_NS)

    Process(env, driver())
    env.run()
    return state["fired"]


def _run_timer_fastpath(ops: int) -> int:
    """Current timer shape: ``call_later`` handles, lazy cancellation."""
    env = Environment()
    state: Dict[str, Any] = {"fired": 0, "handle": None}

    def fire() -> None:
        state["fired"] += 1

    def driver():
        for _ in range(ops):
            if state["handle"] is not None:
                state["handle"].cancel()
            state["handle"] = env.call_later(TIMER_DELAY_NS, fire)
            yield Timeout(env, CHURN_GAP_NS)

    Process(env, driver())
    env.run()
    return state["fired"]


def _run_timeout_chain(ops: int) -> int:
    """Baseline: one process yielding ``ops`` timeouts back to back."""
    env = Environment()

    def chain():
        for _ in range(ops):
            yield Timeout(env, CHURN_GAP_NS)
        return 1

    proc = Process(env, chain())
    env.run()
    return proc.value


#: case name -> runner(ops) -> fired count (sanity-checked); pinned order
MICRO_CASES: List[Tuple[str, Callable[[int], int]]] = [
    ("timer_process", _run_timer_process),
    ("timer_fastpath", _run_timer_fastpath),
    ("timeout_chain", _run_timeout_chain),
]


def _best_of(runner: Callable[[int], int], ops: int, repeat: int) -> float:
    """Best (minimum) wall time over ``repeat`` runs — standard
    microbenchmark practice: the minimum is the least noisy estimator of
    the true cost on a contended machine."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fired = runner(ops)
        best = min(best, time.perf_counter() - t0)
        if fired != 1:
            raise AssertionError(
                f"{runner.__name__}: expected exactly one surviving timer, "
                f"got {fired} — the churn semantics drifted")
    return best


def run_micro(ops: int = 50_000, repeat: int = 3,
              rev: Optional[str] = None) -> Dict[str, Any]:
    """Run the A/B cases and return the micro document (plain dict)."""
    if ops <= 0 or repeat <= 0:
        raise ValueError("ops and repeat must be positive")
    doc: Dict[str, Any] = {
        "schema": MICRO_SCHEMA,
        "rev": rev if rev is not None else current_rev(),
        "python": sys.version.split()[0],
        "ops": ops,
        "repeat": repeat,
        "cases": {},
    }
    for name, runner in MICRO_CASES:
        wall = _best_of(runner, ops, repeat)
        doc["cases"][name] = {
            "wall_s": round(wall, 6),
            "ns_per_op": round(wall / ops * 1e9, 1),
        }
    doc["speedup"] = {
        "fastpath_vs_process": round(
            doc["cases"]["timer_process"]["wall_s"]
            / doc["cases"]["timer_fastpath"]["wall_s"], 3),
    }
    return doc
