"""A/B microbenchmarks for the event-loop hot path (``repro.perf micro``).

Three cases, each driving the same retransmission-timer churn (arm,
then cancel-and-re-arm on every "ack", so only the last timer fires):

* ``timer_process`` — the legacy shape: every re-arm spawns a timer
  *process* (generator + ``_Initialize`` event + ``Timeout``) and
  cancellation is a generation counter the stale process checks when it
  finally wakes.  Every churn costs several heap events and a dead
  wake-up.
* ``timer_fastpath`` — the current shape: ``Environment.call_later``
  returns a slotted :class:`~repro.sim.TimerHandle`; cancellation flips
  one slot and the dead heap entry is dropped at pop time without
  advancing the clock or dispatching anything.
* ``timeout_chain`` — a single process yielding a chain of Timeouts:
  the baseline step/dispatch cost both timer shapes sit on.

Two more cases isolate allocation churn on the per-frame objects
(:class:`~repro.hw.nic.frames.Frame` and friends carry ``__slots__``
because a bulk transfer allocates one of each per fragment per hop):

* ``frame_alloc_slots`` — allocate/touch/drop the shipped slotted
  :class:`~repro.hw.nic.frames.Frame`;
* ``frame_alloc_dict`` — the identical field set as an ordinary
  ``__dict__``-backed class, i.e. the shape the hot path would have
  without the slots.

Wall time is informational (machine-dependent, never gated); the ratios
``timer_process / timer_fastpath`` and ``frame_alloc_dict /
frame_alloc_slots`` are the point of the document — each isolates what
one hot-path rewrite bought, independent of protocol behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Environment, Process, Timeout
from .bench import current_rev

__all__ = ["MICRO_SCHEMA", "MICRO_CASES", "run_micro"]

MICRO_SCHEMA = "repro.micro/1"

#: simulated ns between churns; shorter than the timer delay so every
#: re-arm really does race a pending timer (the hot path under test)
CHURN_GAP_NS = 10
TIMER_DELAY_NS = 1_000


def _run_timer_process(ops: int) -> int:
    """Legacy timer shape: one generator process per (re)arm, cancelled
    by bumping a generation counter the process re-checks on wake-up."""
    env = Environment()
    state = {"generation": 0, "fired": 0}

    def timer(generation: int):
        yield Timeout(env, TIMER_DELAY_NS)
        if generation == state["generation"]:
            state["fired"] += 1

    def driver():
        for _ in range(ops):
            state["generation"] += 1
            Process(env, timer(state["generation"]))
            yield Timeout(env, CHURN_GAP_NS)

    Process(env, driver())
    env.run()
    return state["fired"]


def _run_timer_fastpath(ops: int) -> int:
    """Current timer shape: ``call_later`` handles, lazy cancellation."""
    env = Environment()
    state: Dict[str, Any] = {"fired": 0, "handle": None}

    def fire() -> None:
        state["fired"] += 1

    def driver():
        for _ in range(ops):
            if state["handle"] is not None:
                state["handle"].cancel()
            state["handle"] = env.call_later(TIMER_DELAY_NS, fire)
            yield Timeout(env, CHURN_GAP_NS)

    Process(env, driver())
    env.run()
    return state["fired"]


def _run_timeout_chain(ops: int) -> int:
    """Baseline: one process yielding ``ops`` timeouts back to back."""
    env = Environment()

    def chain():
        for _ in range(ops):
            yield Timeout(env, CHURN_GAP_NS)
        return 1

    proc = Process(env, chain())
    env.run()
    return proc.value


import itertools
from dataclasses import dataclass, field

_dict_frame_ids = itertools.count(1)


@dataclass
class _DictFrame:
    """``Frame`` re-declared *without* ``slots=True`` — same dataclass
    machinery (generated ``__init__``, ``default_factory`` id,
    ``__post_init__`` check), so the A/B delta isolates the slots."""

    src: Any
    dst: Any
    ethertype: int
    payload_bytes: int
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_dict_frame_ids))
    corrupted: bool = False
    train_frames: int = 1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("negative payload")


def _alloc_churn(ops: int, make: Callable[..., Any]) -> int:
    """Shared driver: allocate, touch the fields every hop reads, retain.

    Mirrors a frame's life under a bulk transfer — built once, its
    ``payload_bytes``/``train_frames``/``dst`` read at each pipeline
    hop, and kept alive in a sender-window-sized deque (retransmit
    state pins a window of frames at any instant, so allocation cost
    includes the GC pressure of the live set, not just the free-list
    hit).
    """
    from ..hw.nic.frames import EtherType, MacAddress

    src, dst = MacAddress(1), MacAddress(2)
    window: List[Any] = []
    touched = 0
    for _ in range(ops):
        frame = make(src=src, dst=dst, ethertype=EtherType.CLIC,
                     payload_bytes=1500)
        window.append(frame)
        if len(window) > 64:  # the paper testbed's window_frames
            window.pop(0)
        for _hop in range(4):  # NIC tx, wire, switch, NIC rx
            touched += frame.train_frames + (frame.payload_bytes // 1500)
            if frame.corrupted or frame.dst is not dst:
                touched += 1
    return 1 if touched == 8 * ops else 0


def _run_frame_alloc_slots(ops: int) -> int:
    """Allocation churn on the shipped slotted ``Frame``."""
    from ..hw.nic.frames import Frame

    return _alloc_churn(ops, Frame)


def _run_frame_alloc_dict(ops: int) -> int:
    """Allocation churn on the ``__dict__``-backed equivalent."""
    return _alloc_churn(ops, _DictFrame)


#: case name -> runner(ops) -> sanity flag (must be 1); pinned order
MICRO_CASES: List[Tuple[str, Callable[[int], int]]] = [
    ("timer_process", _run_timer_process),
    ("timer_fastpath", _run_timer_fastpath),
    ("timeout_chain", _run_timeout_chain),
    ("frame_alloc_slots", _run_frame_alloc_slots),
    ("frame_alloc_dict", _run_frame_alloc_dict),
]


def _best_of(runner: Callable[[int], int], ops: int, repeat: int) -> float:
    """Best (minimum) wall time over ``repeat`` runs — standard
    microbenchmark practice: the minimum is the least noisy estimator of
    the true cost on a contended machine."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fired = runner(ops)
        best = min(best, time.perf_counter() - t0)
        if fired != 1:
            raise AssertionError(
                f"{runner.__name__}: expected sanity flag 1, got {fired} "
                f"— the churn semantics drifted")
    return best


def run_micro(ops: int = 50_000, repeat: int = 3,
              rev: Optional[str] = None) -> Dict[str, Any]:
    """Run the A/B cases and return the micro document (plain dict)."""
    if ops <= 0 or repeat <= 0:
        raise ValueError("ops and repeat must be positive")
    doc: Dict[str, Any] = {
        "schema": MICRO_SCHEMA,
        "rev": rev if rev is not None else current_rev(),
        "python": sys.version.split()[0],
        "ops": ops,
        "repeat": repeat,
        "cases": {},
    }
    for name, runner in MICRO_CASES:
        wall = _best_of(runner, ops, repeat)
        doc["cases"][name] = {
            "wall_s": round(wall, 6),
            "ns_per_op": round(wall / ops * 1e9, 1),
        }
    doc["speedup"] = {
        "fastpath_vs_process": round(
            doc["cases"]["timer_process"]["wall_s"]
            / doc["cases"]["timer_fastpath"]["wall_s"], 3),
        "slots_vs_dict": round(
            doc["cases"]["frame_alloc_dict"]["wall_s"]
            / doc["cases"]["frame_alloc_slots"]["wall_s"], 3),
    }
    doc["memory"] = _frame_footprint()
    return doc


def _frame_footprint() -> Dict[str, int]:
    """Per-instance memory of the slotted Frame vs its dict twin.

    Deterministic (unlike the wall clocks) and usually the larger half
    of the slots win: a window of in-flight frames pins twice the bytes
    without slots.
    """
    from ..hw.nic.frames import EtherType, Frame, MacAddress

    kw = dict(src=MacAddress(1), dst=MacAddress(2),
              ethertype=EtherType.CLIC, payload_bytes=1500)
    slotted = sys.getsizeof(Frame(**kw))
    plain = _DictFrame(**kw)
    backed = sys.getsizeof(plain) + sys.getsizeof(plain.__dict__)
    return {"frame_bytes_slots": slotted, "frame_bytes_dict": backed}
