"""CLI entry: ``python -m repro.perf {bench,micro,diff,check}``.

* ``bench`` runs the pinned scenario suite and writes
  ``BENCH_<rev>.json`` (see :mod:`repro.perf.bench`); ``--jobs N`` fans
  the scenarios out over worker processes (wall clock only — the gated
  document is byte-identical);
* ``micro`` runs the event-loop A/B microbenchmarks and writes
  ``MICRO_<rev>.json`` (see :mod:`repro.perf.micro`);
* ``diff A B`` compares two run/bench JSON documents metric-by-metric
  and exits 1 when anything moved beyond tolerance;
* ``flowdiff`` runs the bulk point under both simulator engines
  (``flow_mode`` off/auto), writes the :class:`~repro.obs.RunDiff`
  comparison document, and exits 1 if the hybrid engine moved the
  physics beyond tolerance (the CI flow-vs-packet artifact);
* ``check [CANDIDATE]`` gates a bench document against the committed
  baseline and exits 1 on regression (``--warn-only`` downgrades
  failures to warnings for first-landing workflows);
* ``slo [CANDIDATE]`` evaluates the baseline's gates as declared SLO
  specs (see :func:`repro.perf.check.slo_from_bench`), prints the
  per-scenario scorecards, optionally writes them as JSON, and exits 1
  on any violated objective — the CI-facing form of ``check``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..parallel import add_jobs_argument, resolve_jobs
from .bench import (BASELINE_PATH, SCENARIOS, flow_packet_diff, run_bench,
                    write_bench)
from .check import check_bench, load_bench, report, scenario_scorecards
from .micro import run_micro


def _cmd_bench(args: argparse.Namespace) -> int:
    doc = run_bench(quick=not args.full, scenarios=args.scenario or None,
                    rev=args.rev, jobs=resolve_jobs(args.jobs))
    path = args.output or f"BENCH_{doc['rev']}.json"
    write_bench(doc, path)
    for name, scenario in sorted(doc["scenarios"].items()):
        gates = ", ".join(f"{k}={v['value']:g}"
                          for k, v in sorted(scenario["gates"].items()))
        print(f"{name}: {gates} [{scenario['wall_s']}s]")
    print(f"wrote {path}")
    return 0


def _cmd_micro(args: argparse.Namespace) -> int:
    doc = run_micro(ops=args.ops, repeat=args.repeat, rev=args.rev)
    path = args.output or f"MICRO_{doc['rev']}.json"
    write_bench(doc, path)
    for name, case in doc["cases"].items():
        print(f"{name}: {case['ns_per_op']:g} ns/op [{case['wall_s']}s]")
    print(f"call_later fast path vs timer process: "
          f"{doc['speedup']['fastpath_vs_process']:g}x")
    print(f"slotted Frame vs __dict__ Frame: "
          f"{doc['speedup']['slots_vs_dict']:g}x wall, "
          f"{doc['memory']['frame_bytes_slots']} vs "
          f"{doc['memory']['frame_bytes_dict']} bytes/frame")
    print(f"wrote {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from ..obs import RunDiff

    with open(args.a) as fh:
        a = json.load(fh)
    with open(args.b) as fh:
        b = json.load(fh)
    diff = RunDiff(a, b, tolerance=args.tolerance)
    print(diff.report(only_changes=not args.all,
                      title=f"Run diff: {args.a} -> {args.b}"))
    return 0 if diff.within_tolerance() else 1


def _cmd_flowdiff(args: argparse.Namespace) -> int:
    doc = flow_packet_diff(nbytes=args.nbytes, messages=args.messages,
                           tolerance=args.tolerance)
    write_bench(doc, args.output)
    print(doc["report"])
    print(f"event reduction: {doc['event_reduction']:.2f}x "
          f"({doc['runs']['off']['events_processed']} -> "
          f"{doc['runs']['auto']['events_processed']} events)")
    print(f"wrote {args.output}")
    if not doc["within_tolerance"]:
        drifted = [d["key"] for d in doc["physics"] if d["status"] != "same"]
        print(f"FAIL: flow engine moved physics beyond "
              f"{args.tolerance:.0%}: {', '.join(drifted)}", file=sys.stderr)
        return 1
    print(f"flow engine agrees with the exact engine within "
          f"{args.tolerance:.0%}", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = load_bench(args.baseline)
    if args.candidate:
        candidate = load_bench(args.candidate)
    else:
        print("no candidate given; running a quick bench in-process...",
              file=sys.stderr)
        candidate = run_bench(quick=True)
    results = check_bench(candidate, baseline)
    print(report(results, title=f"Perf check vs {args.baseline}"))
    regressions = [r for r in results if r.status == "regressed"]
    missing = [r for r in results if r.status == "baseline-only"]
    if missing:
        print(f"warning: {len(missing)} baseline gate(s) missing from the "
              f"candidate (suite shrank?)", file=sys.stderr)
    if regressions:
        verb = "warning" if args.warn_only else "FAIL"
        print(f"{verb}: {len(regressions)} gated metric(s) regressed beyond "
              f"tolerance", file=sys.stderr)
        return 0 if args.warn_only else 1
    print("perf check passed", file=sys.stderr)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from ..obs.slo import scorecard_table

    baseline = load_bench(args.baseline)
    if args.candidate:
        candidate = load_bench(args.candidate)
    else:
        print("no candidate given; running a quick bench in-process...",
              file=sys.stderr)
        candidate = run_bench(quick=True)
    cards = scenario_scorecards(candidate, baseline)
    for scenario in sorted(cards):
        print(scorecard_table(cards[scenario]))
        print()
    if args.output:
        doc = {
            "schema": "repro.slo-scorecards/1",
            "baseline": baseline.get("rev"),
            "candidate": candidate.get("rev"),
            "ok": all(card["ok"] for card in cards.values()),
            "scenarios": {name: cards[name] for name in sorted(cards)},
        }
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    violated = sorted(
        f"{scenario}:{name}"
        for scenario, card in cards.items()
        for name in card["violations"])
    if violated:
        verb = "warning" if args.warn_only else "FAIL"
        print(f"{verb}: {len(violated)} SLO objective(s) violated: "
              + ", ".join(violated), file=sys.stderr)
        return 0 if args.warn_only else 1
    print("all perf SLOs met", file=sys.stderr)
    return 0


def main(argv: Optional[list] = None) -> int:
    """Parse arguments and dispatch to bench/diff/check."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark lab: run the pinned suite, diff runs, "
                    "gate regressions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run the pinned scenario suite")
    bench.add_argument("--full", action="store_true",
                       help="full-depth scenarios (slower; default is quick)")
    bench.add_argument("--quick", action="store_true",
                       help="quick scenarios (the default; kept for symmetry)")
    bench.add_argument("-o", "--output", metavar="PATH", default=None,
                       help="output path (default BENCH_<rev>.json)")
    bench.add_argument("--rev", default=None,
                       help="revision tag for the filename/document "
                            "(default: git short rev)")
    bench.add_argument("--scenario", action="append",
                       choices=[name for name, _ in SCENARIOS],
                       help="run only this scenario (repeatable)")
    add_jobs_argument(bench)
    bench.set_defaults(func=_cmd_bench)

    micro = sub.add_parser("micro",
                           help="A/B microbenchmarks for the event-loop hot path")
    micro.add_argument("--ops", type=int, default=50_000,
                       help="timer churns per case (default 50000)")
    micro.add_argument("--repeat", type=int, default=3,
                       help="repeats per case; best wall time wins (default 3)")
    micro.add_argument("-o", "--output", metavar="PATH", default=None,
                       help="output path (default MICRO_<rev>.json)")
    micro.add_argument("--rev", default=None,
                       help="revision tag for the filename/document "
                            "(default: git short rev)")
    micro.set_defaults(func=_cmd_micro)

    diff = sub.add_parser("diff", help="compare two run/bench JSON documents")
    diff.add_argument("a", help="first (old) JSON document")
    diff.add_argument("b", help="second (new) JSON document")
    diff.add_argument("--tolerance", type=float, default=0.05,
                      help="relative tolerance before a metric counts as "
                           "changed (default 0.05)")
    diff.add_argument("--all", action="store_true",
                      help="show every compared metric, not only changes")
    diff.set_defaults(func=_cmd_diff)

    flowdiff = sub.add_parser(
        "flowdiff",
        help="flow-vs-packet RunDiff artifact for the bulk point")
    flowdiff.add_argument("-o", "--output", metavar="PATH",
                          default="flow-vs-packet.json",
                          help="output path (default flow-vs-packet.json)")
    flowdiff.add_argument("--nbytes", type=int, default=1_000_000,
                          help="bytes per message (default 1000000)")
    flowdiff.add_argument("--messages", type=int, default=8,
                          help="messages in the stream (default 8)")
    flowdiff.add_argument("--tolerance", type=float, default=0.05,
                          help="relative tolerance on the physics keys "
                               "(default 0.05)")
    flowdiff.set_defaults(func=_cmd_flowdiff)

    check = sub.add_parser("check", help="gate a bench run against the baseline")
    check.add_argument("candidate", nargs="?", default=None,
                       help="bench JSON to check (default: run a quick bench)")
    check.add_argument("--baseline", default=BASELINE_PATH,
                       help=f"baseline bench JSON (default {BASELINE_PATH})")
    check.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (first landing)")
    check.set_defaults(func=_cmd_check)

    slo = sub.add_parser("slo", help="evaluate the baseline's gates as SLO "
                                     "scorecards (CI-facing check)")
    slo.add_argument("candidate", nargs="?", default=None,
                     help="bench JSON to score (default: run a quick bench)")
    slo.add_argument("--baseline", default=BASELINE_PATH,
                     help=f"baseline bench JSON (default {BASELINE_PATH})")
    slo.add_argument("-o", "--output", metavar="PATH", default=None,
                     help="also write the scorecards as JSON to PATH")
    slo.add_argument("--warn-only", action="store_true",
                     help="report violations but exit 0 (first landing)")
    slo.set_defaults(func=_cmd_slo)

    args = parser.parse_args(argv)
    if args.command == "bench" and args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
