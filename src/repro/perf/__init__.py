"""The performance-regression lab: bench, diff, and check.

``python -m repro.perf`` turns the observability stack into a gate:

* ``bench`` runs a pinned suite of scenarios (headline latency, the
  Figure 4/5 bandwidth points, the span-derived Figure-7 layer budget,
  one resilience point) and writes a versioned ``BENCH_<rev>.json``
  with simulated metrics, wall-clock timings and
  :class:`~repro.obs.EnvProfiler` tallies;
* ``micro`` runs A/B microbenchmarks of the event-loop hot path (timer
  processes vs ``call_later`` handles) and writes ``MICRO_<rev>.json``;
* ``diff`` compares any two run/bench JSON documents metric-by-metric
  (see :class:`~repro.obs.RunDiff`);
* ``check`` compares a bench document against the committed baseline
  (``benchmarks/baselines/BENCH_baseline.json``) and exits non-zero
  when a gated metric regresses beyond its tolerance — the trajectory
  every PR extends.
"""

from .bench import BASELINE_PATH, BENCH_SCHEMA, run_bench, write_bench
from .check import check_bench, load_bench
from .micro import MICRO_SCHEMA, run_micro

__all__ = [
    "BASELINE_PATH",
    "BENCH_SCHEMA",
    "MICRO_SCHEMA",
    "check_bench",
    "load_bench",
    "run_bench",
    "run_micro",
    "write_bench",
]
