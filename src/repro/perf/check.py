"""Baseline comparison behind ``python -m repro.perf check``.

The committed baseline's gates are *declared data*: each gate
``{value, better, tol}`` is translated into one
:class:`~repro.obs.slo.Objective` — a ``ceiling`` of
``value * (1 + tol)`` when lower is better, a ``floor`` of
``value * (1 - tol)`` when higher is better — giving one
:class:`~repro.obs.slo.SLOSpec` per scenario (:func:`slo_from_bench`).
``check`` evaluates those specs against the candidate document; a
violated objective is a regression.  On top of the pass/fail verdict the
:class:`GateResult` layer keeps the reporting distinctions: in-tolerance
drift is ``ok``, movement past tolerance in the *good* direction is
``improved``, and gates present on only one side are ``baseline-only`` /
``new`` (reported, never failing — the suite is allowed to grow).

``python -m repro.perf slo`` exposes the same evaluation as scorecard
JSON for CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs.slo import Objective, SLOSpec, evaluate
from .bench import BENCH_SCHEMA

__all__ = ["GateResult", "check_bench", "load_bench", "report",
           "scenario_scorecards", "slo_from_bench"]


def load_bench(path: str) -> Dict[str, Any]:
    """Load and schema-validate a bench JSON document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a bench document (want schema {BENCH_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})")
    return doc


@dataclass(frozen=True)
class GateResult:
    """Verdict for one gated metric of one scenario."""

    scenario: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    better: str
    tol: float
    status: str  # "ok" | "improved" | "regressed" | "baseline-only" | "new"

    @property
    def rel_delta(self) -> float:
        """Relative change of the candidate against the baseline."""
        if self.baseline in (None, 0.0) or self.candidate is None:
            return 0.0
        return (self.candidate - self.baseline) / abs(self.baseline)


def _gate_spec(base_gates: Dict[str, Any], cand_gates: Dict[str, Any],
               metric: str) -> Dict[str, Any]:
    """Tolerance/direction come from the candidate when it defines the
    gate (the current code owns its contract), else from the baseline."""
    return cand_gates.get(metric) or base_gates[metric]


def slo_from_bench(baseline: Dict[str, Any],
                   candidate: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, SLOSpec]:
    """One SLO spec per baseline scenario, gates expressed as objectives.

    A ``lower``-is-better gate becomes a ceiling at
    ``value * (1 + tol)``; a ``higher``-is-better gate a floor at
    ``value * (1 - tol)`` — the exact regression boundary
    ``python -m repro.perf check`` enforces, now as declared data any
    SLO consumer (dashboard, CI scorecard) can evaluate.
    """
    # Flow-vs-packet speedup headlines (totals.event_reduction_by_scenario,
    # published by scenarios that A/B the hybrid engine) ride along in the
    # spec description so scorecard tables and the dashboard show them.
    reductions = {
        **(baseline.get("totals", {}).get("event_reduction_by_scenario") or {}),
        **((candidate or {}).get("totals", {})
           .get("event_reduction_by_scenario") or {}),
    }
    specs: Dict[str, SLOSpec] = {}
    for scenario in sorted(baseline.get("scenarios", {})):
        base_gates = (baseline["scenarios"][scenario] or {}).get("gates", {})
        cand_gates = ((candidate or {}).get("scenarios", {})
                      .get(scenario) or {}).get("gates", {})
        objectives = []
        for metric in sorted(base_gates):
            gate = _gate_spec(base_gates, cand_gates, metric)
            better, tol = gate["better"], gate["tol"]
            base = base_gates[metric]["value"]
            if better == "lower":
                kind, threshold = "ceiling", base * (1 + tol)
            else:
                kind, threshold = "floor", base * (1 - tol)
            objectives.append(Objective(
                name=metric,
                metric=f"scenarios.{scenario}.gates.{metric}.value",
                kind=kind, threshold=threshold,
                description=f"baseline {base:g}, {better} is better, "
                            f"tol {tol:.0%}"))
        description = (f"perf gates of scenario {scenario!r} vs baseline "
                       f"{baseline.get('rev', '?')}")
        if scenario in reductions:
            description += (f"; hybrid flow engine: "
                            f"{reductions[scenario]:.1f}x fewer events "
                            f"than packet-exact")
        specs[scenario] = SLOSpec(
            name=f"bench.{scenario}",
            description=description,
            objectives=tuple(objectives))
    return specs


def scenario_scorecards(candidate: Dict[str, Any],
                        baseline: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Evaluate every baseline scenario's SLO spec against the candidate."""
    return {scenario: evaluate(spec, candidate)
            for scenario, spec in slo_from_bench(baseline, candidate).items()}


def _classify(baseline: float, candidate: float, better: str, tol: float) -> str:
    """Scalar ok/improved/regressed verdict for one gate.

    The regression boundary here is by construction the same one
    :func:`slo_from_bench` declares (``value * (1 ± tol)``); the SLO
    evaluation is authoritative in :func:`check_bench`, this classifier
    adds the ``improved`` distinction on passing gates.
    """
    if better == "lower":
        if candidate > baseline * (1 + tol):
            return "regressed"
        return "improved" if candidate < baseline * (1 - tol) else "ok"
    if candidate < baseline * (1 - tol):
        return "regressed"
    return "improved" if candidate > baseline * (1 + tol) else "ok"


def check_bench(candidate: Dict[str, Any],
                baseline: Dict[str, Any]) -> List[GateResult]:
    """Compare the candidate against the baseline's gates-as-SLOs.

    The pass/fail verdict per gate is the SLO objective's: violated
    means regressed.  Gates on only one side stay informational.
    """
    cards = scenario_scorecards(candidate, baseline)
    verdicts = {(scenario, row["name"]): row
                for scenario, card in cards.items()
                for row in card["objectives"]}
    results: List[GateResult] = []
    scenarios = sorted(set(baseline.get("scenarios", {}))
                       | set(candidate.get("scenarios", {})))
    for scenario in scenarios:
        base_gates = (baseline.get("scenarios", {}).get(scenario) or {}).get("gates", {})
        cand_gates = (candidate.get("scenarios", {}).get(scenario) or {}).get("gates", {})
        for metric in sorted(set(base_gates) | set(cand_gates)):
            gate = _gate_spec(base_gates, cand_gates, metric)
            better, tol = gate["better"], gate["tol"]
            base = base_gates.get(metric, {}).get("value")
            cand = cand_gates.get(metric, {}).get("value")
            if base is None:
                status = "new"
            elif cand is None:
                status = "baseline-only"
            elif not verdicts[(scenario, metric)]["ok"]:
                status = "regressed"
            else:
                status = _classify(base, cand, better, tol)
            results.append(GateResult(scenario, metric, base, cand, better, tol, status))
    return results


def report(results: List[GateResult],
           title: str = "Perf check vs baseline") -> str:
    """Text table of every gate verdict (regressions first)."""
    from ..analysis.tables import format_table

    order = {"regressed": 0, "baseline-only": 1, "new": 2, "improved": 3, "ok": 4}
    rows = []
    for r in sorted(results, key=lambda r: (order[r.status], r.scenario, r.metric)):
        rows.append((
            r.scenario, r.metric, r.better,
            "-" if r.baseline is None else f"{r.baseline:g}",
            "-" if r.candidate is None else f"{r.candidate:g}",
            f"{r.rel_delta * 100:+.1f}%" if r.baseline and r.candidate is not None else "-",
            f"{r.tol:.0%}", r.status,
        ))
    return format_table(
        ["scenario", "metric", "better", "baseline", "candidate", "delta",
         "tol", "status"],
        rows, title=title)
