"""Baseline comparison behind ``python -m repro.perf check``.

Loads a candidate bench document (or runs a quick bench in-process),
compares every gated metric against the committed baseline, and reports
regressions: a ``lower``-is-better gate regresses when the candidate
exceeds ``baseline * (1 + tol)``, a ``higher``-is-better gate when it
falls below ``baseline * (1 - tol)``.  Improvements and in-tolerance
drift pass; gates missing from either side are reported but do not
fail the check (the suite is allowed to grow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .bench import BENCH_SCHEMA

__all__ = ["GateResult", "check_bench", "load_bench", "report"]


def load_bench(path: str) -> Dict[str, Any]:
    """Load and schema-validate a bench JSON document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a bench document (want schema {BENCH_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})")
    return doc


@dataclass(frozen=True)
class GateResult:
    """Verdict for one gated metric of one scenario."""

    scenario: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    better: str
    tol: float
    status: str  # "ok" | "improved" | "regressed" | "baseline-only" | "new"

    @property
    def rel_delta(self) -> float:
        """Relative change of the candidate against the baseline."""
        if self.baseline in (None, 0.0) or self.candidate is None:
            return 0.0
        return (self.candidate - self.baseline) / abs(self.baseline)


def _classify(baseline: float, candidate: float, better: str, tol: float) -> str:
    if better == "lower":
        if candidate > baseline * (1 + tol):
            return "regressed"
        return "improved" if candidate < baseline * (1 - tol) else "ok"
    if candidate < baseline * (1 - tol):
        return "regressed"
    return "improved" if candidate > baseline * (1 + tol) else "ok"


def check_bench(candidate: Dict[str, Any],
                baseline: Dict[str, Any]) -> List[GateResult]:
    """Compare the candidate's gates against the baseline's.

    Tolerance and direction come from the candidate when it defines the
    gate (the current code owns its contract), else from the baseline.
    """
    results: List[GateResult] = []
    scenarios = sorted(set(baseline.get("scenarios", {}))
                       | set(candidate.get("scenarios", {})))
    for scenario in scenarios:
        base_gates = (baseline.get("scenarios", {}).get(scenario) or {}).get("gates", {})
        cand_gates = (candidate.get("scenarios", {}).get(scenario) or {}).get("gates", {})
        for metric in sorted(set(base_gates) | set(cand_gates)):
            spec = cand_gates.get(metric) or base_gates[metric]
            better, tol = spec["better"], spec["tol"]
            base = base_gates.get(metric, {}).get("value")
            cand = cand_gates.get(metric, {}).get("value")
            if base is None:
                status = "new"
            elif cand is None:
                status = "baseline-only"
            else:
                status = _classify(base, cand, better, tol)
            results.append(GateResult(scenario, metric, base, cand, better, tol, status))
    return results


def report(results: List[GateResult],
           title: str = "Perf check vs baseline") -> str:
    """Text table of every gate verdict (regressions first)."""
    from ..analysis.tables import format_table

    order = {"regressed": 0, "baseline-only": 1, "new": 2, "improved": 3, "ok": 4}
    rows = []
    for r in sorted(results, key=lambda r: (order[r.status], r.scenario, r.metric)):
        rows.append((
            r.scenario, r.metric, r.better,
            "-" if r.baseline is None else f"{r.baseline:g}",
            "-" if r.candidate is None else f"{r.candidate:g}",
            f"{r.rel_delta * 100:+.1f}%" if r.baseline and r.candidate is not None else "-",
            f"{r.tol:.0%}", r.status,
        ))
    return format_table(
        ["scenario", "metric", "better", "baseline", "candidate", "delta",
         "tol", "status"],
        rows, title=title)
