"""The pinned benchmark suite behind ``python -m repro.perf bench``.

Each scenario measures a headline point of the reproduction (the
paper's latency/bandwidth claims, the Figure-7 layer budget, one
resilience point) and reports three kinds of cost:

* **simulated metrics** — deterministic given the seeds, so they gate
  regressions tightly (the ``gates`` section, each with a direction and
  a relative tolerance);
* **simulator cost** — aggregated :class:`~repro.obs.EnvProfiler`
  tallies (events processed/scheduled, queue high-water), catching
  "the simulation got slower" regressions that simulated time hides;
* **wall clock** — informational only (machine-dependent, never gated).

The Figure-7 scenario additionally cross-checks the span-derived layer
attribution (:func:`repro.obs.critical_path`) against the classic
timeline extraction of :mod:`repro.experiments.fig7` and fails loudly
if the two disagree by more than :data:`CROSSCHECK_TOLERANCE`.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import aggregate_profiles, critical_path, fig7_stage_durations, jsonable
from ..parallel import run_tasks
from ..sim import profiled

__all__ = [
    "BASELINE_PATH",
    "BENCH_SCHEMA",
    "CROSSCHECK_TOLERANCE",
    "SCENARIOS",
    "current_rev",
    "flow_packet_diff",
    "run_bench",
    "write_bench",
]

BENCH_SCHEMA = "repro.bench/1"

#: where ``repro.perf check`` finds the committed baseline by default
BASELINE_PATH = "benchmarks/baselines/BENCH_baseline.json"

#: max relative disagreement between span-derived and timeline-derived
#: Figure-7 stage durations before the bench itself errors out
CROSSCHECK_TOLERANCE = 0.05

#: default relative tolerance on gated simulated metrics
GATE_TOLERANCE = 0.05

#: looser tolerance for the stochastic resilience point (seeded, but a
#: protocol change legitimately moves loss-recovery timings around)
RESILIENCE_TOLERANCE = 0.10

#: simulator-cost drift allowed before the events-processed gate trips
PROFILE_TOLERANCE = 0.25

#: hard floor on the bulk-flowmode event reduction (the hybrid engine's
#: reason to exist); the scenario errors out below this, independent of
#: any baseline drift tolerance
FLOWMODE_MIN_RATIO = 10.0

#: max relative bandwidth disagreement between the exact and hybrid
#: engines on the bulk-flowmode point before the scenario errors out
FLOWMODE_BW_TOLERANCE = 0.05


def _gate(value: float, better: str, tol: float = GATE_TOLERANCE) -> Dict[str, Any]:
    """One gated metric: its value, which direction is good, and tol."""
    if better not in ("lower", "higher"):
        raise ValueError(f"better must be lower/higher, got {better!r}")
    return {"value": value, "better": better, "tol": tol}


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def _scenario_headline(quick: bool) -> Tuple[Dict, Dict]:
    """0-byte one-way latency, CLIC vs TCP (the paper's 36 us claim)."""
    from ..cluster import Cluster
    from ..config import granada2003
    from ..workloads import clic_pair, pingpong, tcp_pair

    repeats = 3 if quick else 10
    clic = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=repeats, warmup=1)
    tcp = pingpong(Cluster(granada2003()), tcp_pair(), 0, repeats=repeats, warmup=1)
    gates = {
        "clic_latency_us": _gate(clic.one_way_ns / 1000, "lower"),
        "tcp_latency_us": _gate(tcp.one_way_ns / 1000, "lower"),
    }
    metrics = {"clic_rtt_us": clic.rtt_ns / 1000, "tcp_rtt_us": tcp.rtt_ns / 1000}
    return gates, metrics


def _scenario_fig4(quick: bool) -> Tuple[Dict, Dict]:
    """Figure 4 headline: stream bandwidth per MTU, 0-copy CLIC."""
    from ..config import MTU_JUMBO, MTU_STANDARD, granada2003
    from ..experiments.common import sweep_stream
    from ..workloads import clic_pair

    nbytes, messages = (1_000_000, 8) if quick else (2_000_000, 16)
    jumbo = sweep_stream("CLIC 9000", lambda: granada2003(mtu=MTU_JUMBO),
                         clic_pair, [nbytes], messages=messages).asymptote()
    std = sweep_stream("CLIC 1500", lambda: granada2003(mtu=MTU_STANDARD),
                       clic_pair, [nbytes], messages=messages).asymptote()
    gates = {
        "bw_mtu9000_mbps": _gate(jumbo, "higher"),
        "bw_mtu1500_mbps": _gate(std, "higher"),
    }
    metrics = {"jumbo_gain_mbps": jumbo - std, "message_bytes": nbytes}
    return gates, metrics


def _scenario_fig5(quick: bool) -> Tuple[Dict, Dict]:
    """Figure 5 headline: CLIC-over-TCP bandwidth ratio at MTU 9000."""
    from ..config import MTU_JUMBO, granada2003
    from ..experiments.common import sweep_pingpong
    from ..workloads import clic_pair, tcp_pair

    nbytes = 1_000_000
    clic = sweep_pingpong("CLIC 9000", lambda: granada2003(mtu=MTU_JUMBO),
                          clic_pair, [nbytes]).mbps[0]
    tcp = sweep_pingpong("TCP 9000", lambda: granada2003(mtu=MTU_JUMBO),
                         tcp_pair, [nbytes]).mbps[0]
    gates = {
        "clic_mbps": _gate(clic, "higher"),
        "tcp_mbps": _gate(tcp, "higher"),
        "clic_over_tcp": _gate(clic / tcp, "higher"),
    }
    return gates, {"message_bytes": nbytes}


def _scenario_fig7(quick: bool) -> Tuple[Dict, Dict]:
    """Span-derived Figure-7 layer budget, cross-checked vs the classic
    timeline extraction (the two must agree within 5%)."""
    from ..trace import capture_fig7

    art = capture_fig7()
    path = critical_path(art.spans, art.records, art.result["packet_id"],
                         "node0", "node1")
    layers_us = {layer: ns / 1000 for layer, ns in path.layer_ns().items()}

    # Regroup the experiment's stage list the same way fig7_stage_durations
    # groups path hops (the two receiver software stages merge).
    derived = {k: v / 1000 for k, v in fig7_stage_durations(path).items()}
    legacy: Dict[str, float] = {}
    for stage in art.result["stages"]:
        name = stage["name"]
        if name in ("bottom halves -> CLIC_MODULE", "CLIC_MODULE copy to user + wake"):
            name = "receiver: post-DMA software path"
        legacy[name] = legacy.get(name, 0.0) + (stage["end_ns"] - stage["start_ns"]) / 1000
    max_rel = 0.0
    for name, want in legacy.items():
        got = derived.get(name)
        if got is None:
            raise ValueError(f"span-derived path lacks Figure-7 stage {name!r}")
        rel = abs(got - want) / want if want else abs(got)
        max_rel = max(max_rel, rel)
        if rel > CROSSCHECK_TOLERANCE:
            raise ValueError(
                f"span-derived stage {name!r} disagrees with the fig7 "
                f"experiment: {got:.2f} vs {want:.2f} us ({rel:.1%})")

    gates = {
        "total_us": _gate(path.total_us, "lower"),
        **{f"{layer}_us": _gate(us, "lower")
           for layer, us in layers_us.items() if us > 0.0},
    }
    metrics = {
        "layers_us": layers_us,
        "layer_shares": path.layer_shares(),
        "stages_us": derived,
        "crosscheck_max_rel": max_rel,
        "path_hops": len(path.segments),
    }
    return gates, metrics


def _scenario_resilience(quick: bool) -> Tuple[Dict, Dict]:
    """One resilience point: CLIC goodput under 2% uniform frame loss."""
    from ..cluster import Cluster
    from ..config import granada2003
    from ..faults import FaultPlan
    from ..workloads import clic_pair, stream

    messages = 24 if quick else 96
    cfg = granada2003(mtu=1500)
    cluster = Cluster(cfg, protocols=("clic",), faults=FaultPlan.uniform(0.02))
    res = stream(cluster, clic_pair(), 16_384, messages=messages)

    def counter_sum(suffix: str) -> float:
        return sum(inst.value for name, inst in cluster.metrics.items()
                   if inst.kind == "counter" and name.endswith(suffix))

    # ``pkts_retx`` counts every retransmitted data packet; the
    # ``.retransmitted`` counter alone would miss fast retransmits,
    # which dominate recovery at this loss rate.
    registered = counter_sum(".registered")
    retransmitted = counter_sum(".pkts_retx")
    gates = {
        "goodput_mbps": _gate(res.bandwidth_mbps, "higher", RESILIENCE_TOLERANCE),
        "retx_overhead": _gate(retransmitted / registered if registered else 0.0,
                               "lower", RESILIENCE_TOLERANCE),
    }
    metrics = {
        "loss_rate": 0.02,
        "fault_drops": counter_sum(".loss_drops"),
        "fast_retransmits": counter_sum(".fast_retransmits"),
        "timeout_retransmits": counter_sum(".retransmitted"),
        "elapsed_ms": res.elapsed_ns / 1e6,
    }
    return gates, metrics


def _scenario_journey(quick: bool) -> Tuple[Dict, Dict]:
    """Journey-tracing purity: on-vs-off must not perturb the simulation.

    Runs the same burst-loss CLIC stream twice — journeys disabled, then
    enabled — and *errors out* (like the fig7 cross-check) if the
    simulated results, the metrics snapshot, or the event-loop profile
    differ at all: the observability layer must observe, never perturb.
    The gates then track the traced run's cost like any other scenario.
    """
    from dataclasses import replace

    from ..cluster import Cluster
    from ..config import granada2003
    from ..faults import FaultPlan
    from ..obs import JourneyProbe, JourneyRecorder, jsonable as _jsonable
    from ..workloads import clic_pair, stream

    nbytes, messages = (65_536, 8) if quick else (262_144, 16)

    def one(with_journeys: bool):
        cfg = replace(granada2003(mtu=1500), seed=42)
        cluster = Cluster(cfg, protocols=("clic",),
                          faults=FaultPlan.bursty(0.02, mean_burst_frames=8.0,
                                                  loss_bad=1.0))
        recorder = probe = None
        if with_journeys:
            recorder = JourneyRecorder(cluster.env)
            cluster.tracer.journeys = recorder
            probe = JourneyProbe.install(recorder)
        try:
            res = stream(cluster, clic_pair(), nbytes, messages=messages)
        finally:
            if probe is not None:
                probe.uninstall()
        snapshot = json.dumps(_jsonable(cluster.metrics.snapshot()), sort_keys=True)
        return res, snapshot, recorder

    res_off, snap_off, _ = one(False)
    res_on, snap_on, recorder = one(True)
    if (res_off.elapsed_ns, res_off.nbytes_total) != (res_on.elapsed_ns, res_on.nbytes_total):
        raise ValueError(
            "journey tracing perturbed the simulation: "
            f"off={res_off.elapsed_ns} ns, on={res_on.elapsed_ns} ns")
    if snap_off != snap_on:
        raise ValueError("journey tracing perturbed the metrics snapshot")

    delivered = recorder.delivered()
    gates = {
        "goodput_mbps": _gate(res_on.bandwidth_mbps, "higher", RESILIENCE_TOLERANCE),
        "journeys_delivered": _gate(float(len(delivered)), "higher"),
    }
    metrics = {
        "journeys": len(recorder),
        "retransmitted_journeys": sum(1 for j in delivered if j.retransmits),
        "journey_events": sum(len(j.events) for j in delivered),
    }
    return gates, metrics


def _scenario_bulk_flowmode(quick: bool) -> Tuple[Dict, Dict]:
    """Hybrid-engine headline: the fig4 bulk point, exact vs flow mode.

    Runs the same 1 MB MTU-1500 stream twice — ``flow_mode="off"``
    (the packet-exact reference) and ``"auto"`` (analytic bulk-train
    batching) — and *errors out* (like the fig7 cross-check) unless the
    hybrid engine cuts ``events_processed`` by at least
    :data:`FLOWMODE_MIN_RATIO` while reproducing the exact engine's
    bandwidth within :data:`FLOWMODE_BW_TOLERANCE`.  The gates then pin
    both numbers against the committed baseline like any other scenario.
    """
    from dataclasses import replace

    from ..cluster import Cluster
    from ..config import MTU_STANDARD, granada2003
    from ..workloads import clic_pair, stream

    nbytes, messages = (1_000_000, 8) if quick else (2_000_000, 16)

    def one(mode: str):
        cfg = replace(granada2003(mtu=MTU_STANDARD),
                      profile=True).with_flow_mode(mode)
        cluster = Cluster(cfg, protocols=("clic",))
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
        return res, cluster

    res_off, cl_off = one("off")
    res_auto, cl_auto = one("auto")
    ev_off = cl_off.env.profiler.events_processed
    ev_auto = cl_auto.env.profiler.events_processed
    ratio = ev_off / ev_auto
    if ratio < FLOWMODE_MIN_RATIO:
        raise ValueError(
            f"flow mode reduced events only {ratio:.2f}x "
            f"({ev_off} -> {ev_auto}); the bulk fast path requires "
            f">= {FLOWMODE_MIN_RATIO:.0f}x")
    bw_rel = abs(res_auto.bandwidth_mbps - res_off.bandwidth_mbps) / res_off.bandwidth_mbps
    if bw_rel > FLOWMODE_BW_TOLERANCE:
        raise ValueError(
            f"flow mode moved bulk bandwidth {bw_rel:.1%} "
            f"(off={res_off.bandwidth_mbps:.2f}, "
            f"auto={res_auto.bandwidth_mbps:.2f} MB/s); "
            f"tolerance is {FLOWMODE_BW_TOLERANCE:.0%}")

    flow = dict(cl_auto.env.flow.counters)
    gates = {
        "event_reduction": _gate(ratio, "higher"),
        "bw_auto_mbps": _gate(res_auto.bandwidth_mbps, "higher"),
        "bw_off_mbps": _gate(res_off.bandwidth_mbps, "higher"),
    }
    metrics = {
        "events_off": ev_off,
        "events_auto": ev_auto,
        "event_reduction": ratio,
        "bw_rel_err": bw_rel,
        "trains": flow.get("trains", 0),
        "frames_batched": flow.get("frames_batched", 0),
        "acks_express": flow.get("acks_express", 0),
        "fallbacks": {k[len("fallback_"):]: v for k, v in flow.items()
                      if k.startswith("fallback_")},
        "message_bytes": nbytes,
    }
    return gates, metrics


def _scenario_collectives(quick: bool) -> Tuple[Dict, Dict]:
    """NIC-offload headline: host vs NIC collectives on a fat-tree.

    Pins one point of the ``collectives-scaling`` experiment: barrier
    and small-payload allreduce at a fixed P over a 2-level fat-tree,
    in both ``collectives`` modes.  *Errors out* (like the fig7
    cross-check) if the NIC engine fails to beat the host barrier, or
    if a traced NIC barrier shows any syscall/IRQ/bottom-half on the
    collective critical path — the property the offload exists for.
    The gates then pin the absolute times and the speedup against the
    committed baseline.
    """
    from ..experiments.nic_collectives import _traced_critical_path
    from ..config import Topology, granada2003
    from ..workloads.mpibench import collective_time

    size = 16 if quick else 64
    cfg = granada2003(num_nodes=size).with_topology(
        Topology("fat-tree", leaf_fan=4, uplink_fan=2))
    times = {
        (op, mode): collective_time(
            cfg, "clic", op, nbytes, repeats=2, collectives=mode)
        for op, nbytes in (("barrier", 0), ("allreduce", 64))
        for mode in ("host", "nic")
    }
    speedup = times[("barrier", "host")] / times[("barrier", "nic")]
    if speedup <= 1.0:
        raise ValueError(
            f"NIC barrier lost to the host algorithms at P={size} "
            f"({times[('barrier', 'nic')]/1000:.1f} vs "
            f"{times[('barrier', 'host')]/1000:.1f} us)")
    crossings = _traced_critical_path("nic")
    if any(crossings.values()):
        raise ValueError(
            f"NIC collective critical path crossed the kernel: {crossings}")

    gates = {
        "host_barrier_us": _gate(times[("barrier", "host")] / 1000, "lower"),
        "nic_barrier_us": _gate(times[("barrier", "nic")] / 1000, "lower"),
        "nic_allreduce_us": _gate(times[("allreduce", "nic")] / 1000, "lower"),
        "nic_barrier_speedup": _gate(speedup, "higher"),
    }
    metrics = {
        "num_nodes": size,
        "host_allreduce_us": times[("allreduce", "host")] / 1000,
        "kernel_crossings": crossings,
    }
    return gates, metrics


#: scenario name -> runner(quick) -> (gates, metrics); pinned order
SCENARIOS: List[Tuple[str, Callable[[bool], Tuple[Dict, Dict]]]] = [
    ("headline", _scenario_headline),
    ("fig4", _scenario_fig4),
    ("fig5", _scenario_fig5),
    ("fig7", _scenario_fig7),
    ("resilience", _scenario_resilience),
    ("journey", _scenario_journey),
    ("bulk-flowmode", _scenario_bulk_flowmode),
    ("collectives-scaling", _scenario_collectives),
]


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------

def current_rev() -> str:
    """Short git revision of the working tree, or ``local`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or "local"
    except Exception:
        return "local"


def _scenario_task(spec: Tuple[str, bool]) -> Tuple[str, Dict, Dict, Dict, float]:
    """Run one scenario from a pure-data spec (module-level: pool-safe).

    Wall clock is measured in the worker, so with ``jobs > 1`` each
    scenario still reports its own cost rather than pool overhead.
    """
    name, quick = spec
    runner = dict(SCENARIOS)[name]
    t0 = time.perf_counter()
    with profiled() as profilers:
        gates, metrics = runner(quick)
    wall = time.perf_counter() - t0
    return name, gates, metrics, aggregate_profiles(profilers), wall


def run_bench(quick: bool = True, scenarios: Optional[List[str]] = None,
              rev: Optional[str] = None, jobs: int = 1) -> Dict[str, Any]:
    """Run the pinned suite and return the bench document (plain dict).

    ``jobs > 1`` fans the scenarios out over a process pool; the
    document's gates/metrics/profile sections are byte-identical to a
    serial run (only the informational wall-clock numbers move).
    """
    wanted = {name for name, _ in SCENARIOS} if scenarios is None else set(scenarios)
    unknown = wanted - {name for name, _ in SCENARIOS}
    if unknown:
        raise KeyError(f"unknown scenarios {sorted(unknown)}; "
                       f"have {[name for name, _ in SCENARIOS]}")
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "rev": rev if rev is not None else current_rev(),
        "quick": quick,
        "python": sys.version.split()[0],
        "scenarios": {},
    }
    specs = [(name, quick) for name, _ in SCENARIOS if name in wanted]
    total_wall = 0.0
    wall_by_scenario: Dict[str, float] = {}
    total_events = {"events_processed": 0, "events_scheduled": 0}
    for name, gates, metrics, profile, wall in run_tasks(_scenario_task, specs, jobs=jobs):
        gates["events_processed"] = _gate(
            float(profile["events_processed"]), "lower", PROFILE_TOLERANCE)
        doc["scenarios"][name] = {
            "gates": gates,
            "metrics": metrics,
            "profile": profile,
            "wall_s": round(wall, 3),
        }
        total_wall += wall
        wall_by_scenario[name] = round(wall, 3)
        for key in total_events:
            total_events[key] += profile[key]
    # Scenarios that A/B the hybrid flow engine publish an
    # ``event_reduction`` metric; surface those ratios in the totals so
    # the scorecard (``repro.obs.report``) can headline the speedup.
    reductions = {
        name: entry["metrics"]["event_reduction"]
        for name, entry in doc["scenarios"].items()
        if "event_reduction" in entry.get("metrics", {})
    }
    doc["totals"] = {
        "wall_s": round(total_wall, 3),
        "wall_by_scenario": wall_by_scenario,
        **total_events,
    }
    if reductions:
        doc["totals"]["event_reduction_by_scenario"] = reductions
    return jsonable(doc)


def write_bench(doc: Dict[str, Any], path: str) -> None:
    """Write a bench document as deterministic, sorted-key JSON."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def flow_packet_diff(nbytes: int = 1_000_000, messages: int = 8,
                     tolerance: float = FLOWMODE_BW_TOLERANCE) -> Dict[str, Any]:
    """:class:`~repro.obs.RunDiff` document: one bulk run, both engines.

    Runs the bulk-flowmode point under ``flow_mode="off"`` and
    ``"auto"`` and splits the comparison in two, matching the engine's
    contract:

    * ``physics`` — transfer result and protocol conservation counters,
      which must agree within ``tolerance`` (``within_tolerance`` is
      the verdict CI gates on);
    * ``report`` — the full metric-by-metric diff, informational only:
      event-granularity counters (IRQs, timer pops, ack frames)
      legitimately collapse by ~an order of magnitude in flow mode.
    """
    from dataclasses import replace

    from ..cluster import Cluster
    from ..config import MTU_STANDARD, granada2003
    from ..obs import RunDiff
    from ..workloads import clic_pair, stream

    #: metric-snapshot keys the flow engine must conserve exactly
    physics_metrics = (
        "node0.clic.bytes_sent", "node1.clic.bytes_rx",
        "node0.clic.pkts_tx", "node1.clic.pkts_rx",
        "node0.nic0.tx_frames", "node1.nic0.rx_frames",
    )

    runs: Dict[str, Dict[str, Any]] = {}
    for mode in ("off", "auto"):
        cfg = replace(granada2003(mtu=MTU_STANDARD),
                      profile=True).with_flow_mode(mode)
        cluster = Cluster(cfg, protocols=("clic",))
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
        snap = cluster.metrics.snapshot()
        runs[mode] = {
            "result": {
                "bandwidth_mbps": res.bandwidth_mbps,
                "elapsed_ns": res.elapsed_ns,
                "nbytes_total": res.nbytes_total,
            },
            "events_processed": cluster.env.profiler.events_processed,
            "metrics": jsonable(snap),
            "flow": dict(cluster.env.flow.counters) if cluster.env.flow else {},
        }

    def physics_view(run: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "result": run["result"],
            "conservation": {k: run["metrics"].get(k)
                             for k in physics_metrics},
        }

    physics = RunDiff(physics_view(runs["off"]), physics_view(runs["auto"]),
                      tolerance=tolerance)
    full = RunDiff(
        {k: runs["off"][k] for k in ("result", "events_processed", "metrics")},
        {k: runs["auto"][k] for k in ("result", "events_processed", "metrics")},
        tolerance=tolerance)
    return jsonable({
        "schema": "repro.flowdiff/1",
        "a": "flow_mode=off",
        "b": "flow_mode=auto",
        "message_bytes": nbytes,
        "messages": messages,
        "tolerance": tolerance,
        "event_reduction": (runs["off"]["events_processed"]
                            / runs["auto"]["events_processed"]),
        "within_tolerance": physics.within_tolerance(),
        "runs": runs,
        "physics": [
            {"key": d.key, "a": d.a, "b": d.b, "status": d.status}
            for d in physics.deltas
        ],
        "report": full.report(
            only_changes=False,
            title="flow-vs-packet: flow_mode=off -> auto"),
    })
