"""Point-to-point Gigabit Ethernet links.

A :class:`Link` is full duplex: two independent :class:`Channel`\\ s, one
per direction.  Each channel serializes frames at the line rate
(including preamble, CRC padding and inter-frame gap) and delivers them
to its sink after the propagation delay.  Optional loss injection
exercises the protocols' reliability machinery.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from ..config import LinkParams
from ..sim import BusyTracker, Counters, Environment, Resource
from .nic.frames import Frame, frame_time_ns

__all__ = ["Channel", "Link"]


class Channel:
    """One direction of a link: serialize, propagate, deliver."""

    def __init__(
        self,
        env: Environment,
        params: LinkParams,
        name: str = "chan",
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.params = params
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng
        self._wire = Resource(env, capacity=1, name=name)
        self._sink: Optional[Callable[[Frame], None]] = None
        self.busy = BusyTracker()
        self.counters = Counters()
        if loss_rate and rng is None:
            raise ValueError("loss injection requires an RNG stream")

    def connect(self, sink: Callable[[Frame], None]) -> None:
        """Attach the receiving endpoint (called once per channel)."""
        if self._sink is not None:
            raise RuntimeError(f"channel {self.name} already connected")
        self._sink = sink

    def transmit(self, frame: Frame) -> Generator:
        """Serialize ``frame`` onto the wire (the caller waits for that),
        then deliver it to the sink after propagation."""
        if self._sink is None:
            raise RuntimeError(f"channel {self.name} has no sink")
        duration = frame_time_ns(frame, self.params)
        with self._wire.request() as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                yield self.env.timeout(duration)
            finally:
                self.busy.release(self.env.now)
        self.counters.add("frames")
        self.counters.add("bytes", frame.payload_bytes)
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.counters.add("frames_lost")
            return
        self.env.process(self._deliver(frame), name=f"{self.name}.deliver")

    def _deliver(self, frame: Frame) -> Generator:
        yield self.env.timeout(self.params.propagation_ns)
        self._sink(frame)

    def utilization(self) -> float:
        """Busy fraction of this direction since time zero."""
        now = self.env.now
        if now <= 0:
            return 0.0
        return self.busy.busy_time(now) / now


class Link:
    """A full-duplex link between two endpoints, A and B."""

    def __init__(
        self,
        env: Environment,
        params: LinkParams,
        name: str = "link",
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.params = params
        self.name = name
        self.a_to_b = Channel(env, params, f"{name}.a2b", loss_rate, rng)
        self.b_to_a = Channel(env, params, f"{name}.b2a", loss_rate, rng)
