"""Point-to-point Gigabit Ethernet links.

A :class:`Link` is full duplex: two independent :class:`Channel`\\ s, one
per direction.  Each channel serializes frames at the line rate
(including preamble, CRC padding and inter-frame gap) and delivers them
to its sink after the propagation delay.  Fault injection (loss, burst
loss, corruption, outages — see :mod:`repro.faults`) exercises the
protocols' reliability machinery.

Counter semantics: ``frames_offered``/``bytes_offered`` count everything
serialized onto the wire (one per transmit, however many copies result);
``frames``/``bytes`` count what is actually *delivered* to the sink —
every copy (corrupted frames are delivered — the receiving NIC's CRC
check drops them); ``frames_lost``/``bytes_lost`` count drops from loss
models and outages; ``frames_duplicated``/``bytes_duplicated`` count the
*extra* copies a duplication fault produced.  Offered + duplicated =
delivered + lost, always.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Generator, Optional

import numpy as np

from ..config import LinkParams
from ..faults import ChannelFaults, FrameVerdict, LinkFaultSpec
from ..sim import BusyTracker, Counters, Environment, Resource
from .nic.frames import Frame, frame_time_ns

__all__ = ["Channel", "Link"]


class Channel:
    """One direction of a link: serialize, propagate, deliver."""

    def __init__(
        self,
        env: Environment,
        params: LinkParams,
        name: str = "chan",
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        faults: Optional[ChannelFaults] = None,
        tracer=None,
    ):
        self.env = env
        self.params = params
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng
        self._wire = Resource(env, capacity=1, name=name)
        self._sink: Optional[Callable[[Frame], None]] = None
        self.busy = BusyTracker()
        self.counters = Counters()
        #: optional :class:`repro.obs.Tracer`; only its ``journeys``
        #: attribute is consulted (for wire drop / duplicate events)
        self.tracer = tracer
        if loss_rate and rng is None and faults is None:
            raise ValueError("loss injection requires an RNG stream")
        if faults is None and loss_rate:
            # Legacy constructor path: plain Bernoulli loss from the given
            # stream (draw-for-draw identical to the historical behaviour).
            faults = ChannelFaults(LinkFaultSpec(loss_rate=loss_rate), rng=rng)
        self.faults = faults

    def _journeys(self):
        return self.tracer.journeys if self.tracer is not None else None

    @property
    def idle(self) -> bool:
        """True when nothing is serializing or queued for the wire.

        The flow-mode engine consults this before advancing a train (or
        an express ack) analytically past the wire: any in-progress or
        queued transmission forces the exact resource-contended path so
        ordering can never invert.
        """
        return not self._wire.users and not self._wire.queue

    def connect(self, sink: Callable[[Frame], None]) -> None:
        """Attach the receiving endpoint (called once per channel)."""
        if self._sink is not None:
            raise RuntimeError(f"channel {self.name} already connected")
        self._sink = sink

    def transmit(self, frame: Frame) -> Generator:
        """Serialize ``frame`` onto the wire (the caller waits for that),
        then deliver it to the sink after propagation."""
        if self._sink is None:
            raise RuntimeError(f"channel {self.name} has no sink")
        duration = frame_time_ns(frame, self.params)
        if frame.train_frames > 1:
            # Flow-mode train, cut-through timing: the train is paced by
            # the slower upstream stage (host PCI DMA serializes the k
            # frames before the wire ever sees them), so in the exact
            # simulation the wire overlaps with that pacing and adds only
            # one frame's serialization to the tail latency.  Holding the
            # wire k frame-times here would stack latency the pipelined
            # packet model does not have; hold one frame time instead.
            # (Utilization under-reports by (k-1)/k per train — a
            # documented flow-mode approximation.)
            duration /= frame.train_frames
        if self.faults is not None:
            # Congestion collapses effective bandwidth: the wire is held
            # for a multiple of the healthy serialization time, so every
            # queued successor is pushed out too (the spike cascades).
            duration *= self.faults.congestion_factor(self.env.now)
        with self._wire.request() as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                yield self.env.timeout(duration)
            finally:
                self.busy.release(self.env.now)
        k = frame.train_frames
        self.counters.add("frames_offered", k)
        self.counters.add("bytes_offered", frame.payload_bytes)
        if k > 1:
            # Flow-mode train: it only formed because the controller
            # proved both directions quiet over its horizon (no
            # stochastic models, no outage/congestion window), so the
            # verdict is DELIVER with no extras — skip the per-frame
            # draw and hand the batch to the sink with one timer
            # instead of a delivery process.
            self.counters.add("frames", k)
            self.counters.add("bytes", frame.payload_bytes)
            sink = self._sink
            self.env.call_later(self.params.propagation_ns,
                                lambda: sink(frame))
            return
        if self.faults is None:
            self.counters.add("frames")
            self.counters.add("bytes", frame.payload_bytes)
            self.env.process(
                self._deliver(frame, self.params.propagation_ns),
                name=f"{self.name}.deliver",
            )
            return
        decision = self.faults.decide(self.env.now)
        journeys = self._journeys()
        if decision.dropped:
            self.counters.add("frames_lost")
            self.counters.add("bytes_lost", frame.payload_bytes)
            if journeys is not None:
                journeys.hop(frame.payload, "wire_drop", "wire", link=self.name,
                             reason=decision.verdict.value)
            return
        if decision.verdict is FrameVerdict.CORRUPT:
            # Deliver a damaged copy (a broadcast frame object is shared
            # across egress ports — never corrupt the shared instance).
            frame = replace(frame, corrupted=True)
            self.counters.add("frames_corrupted")
        delay = (
            self.params.propagation_ns
            + decision.extra_delay_ns
            + self.faults.congestion_latency_ns(self.env.now)
        )
        if decision.copies > 1:
            self.counters.add("frames_duplicated", decision.copies - 1)
            self.counters.add("bytes_duplicated",
                              frame.payload_bytes * (decision.copies - 1))
            if journeys is not None:
                journeys.hop(frame.payload, "wire_dup", "wire", link=self.name,
                             copies=decision.copies)
        for _ in range(decision.copies):
            self.counters.add("frames")
            self.counters.add("bytes", frame.payload_bytes)
            self.env.process(
                self._deliver(frame, delay), name=f"{self.name}.deliver"
            )

    def _deliver(self, frame: Frame, delay_ns: float) -> Generator:
        yield self.env.timeout(delay_ns)
        self._sink(frame)

    def utilization(self) -> float:
        """Busy fraction of this direction since time zero."""
        now = self.env.now
        if now <= 0:
            return 0.0
        return self.busy.busy_time(now) / now


class Link:
    """A full-duplex link between two endpoints, A and B."""

    def __init__(
        self,
        env: Environment,
        params: LinkParams,
        name: str = "link",
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.params = params
        self.name = name
        self.a_to_b = Channel(env, params, f"{name}.a2b", loss_rate, rng)
        self.b_to_a = Channel(env, params, f"{name}.b2a", loss_rate, rng)
