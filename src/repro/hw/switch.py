"""Store-and-forward Ethernet switch.

The paper's testbed connects the two machines through a Gigabit Ethernet
switch (and §5 notes CLIC exploits Ethernet's data-link multicast and
builds channel-bonded networks through a switch).  This model:

* learns nothing dynamically — ports register their MAC on attach
  (adequate for a closed cluster; keeps the simulation deterministic);
* forwards a frame after its full reception (store-and-forward: the
  ingress link has already serialized it) plus a fixed forwarding
  latency;
* replicates broadcast/multicast frames to every other port;
* handles egress-queue exhaustion per the configured *backpressure
  mode*: ``"drop"`` (the default — tail-drop, counted) or ``"pause"``
  (the forwarding engine blocks until the queue has room, modelling an
  802.3x PAUSE-style lossless fabric; the stall is accounted in
  ``pause_events`` / ``pause_time_ns``);
* supports scheduled egress *blackouts* per port (see
  :mod:`repro.faults`): during a blackout window the port drops every
  frame queued for it (counted), modelling a reconverging or wedged
  switch port.

Queue occupancy is observable: each enqueue refreshes a per-port depth
gauge (``portN_depth``) and a cluster-wide high-water mark
(``max_queue_depth``) that the invariant harness checks against the
configured capacity (the bounded-memory rule).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..config import LinkParams
from ..sim import Counters, Environment, Store
from .link import Channel
from .nic.frames import Frame, MacAddress

__all__ = ["Switch", "SwitchPort", "BACKPRESSURE_MODES"]

#: Default forwarding latency of an early-2000s GigE switch (store-and-
#: forward pipeline after last bit in), ns.
DEFAULT_FORWARD_NS = 2_000.0

#: supported egress-exhaustion policies
BACKPRESSURE_MODES = ("drop", "pause")


class SwitchPort:
    """One switch port: an egress queue plus its transmit pump."""

    def __init__(self, switch: "Switch", index: int, egress: Channel, queue_frames: int):
        self.switch = switch
        self.index = index
        self.egress = egress
        self.queue: Store = Store(switch.env, capacity=queue_frames)
        self.macs: List[MacAddress] = []
        #: scheduled egress-blackout windows (objects with ``covers(now)``)
        self.blackouts: Tuple = ()
        #: highest queue occupancy ever observed (bounded-memory audit)
        self.max_depth = 0
        #: broadcast frames replicate out this port (fabric builders clear
        #: this on redundant trunk ports to keep the flood tree loop-free)
        self.flood = True
        switch.env.process(self._pump(), name=f"{switch.name}.port{index}.tx")

    @property
    def occupancy(self) -> int:
        """Queue occupancy in *frame* units.

        A flow-mode train entry stands for ``train_frames`` frames;
        with no trains queued this equals ``len(queue.items)``, keeping
        depth gauges bit-identical to the pre-hybrid simulator.
        """
        return sum(f.train_frames for f in self.queue.items)

    def _pump(self) -> Generator:
        while True:
            frame = yield self.queue.get()
            yield from self.egress.transmit(frame)

    def in_blackout(self, now: float) -> bool:
        """True while a scheduled blackout window covers ``now``."""
        return any(w.covers(now) for w in self.blackouts)

    def _note_depth(self) -> None:
        """Refresh the depth gauge and the cluster-wide high-water mark."""
        depth = self.occupancy
        self.max_depth = max(self.max_depth, depth)
        self.switch.counters.set(f"port{self.index}_depth", depth)
        self.switch.note_depth(self.max_depth)

    def _drop_for_blackout(self, frame: Frame) -> bool:
        """Drop (counted) when a blackout window covers now."""
        if self.blackouts and self.in_blackout(self.switch.env.now):
            self.switch.counters.add("blackout_drops", frame.train_frames)
            journeys = self.switch._journeys()
            if journeys is not None:
                journeys.hop(frame.payload, "switch_drop", "switch",
                             port=self.index, reason="blackout")
            return True
        return False

    def enqueue(self, frame: Frame) -> None:
        """Queue a frame for egress; drop (counted) if the queue is full
        or the port is blacked out — the ``"drop"`` backpressure mode."""
        if self._drop_for_blackout(frame):
            return
        k = frame.train_frames
        journeys = self.switch._journeys()
        if self.occupancy + k > self.queue.capacity:
            self.switch.counters.add("drops", k)
            if journeys is not None:
                journeys.hop(frame.payload, "switch_drop", "switch",
                             port=self.index, reason="overflow")
            return
        if journeys is not None:
            journeys.hop(frame.payload, "switch", "switch",
                         port=self.index, depth=self.occupancy)
        self.queue.put(frame)
        self._note_depth()

    def enqueue_blocking(self, frame: Frame) -> Generator:
        """Queue a frame for egress, *waiting* for room when the queue is
        full — the ``"pause"`` backpressure mode.

        Blackouts still drop (a blacked-out port is dark, not slow).
        The wait propagates to the forwarding engine, so a congested
        egress stalls its ingress instead of shedding frames; the stall
        is accounted in ``pause_events`` / ``pause_time_ns``.
        """
        if self._drop_for_blackout(frame):
            return
        journeys = self.switch._journeys()
        if journeys is not None:
            journeys.hop(frame.payload, "switch", "switch",
                         port=self.index, depth=self.occupancy)
        if len(self.queue.items) >= self.queue.capacity:
            self.switch.counters.add("pause_events")
            paused_at = self.switch.env.now
            yield self.queue.put(frame)
            self.switch.counters.add("pause_time_ns",
                                     self.switch.env.now - paused_at)
        else:
            yield self.queue.put(frame)
        self._note_depth()


class Switch:
    """An N-port store-and-forward switch."""

    def __init__(
        self,
        env: Environment,
        link_params: LinkParams,
        forward_ns: float = DEFAULT_FORWARD_NS,
        queue_frames: int = 512,
        tracer=None,
        metrics=None,
        backpressure: str = "drop",
        name: str = "switch",
    ):
        if backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES} "
                f"(got {backpressure!r})"
            )
        self.env = env
        self.name = name
        self.link_params = link_params
        self.forward_ns = forward_ns
        self.queue_frames = queue_frames
        self.backpressure = backpressure
        self.ports: List[SwitchPort] = []
        self._mac_table: Dict[MacAddress, SwitchPort] = {}
        #: counters land in the shared cluster registry (``<name>.*``)
        #: when a :class:`~repro.obs.MetricsRegistry` is given, so run
        #: artifacts can surface drop/pause accounting; private otherwise.
        self.counters = (
            Counters(registry=metrics, prefix=f"{name}.")
            if metrics is not None else Counters()
        )
        #: optional :class:`repro.obs.Tracer`; only its ``journeys``
        #: attribute is consulted (the switch emits no spans)
        self.tracer = tracer

    def _journeys(self):
        return self.tracer.journeys if self.tracer is not None else None

    def note_depth(self, depth: int) -> None:
        """Fold one port's high-water mark into the cluster-wide gauge."""
        if depth > self.counters.level("max_queue_depth"):
            self.counters.set("max_queue_depth", depth)

    @property
    def max_queue_depth(self) -> int:
        """Highest egress-queue occupancy seen on any port."""
        return max((p.max_depth for p in self.ports), default=0)

    def attach(self, egress: Channel, mac: MacAddress) -> SwitchPort:
        """Create a port transmitting on ``egress``, owning ``mac``.

        Returns the port; wire the device's tx channel sink to
        ``port.receive``... i.e. ``channel.connect(switch.ingress(port))``.
        """
        port = SwitchPort(self, len(self.ports), egress, self.queue_frames)
        port.macs.append(mac)
        self.ports.append(port)
        if mac in self._mac_table:
            raise ValueError(f"duplicate MAC {mac}")
        self._mac_table[mac] = port
        return port

    def set_blackouts(self, port: SwitchPort, windows: Sequence) -> None:
        """Schedule egress-blackout windows on ``port`` (any objects with
        a ``covers(now)`` predicate, e.g. :class:`repro.faults.OutageWindow`)."""
        port.blackouts = tuple(sorted(windows, key=lambda w: w.start_ns))

    def add_mac(self, port: SwitchPort, mac: MacAddress) -> None:
        """Register an extra MAC behind a port (channel bonding helper)."""
        if mac in self._mac_table:
            raise ValueError(f"duplicate MAC {mac}")
        self._mac_table[mac] = port
        port.macs.append(mac)

    def ingress(self, from_port: SwitchPort):
        """Sink callable for the channel feeding this switch from a device."""

        def _receive(frame: Frame) -> None:
            if frame.train_frames > 1 and self.backpressure == "drop":
                # Flow-mode train: forwarding is one timer + a
                # synchronous enqueue (drop mode never blocks), so the
                # whole store-and-forward stage costs one event.
                self.env.call_later(
                    self.forward_ns,
                    lambda: self._forward_train(frame, from_port),
                )
                return
            self.env.process(
                self._forward(frame, from_port), name=f"{self.name}.forward"
            )

        return _receive

    def _forward_train(self, frame: Frame, from_port: SwitchPort) -> None:
        """Synchronous forwarding for a train (drop-mode fast path)."""
        k = frame.train_frames
        self.counters.add("forwarded", k)
        port = self._mac_table.get(frame.dst)
        if port is None:
            self.counters.add("unknown_dst", k)
            return
        if port is from_port:
            self.counters.add("hairpin_dropped", k)
            return
        port.enqueue(frame)

    def _enqueue(self, port: SwitchPort, frame: Frame) -> Generator:
        """Hand ``frame`` to ``port`` per the backpressure mode."""
        if self.backpressure == "pause":
            yield from port.enqueue_blocking(frame)
        else:
            port.enqueue(frame)

    def _forward(self, frame: Frame, from_port: SwitchPort) -> Generator:
        yield self.env.timeout(self.forward_ns)
        k = frame.train_frames
        self.counters.add("forwarded", k)
        if frame.is_broadcast:
            for port in self.ports:
                if port is not from_port and port.flood:
                    yield from self._enqueue(port, frame)
            return
        port = self._mac_table.get(frame.dst)
        if port is None:
            # Unknown unicast: a real switch floods; in a closed cluster
            # this indicates a wiring bug, so count and drop loudly.
            self.counters.add("unknown_dst", k)
            return
        if port is from_port:
            self.counters.add("hairpin_dropped", k)
            return
        yield from self._enqueue(port, frame)
