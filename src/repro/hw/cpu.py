"""Host processor model.

The CPU is a single preemptible execution resource with four priority
levels mirroring the Linux execution contexts the paper reasons about:

========  =====  ==============================================
level     prio   used by
========  =====  ==============================================
IRQ       0      hardware interrupt handlers (preempt everything)
SOFTIRQ   2      bottom halves / softirq work
KERNEL    5      syscall bodies, protocol modules
USER      10     application computation
========  =====  ==============================================

Work is charged with :meth:`Cpu.execute`, a generator that acquires the
CPU at the given priority and burns the requested time, transparently
surviving preemption (the preempted work resumes with its remaining
time once the CPU frees up).  Interrupt-level work preempts user/kernel
work exactly as hardware interrupts steal cycles from applications —
which is how the Section 2 "one interrupt every 12 microseconds eats
the host CPU" effect emerges in the simulated bandwidth curves.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import CpuParams
from ..sim import (
    BusyTracker,
    Counters,
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
)

__all__ = ["Cpu", "PRIO_IRQ", "PRIO_SOFTIRQ", "PRIO_KERNEL", "PRIO_USER"]

PRIO_IRQ = 0
PRIO_SOFTIRQ = 2
PRIO_KERNEL = 5
PRIO_USER = 10


class Cpu:
    """A single host processor.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Static CPU costs.
    name:
        For traces ("node0.cpu").
    """

    def __init__(self, env: Environment, params: CpuParams, name: str = "cpu"):
        self.env = env
        self.params = params
        self.name = name
        self._res = PreemptiveResource(env, capacity=1, name=name)
        self.busy = BusyTracker()
        self.counters = Counters()

    def execute(
        self,
        duration: float,
        priority: int = PRIO_USER,
        label: str = "",
    ) -> Generator:
        """Charge ``duration`` ns of CPU time at ``priority``.

        Yields until the work completes.  If preempted by higher-priority
        work, the remaining time is re-queued; total busy time charged is
        exactly ``duration`` (preemption overhead is charged by the
        preemptor, e.g. interrupt entry costs).
        """
        if duration < 0:
            raise ValueError(f"negative CPU work {duration!r}")
        remaining = float(duration)
        env = self.env
        preempt = priority <= PRIO_IRQ
        while remaining > 0:
            req = self._res.request(priority=priority, preempt=preempt)
            try:
                yield req
            except Interrupt as intr:
                # A preemption can race with the grant when both land in
                # the same timestep (grant callback queued, URGENT
                # interrupt delivered first).  The resource has already
                # evicted the granted slot; just retry with full remaining.
                if not isinstance(intr.cause, Preempted):
                    raise
                if not req.triggered:
                    req.cancel()
                self.counters.add("preemptions")
                continue
            started = env.now
            self.busy.acquire(started)
            try:
                yield env.timeout(remaining)
            except Interrupt as intr:
                if not isinstance(intr.cause, Preempted):
                    # Foreign interrupt: restore accounting, re-raise to caller.
                    self.busy.release(env.now)
                    self._safe_release(req)
                    raise
                self.busy.release(env.now)
                remaining -= env.now - started
                self.counters.add("preemptions")
                continue
            self.busy.release(env.now)
            self._res.release(req)
            remaining = 0.0
        self.counters.add(f"work.{label or 'anon'}", duration)

    def occupy(self, subwork: Generator, priority: int = PRIO_IRQ, label: str = "occupy") -> Generator:
        """Hold the CPU while ``subwork`` runs (busy-wait semantics).

        Models a driver routine that keeps the processor captive while a
        device operation completes — e.g. the paper's receive handler,
        which "remains active until all the data stored in the NIC
        buffers have been moved to system memory".  The CPU is accounted
        busy for the whole span.  Intended for IRQ-priority use, where
        nothing can preempt the holder.
        """
        req = self._res.request(priority=priority, preempt=priority <= PRIO_IRQ)
        yield req
        started = self.env.now
        self.busy.acquire(started)
        try:
            result = yield from subwork
        finally:
            self.busy.release(self.env.now)
            self.counters.add(f"work.{label}", self.env.now - started)
            self._safe_release(req)
        return result

    def _safe_release(self, req) -> None:
        try:
            self._res.release(req)
        except Exception:  # pragma: no cover - defensive
            pass

    # -- conveniences ------------------------------------------------------
    def context_switch(self, priority: int = PRIO_KERNEL) -> Generator:
        """Charge one context switch."""
        self.counters.add("context_switches")
        yield from self.execute(
            self.params.context_switch_ns, priority, label="ctxsw"
        )

    def scheduler_pass(self, priority: int = PRIO_KERNEL) -> Generator:
        """Charge one scheduler pass."""
        self.counters.add("scheduler_passes")
        yield from self.execute(
            self.params.scheduler_pass_ns, priority, label="sched"
        )

    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction since time zero."""
        t = self.env.now if now is None else now
        if t <= 0:
            return 0.0
        return self.busy.busy_time(t) / t

    def __repr__(self) -> str:
        return f"<Cpu {self.name} busy={self.busy.total_busy:,.0f}ns>"
