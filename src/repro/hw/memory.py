"""Main-memory subsystem.

Models the cost of CPU-driven copies (the "1-copy" in the paper's
vocabulary) and provides a contended bus for non-CPU engines.  A CPU
memcpy is charged *on the CPU* (the processor is busy moving the bytes —
this is the very resource drain the paper's 0-copy work removes) while
also holding the memory bus so concurrent DMA observes the contention.
"""

from __future__ import annotations

from typing import Generator

from ..config import MemoryParams
from ..sim import BusyTracker, Counters, Environment, Resource

__all__ = ["MemoryBus"]


class MemoryBus:
    """Shared memory bandwidth.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        Bandwidth/setup costs.
    """

    def __init__(self, env: Environment, params: MemoryParams, name: str = "mem"):
        self.env = env
        self.params = params
        self.name = name
        self._bus = Resource(env, capacity=1, name=name)
        self.busy = BusyTracker()
        self.counters = Counters()

    def copy_time(self, nbytes: int, setups: int = 1) -> float:
        """Time for ``setups`` back-to-back CPU memcpys totalling ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative copy size")
        if setups < 1:
            raise ValueError("setups must be >= 1")
        return self.params.copy_setup_ns * setups + nbytes / self.params.copy_bw_Bps * 1e9

    def cpu_copy(self, cpu, nbytes: int, priority: int, label: str = "memcpy",
                 setups: int = 1) -> Generator:
        """Copy ``nbytes`` using the CPU (charges CPU time + bus occupancy).

        ``setups`` counts the per-copy setup costs charged in one bus
        hold: 1 normally, ``k`` when a flow-mode train batches ``k``
        fragment copies back to back.
        """
        duration = self.copy_time(nbytes, setups)
        with self._bus.request() as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                yield from cpu.execute(duration, priority, label=label)
            finally:
                self.busy.release(self.env.now)
        self.counters.add("cpu_copies", setups)
        self.counters.add("cpu_copy_bytes", nbytes)

    def engine_transfer(self, nbytes: int, label: str = "dma") -> Generator:
        """A non-CPU engine (NIC DMA) crossing the memory bus.

        The PCI bus is the slower segment in this machine, so the transfer
        *time* is charged there; this call only accounts occupancy so
        utilization reports include DMA traffic.
        """
        with self._bus.request() as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                # Occupies the bus for the bytes' memory-side time.
                duration = nbytes / self.params.copy_bw_Bps * 1e9
                yield self.env.timeout(duration)
            finally:
                self.busy.release(self.env.now)
        self.counters.add(f"{label}_bytes", nbytes)

    def utilization(self) -> float:
        """Busy fraction of the memory bus since time zero."""
        now = self.env.now
        if now <= 0:
            return 0.0
        return self.busy.busy_time(now) / now
