"""Interrupt coalescing.

Section 2 of the paper: a Gigabit Ethernet NIC at MTU 1500 would raise
one interrupt every ~12 µs, which no 2003-era host can absorb; NICs
therefore *coalesce* — they assert the interrupt only after a frame-count
threshold or a hold-off timer, trading per-packet latency for rate.  The
paper's CLIC uses the NICs' coalesced interrupts and notes drivers allow
dynamic adjustment of the time window.

The coalescer here is deliberately driver-visible:

* :meth:`note_frame` — NIC calls this as each frame becomes ready;
* ``fire_cb`` — invoked (once) when the IRQ is asserted;
* :meth:`service_done` — the driver calls this after draining; if frames
  arrived meanwhile, a new coalescing round starts immediately.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...config import NicParams
from ...sim import Counters, Environment, TimerHandle

__all__ = ["InterruptCoalescer"]


class InterruptCoalescer:
    """Frame-count / hold-off-timer interrupt moderation."""

    def __init__(self, env: Environment, params: NicParams, fire_cb: Callable[[], None], name: str = "coalesce"):
        self.env = env
        self.params = params
        self.fire_cb = fire_cb
        self.name = name
        self.counters = Counters()
        self._pending = 0
        self._in_service = False
        self._timer: Optional[TimerHandle] = None

    @property
    def pending(self) -> int:
        """Frames noted since the last IRQ assert."""
        return self._pending

    def note_frame(self) -> None:
        """NIC-side: one more received frame awaits service."""
        self._pending += 1
        self.counters.add("frames_noted")
        if self._in_service:
            # The driver's drain loop will pick it up; no new IRQ.
            return
        if not self.params.coalescing_enabled:
            self._fire()
            return
        if self._pending >= self.params.coalesce_frames:
            self._fire()
        elif self._timer is None:
            self._start_timer()

    def note_train(self, k: int) -> None:
        """NIC-side: a flow-mode train of ``k`` frames awaits service.

        Batch accounting for the closed-form path: the ``k`` frames
        land at once, so the frame-count threshold is evaluated once
        against the whole batch instead of ``k`` times — one IRQ per
        train when ``k`` meets the threshold, exactly what ``k``
        back-to-back :meth:`note_frame` calls would have produced.
        """
        self._pending += k
        self.counters.add("frames_noted", k)
        if self._in_service:
            return
        if not self.params.coalescing_enabled:
            self._fire()
            return
        if self._pending >= self.params.coalesce_frames:
            self._fire()
        elif self._timer is None:
            self._start_timer()

    def service_done(self, frames_still_pending: int) -> None:
        """Driver-side: the IRQ handler finished draining.

        ``frames_still_pending`` is how many frames remain unserviced in
        the NIC (normally 0; non-zero if the driver bounded its drain).
        """
        self._in_service = False
        self._pending = frames_still_pending
        if self._pending:
            if not self.params.coalescing_enabled:
                self._fire()
            else:
                # Even above the frame threshold, re-assert only after the
                # hold-off (hardware interrupt mitigation): this guarantees
                # softirq work — protocol processing and acks — gets CPU
                # between interrupts, preventing receive livelock.
                self._start_timer()

    # -- internals --------------------------------------------------------
    def _fire(self) -> None:
        if self._timer is not None:  # cancels any running hold-off timer
            self._timer.cancel()
            self._timer = None
        self._pending = 0
        self._in_service = True
        self.counters.add("interrupts")
        self.fire_cb()

    def _start_timer(self) -> None:
        # One hold-off timer per coalescing round: a slotted handle that
        # is cancelled lazily if the frame threshold fires first.
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.env.call_later(
            self.params.coalesce_timeout_ns, self._on_timer
        )

    def _on_timer(self) -> None:
        self._timer = None
        if not self._in_service and self._pending:
            self.counters.add("timer_fires")
            self._fire()
