"""The network interface card.

Models an SMC9462TX / 3C996-T-class Gigabit Ethernet adapter:

* **tx**: the driver posts descriptors into a bounded tx ring; the NIC's
  transmit pump DMAs the bytes across PCI as *bus master* (directly from
  user pages when the descriptor is scatter/gather — the paper's 0-copy
  path #2 — or from kernel staging memory otherwise), charges firmware
  per-frame processing, and serializes the frame onto the link;
* **rx**: arriving frames occupy bounded on-card buffer slots (overflow
  drops are counted — this is what the protocols' reliability layer must
  survive); the coalescer asserts the host IRQ; by default the *driver*
  then moves each frame to host memory across PCI inside the interrupt
  context — exactly the 15 µs receive stage of the paper's Figure 7(a);
* **push mode** (``rx_deliver="push"``): the NIC itself DMAs arriving
  frames straight to pre-posted host buffers and invokes a host callback
  per frame — the modified-driver behaviour GAMMA relies on and the
  completion-queue behaviour VIA relies on;
* optional **fragmentation offload** (paper §2, declined for CLIC to
  preserve driver portability; implemented here as the paper's
  future-work option): descriptors larger than the MTU are split into
  MTU-sized frames by NIC firmware, and received fragments of one packet
  are reassembled on-card before being handed to the host.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from typing import TYPE_CHECKING

from ...config import LinkParams, NicParams
from ...obs import MetricsRegistry, Tracer
from ...sim import Counters, Environment, Event, Store
from ..pci import PciBus

if TYPE_CHECKING:  # pragma: no cover - import cycle: link.py needs frames.py
    from ..link import Channel
from .frames import (EtherType, Frame, MacAddress, max_payload,
                     payload_time_ns, split_train)
from .interrupts import InterruptCoalescer

__all__ = ["TxDescriptor", "RxFrame", "Nic"]

_desc_ids = itertools.count(1)


@dataclass(slots=True)
class TxDescriptor:
    """One transmit request handed to the NIC by the driver."""

    dst: MacAddress
    ethertype: int
    payload_bytes: int
    payload: Any = None
    #: scatter/gather straight from user memory (0-copy) vs kernel staging
    from_user_memory: bool = False
    #: event succeeded when the (last) frame has left the NIC
    on_wire: Optional[Event] = None
    desc_id: int = field(default_factory=lambda: next(_desc_ids))
    #: flow-mode batch width: this descriptor stands for ``k`` equal-size
    #: frames (``payload_bytes`` is the train total; see repro.sim.flowmode)
    train_frames: int = 1


@dataclass(slots=True)
class RxFrame:
    """A received frame waiting in (or delivered from) the NIC."""

    frame: Frame
    arrived_at: float
    #: set once the bytes sit in host memory
    in_host_memory: bool = False


class Nic:
    """A Gigabit Ethernet adapter on one node's PCI bus."""

    def __init__(
        self,
        env: Environment,
        params: NicParams,
        link_params: LinkParams,
        pci: PciBus,
        mac: MacAddress,
        name: str = "nic",
        rx_deliver: str = "irq-pull",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if rx_deliver not in ("irq-pull", "push"):
            raise ValueError(f"unknown rx_deliver mode {rx_deliver!r}")
        self.env = env
        self.params = params
        self.link_params = link_params
        self.pci = pci
        self.mac = mac
        self.name = name
        self.rx_deliver = rx_deliver
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(env, None, enabled=False)
        self.counters = Counters(registry=self.metrics, prefix=f"{name}.")
        #: frames waiting on-card for the driver (high-water via gauge)
        self._rx_depth_gauge = self.metrics.gauge(f"{name}.rx_buffer_depth")

        self._tx_ring: Store = Store(env, capacity=params.tx_ring_slots, name=f"{name}.txring")
        self._rx_buffer: List[RxFrame] = []  # bounded by rx_ring_slots
        #: rx-buffer occupancy in *frame* units (a flow-mode train entry
        #: occupies ``train_frames`` ring descriptors) — equals
        #: ``len(_rx_buffer)`` whenever no train is buffered
        self._rx_occ = 0
        #: ring descriptors claimed by frames still in rx processing
        #: (admitted, not yet in ``_rx_buffer``) — coincident arrivals
        #: (duplicated/jittered frames) must not overshoot the ring
        self._rx_claimed = 0
        #: highest rx-buffer occupancy ever observed (overrun accounting)
        self.rx_buffer_peak = 0
        self._tx_channel: Optional["Channel"] = None

        #: host-side IRQ trampoline, installed by the driver
        self.irq_callback: Optional[Callable[[], None]] = None
        #: push-mode per-frame host callback (GAMMA/VIA)
        self.push_callback: Optional[Callable[[RxFrame], None]] = None

        self.coalescer = InterruptCoalescer(env, params, self._assert_irq, name=f"{name}.coalesce")
        #: on-card tx FIFO: decouples host-side DMA from wire serialization
        self._tx_fifo: Store = Store(env, capacity=params.tx_fifo_frames, name=f"{name}.txfifo")
        env.process(self._tx_pump(), name=f"{name}.txpump")
        env.process(self._wire_pump(), name=f"{name}.wirepump")

        # On-NIC reassembly state for fragmentation offload.
        self._reassembly: dict = {}
        #: NIC-resident collective engine (lazily built; None until the
        #: MPI layer opts in — the rx fast path stays a None check)
        self._collective = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def collective_engine(self):
        """The on-card collective engine, built on first use."""
        if self._collective is None:
            from .collective import CollectiveEngine

            self._collective = CollectiveEngine(self)
        return self._collective

    def attach_tx(self, channel: "Channel") -> None:
        """Connect the NIC's transmit side to a link channel."""
        if self._tx_channel is not None:
            raise RuntimeError(f"{self.name} tx already attached")
        self._tx_channel = channel

    def receive_frame(self, frame: Frame) -> None:
        """Link-side entry point: a frame has fully arrived (channel sink)."""
        k = frame.train_frames
        self.counters.add("rx_frames", k)
        self.counters.add("rx_bytes", frame.payload_bytes)
        journeys = self.tracer.journeys
        if frame.corrupted:
            # Ethernet CRC check in NIC hardware: a damaged frame never
            # reaches the host — the reliability layer must retransmit.
            self.counters.add("rx_crc_drops", k)
            if journeys is not None:
                journeys.hop(frame.payload, "nic_drop", self.name, reason="crc")
            return
        per_payload = frame.payload_bytes // k if k > 1 else frame.payload_bytes
        if per_payload > self.params.effective_mtu():
            # Jumbo interoperability (paper §2: "both communicating
            # computers have to use Jumbo frames"): an oversized frame is
            # dropped by a standard-MTU receiver.
            self.counters.add("rx_oversize_drops", k)
            if journeys is not None:
                journeys.hop(frame.payload, "nic_drop", self.name, reason="oversize")
            return
        if self._collective is not None and self._collective.match(frame):
            # Collective frames are combined/forwarded on-card: they
            # never take a ring slot, never feed the coalescer, and
            # never raise an IRQ — the host only sees the completion.
            self._collective.on_frame(frame)
            return
        if k > 1 and self._rx_occ + self._rx_claimed + k > self.params.rx_ring_slots:
            # Mid-flight ring shortfall: the train cannot occupy k slots
            # as one unit, so materialize it and admit frame by frame —
            # partial admission and per-frame drops stay exact.
            for sub in split_train(frame):
                self._admit(sub, journeys)
            return
        self._admit(frame, journeys)

    def _admit(self, frame: Frame, journeys) -> None:
        """Ring admission for one (possibly train) frame; counts drops."""
        k = frame.train_frames
        if self._rx_occ + self._rx_claimed + k > self.params.rx_ring_slots:
            self.counters.add("rx_drops", k)
            if journeys is not None:
                journeys.hop(frame.payload, "nic_drop", self.name, reason="overflow")
            return
        if journeys is not None:
            journeys.hop(frame.payload, "nic_rx", self.name,
                         nbytes=frame.payload_bytes)
        self._rx_claimed += k  # hardware claims the descriptor(s) at arrival
        rx = RxFrame(frame=frame, arrived_at=self.env.now)
        self.env.process(self._rx_process(rx), name=f"{self.name}.rx")

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def tx_ring_space(self) -> int:
        """Free descriptor slots (the driver checks before posting)."""
        return self.params.tx_ring_slots - len(self._tx_ring.items)

    def try_post_tx(self, desc: TxDescriptor) -> bool:
        """Post a descriptor if the ring has room; False when full.

        The *driver* indicates to the protocol module whether the send is
        possible right now (paper §3.1) — when not, CLIC stages the data
        in system memory and retries later.
        """
        if self.tx_ring_space() <= 0:
            self.counters.add("tx_ring_full")
            return False
        self._effective_mtu_check(desc)
        self._tx_ring.put(desc)
        return True

    def post_tx(self, desc: TxDescriptor):
        """Blocking post: event that triggers once the descriptor is queued."""
        self._effective_mtu_check(desc)
        return self._tx_ring.put(desc)

    def _effective_mtu_check(self, desc: TxDescriptor) -> None:
        mtu = self.params.effective_mtu()
        nbytes = desc.payload_bytes
        if desc.train_frames > 1:
            # A train is k equal-size frames: the MTU bound applies to
            # each constituent frame, not the batch total.
            nbytes //= desc.train_frames
        if nbytes > mtu and not self.params.supports_fragmentation:
            raise ValueError(
                f"descriptor of {desc.payload_bytes} B exceeds MTU {mtu} and "
                f"{self.name} has no fragmentation offload — the protocol "
                "module must fragment in software"
            )

    def _tx_pump(self) -> Generator:
        while True:
            desc: TxDescriptor = yield self._tx_ring.get()
            span = self.tracer.begin(self.name, "nic_tx", nbytes=desc.payload_bytes)
            if desc.train_frames > 1:
                k = desc.train_frames
                per_frame = desc.payload_bytes // k
                flow = self.env.flow
                route = (flow.hop_route(self, desc.dst)
                         if flow is not None else None)
                if (route is not None and desc.on_wire is None
                        and not self._tx_fifo.items and route.hop_clear()):
                    # Analytic fast path.  Pay the *head* frame's DMA
                    # inline (the PCI grant paces back-to-back trains
                    # exactly as k per-frame transfers would) and hold
                    # the bus for the remaining k-1 frames in the
                    # background — utilization and inter-train cadence
                    # stay exact, while the train's head reaches the
                    # destination at the pipelined (cut-through) time
                    # instead of after k serial hop charges.  The
                    # receive side then drains the k frames with the
                    # fully simulated ring/IRQ machinery, overlapping
                    # the background DMA just as the exact per-packet
                    # schedule does.
                    yield from self.pci.dma(per_frame, priority=2,
                                            label=f"{self.name}.tx")
                    self.env.process(
                        self.pci.dma(desc.payload_bytes - per_frame,
                                     priority=2, label=f"{self.name}.tx",
                                     transactions=k - 1),
                        name=f"{self.name}.txdma",
                    )
                    yield self.env.timeout(self.params.frame_processing_ns)
                    frame = Frame(
                        src=self.mac,
                        dst=desc.dst,
                        ethertype=desc.ethertype,
                        payload_bytes=desc.payload_bytes,
                        payload=desc.payload,
                        train_frames=k,
                    )
                    if desc.from_user_memory:
                        self.counters.add("tx_zero_copy", k)
                    self.counters.add("tx_frames", k)
                    self.counters.add("tx_bytes", desc.payload_bytes)
                    latency = (
                        payload_time_ns(per_frame, route.up.params)
                        + route.up.params.propagation_ns
                        + route.forward_ns
                        + payload_time_ns(per_frame, route.down.params)
                        + route.down.params.propagation_ns
                    )
                    self.env.call_later(
                        latency, lambda f=frame, r=route: r.complete_hop(f)
                    )
                    span.end(frames=k, analytic=True)
                    continue
                # Exact-resource train path: one bus-master burst charging
                # k descriptor setups + the batch bytes, k frames' worth of
                # firmware processing, and a single batched FIFO entry —
                # closed-form equal to k back-to-back per-frame passes.
                yield from self.pci.dma(desc.payload_bytes, priority=2,
                                        label=f"{self.name}.tx",
                                        transactions=k)
                yield self.env.timeout(self.params.frame_processing_ns * k)
                frame = Frame(
                    src=self.mac,
                    dst=desc.dst,
                    ethertype=desc.ethertype,
                    payload_bytes=desc.payload_bytes,
                    payload=desc.payload,
                    train_frames=k,
                )
                yield self._tx_fifo.put((frame, desc.on_wire))
                if desc.from_user_memory:
                    self.counters.add("tx_zero_copy", k)
                span.end(frames=k)
                continue
            # Bus-master DMA: fetch the payload (plus headers) across PCI.
            yield from self.pci.dma(desc.payload_bytes, priority=2, label=f"{self.name}.tx")
            journeys = self.tracer.journeys
            if journeys is not None:
                journeys.hop(desc.payload, "nic_dma", self.name,
                             nbytes=desc.payload_bytes)
            mtu = self.params.effective_mtu()
            if desc.payload_bytes <= mtu:
                pieces = [(desc.payload_bytes, desc.payload, True)]
            else:
                # Fragmentation offload: firmware splits into MTU frames.
                pieces = []
                remaining = desc.payload_bytes
                while remaining > 0:
                    take = min(mtu, remaining)
                    remaining -= take
                    pieces.append((take, desc.payload, remaining == 0))
                self.counters.add("tx_offload_fragmented")
            last_idx = len(pieces) - 1
            for idx, (nbytes, payload, last) in enumerate(pieces):
                yield self.env.timeout(self.params.frame_processing_ns)
                frame = Frame(
                    src=self.mac,
                    dst=desc.dst,
                    ethertype=desc.ethertype,
                    payload_bytes=nbytes,
                    payload=payload,
                )
                if len(pieces) > 1:
                    frame.payload = _FragmentMarker(desc.desc_id, payload, last=last, total=desc.payload_bytes)
                on_wire = desc.on_wire if idx == last_idx else None
                yield self._tx_fifo.put((frame, on_wire))
            if desc.from_user_memory:
                self.counters.add("tx_zero_copy")
            span.end(frames=len(pieces))

    def _wire_pump(self) -> Generator:
        """Drain the on-card FIFO onto the wire (overlaps host DMA)."""
        while True:
            frame, on_wire = yield self._tx_fifo.get()
            yield from self._tx_channel.transmit(frame)
            journeys = self.tracer.journeys
            if journeys is not None:
                journeys.hop(frame.payload, "wire", self.name,
                             nbytes=frame.payload_bytes)
            self.counters.add("tx_frames", frame.train_frames)
            self.counters.add("tx_bytes", frame.payload_bytes)
            if on_wire is not None:
                on_wire.succeed(self.env.now)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _rx_process(self, rx: RxFrame) -> Generator:
        span = self.tracer.begin(self.name, "nic_rx", nbytes=rx.frame.payload_bytes)
        k = rx.frame.train_frames
        yield self.env.timeout(self.params.frame_processing_ns * k)
        marker = rx.frame.payload if isinstance(rx.frame.payload, _FragmentMarker) else None
        if marker is not None and self.params.supports_fragmentation:
            # On-NIC reassembly: accumulate, deliver once complete.
            acc = self._reassembly.setdefault(marker.desc_id, [0])
            acc[0] += rx.frame.payload_bytes
            if not marker.last:
                self._rx_claimed -= 1  # fragment consumed on-card
                span.end(reassembling=True)
                return
            total = acc[0]
            del self._reassembly[marker.desc_id]
            rx.frame.payload_bytes = total
            rx.frame.payload = marker.payload
            self.counters.add("rx_offload_reassembled")
        elif marker is not None:
            # Fragments but no offload on this side: hand up as-is; the
            # protocol module deals with it (interop corner, counted).
            self.counters.add("rx_fragment_no_offload")
            rx.frame.payload = marker.payload

        if self.rx_deliver == "push":
            # NIC pushes straight to host memory, then tells the host.
            yield from self.pci.dma(rx.frame.payload_bytes, priority=2, label=f"{self.name}.rxpush")
            rx.in_host_memory = True
            self._rx_claimed -= k  # descriptor recycled after the push
            if self.push_callback is not None:
                self.push_callback(rx)
            span.end(pushed=True)
            return
        self._rx_claimed -= k  # claimed -> buffered
        self._rx_occ += k
        self._rx_buffer.append(rx)
        self._rx_depth_gauge.set(self._rx_occ)
        # Receiver-overrun accounting: the high-water mark the bounded-
        # memory invariant audits against ``rx_ring_slots``.
        if self._rx_occ > self.rx_buffer_peak:
            self.rx_buffer_peak = self._rx_occ
            self.counters.set("rx_buffer_peak", self.rx_buffer_peak)
        span.end()
        if k > 1:
            self.coalescer.note_train(k)
        else:
            self.coalescer.note_frame()

    def _assert_irq(self) -> None:
        self.counters.add("irqs_asserted")
        if self.irq_callback is None:
            raise RuntimeError(f"{self.name}: IRQ asserted but no driver installed")
        self.irq_callback()

    # -- driver-facing rx services (irq-pull mode) -------------------------
    def rx_pending(self) -> int:
        """Ring entries waiting on-card for the driver (a train is one)."""
        return len(self._rx_buffer)

    def rx_headroom(self) -> int:
        """Free rx descriptors right now (flow-mode admission check)."""
        return self.params.rx_ring_slots - self._rx_occ - self._rx_claimed

    def peek_rx(self) -> Optional[RxFrame]:
        """The oldest pending rx frame without removing it (or None)."""
        return self._rx_buffer[0] if self._rx_buffer else None

    def dma_frame_to_host(self) -> Generator:
        """Driver-side: move the oldest pending frame to host memory.

        Charges the PCI transfer (one burst of ``train_frames``
        descriptor setups for a flow-mode train); the *caller* (the
        driver, in interrupt context) stays busy for its own per-frame
        costs.  Returns the :class:`RxFrame`.
        """
        if not self._rx_buffer:
            raise RuntimeError(f"{self.name}: no pending rx frame")
        rx = self._rx_buffer.pop(0)
        self._rx_occ -= rx.frame.train_frames
        self._rx_depth_gauge.set(self._rx_occ)
        yield from self.pci.dma(rx.frame.payload_bytes, priority=2,
                                label=f"{self.name}.rx",
                                transactions=rx.frame.train_frames)
        rx.in_host_memory = True
        return rx

    def irq_service_done(self) -> None:
        """Driver-side: drain finished; re-arm coalescing.

        Pending frames are counted off the buffer itself (train-aware)
        rather than the ``_rx_occ`` gauge so frames parked on the ring
        by other means (tests, diagnostics) are still serviced.
        """
        pending = sum(rx.frame.train_frames for rx in self._rx_buffer)
        self.coalescer.service_done(pending)


@dataclass
class _FragmentMarker:
    """Payload wrapper for NIC-offload fragments on the wire."""

    desc_id: int
    payload: Any
    last: bool = False
    total: int = 0
