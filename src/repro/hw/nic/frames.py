"""Ethernet frames and addressing.

CLIC rides directly on level-1 Ethernet (the paper, Section 3.1): a
14-byte MAC header (6 dst + 6 src + 2 ethertype) and nothing else below
the protocol's own header.  Frames here carry *virtual* payloads — a
byte count plus a reference to the protocol packet object — so simulated
gigabytes cost nothing to "move" in Python while byte accounting stays
exact (tested by conservation invariants).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ...config import LinkParams

__all__ = [
    "MacAddress",
    "BROADCAST",
    "EtherType",
    "Frame",
    "wire_bytes",
    "frame_time_ns",
    "payload_time_ns",
    "max_payload",
    "split_train",
]


@dataclass(frozen=True, order=True)
class MacAddress:
    """A MAC address, condensed to an integer node/port id."""

    value: int

    def __str__(self) -> str:
        if self.value == 0xFFFFFFFFFFFF:
            return "ff:ff:ff:ff:ff:ff"
        return f"02:00:00:00:{(self.value >> 8) & 0xFF:02x}:{self.value & 0xFF:02x}"

    @property
    def is_broadcast(self) -> bool:
        return self.value == 0xFFFFFFFFFFFF


BROADCAST = MacAddress(0xFFFFFFFFFFFF)


class EtherType:
    """Ethertype values used by the simulated stacks."""

    IPV4 = 0x0800
    CLIC = 0x6007  # experimental range; the protocol's own type
    GAMMA = 0x6008
    VIA = 0x6009


_frame_ids = itertools.count(1)


@dataclass(slots=True)
class Frame:
    """One Ethernet frame on the wire.

    ``payload_bytes`` counts everything above the MAC header (protocol
    headers + user data); MAC header, CRC, preamble and IFG are added by
    :func:`wire_bytes` / :func:`frame_time_ns`.

    ``train_frames`` is the flow-mode batch width: ``1`` for an ordinary
    frame, ``k`` when this object stands for ``k`` equal-size back-to-back
    frames advancing as one analytic batch (``payload_bytes`` is then the
    train *total*; every hop computes per-frame costs from
    ``payload_bytes / train_frames`` and multiplies back — see
    :mod:`repro.sim.flowmode`).
    """

    src: MacAddress
    dst: MacAddress
    ethertype: int
    payload_bytes: int
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: damaged in flight — fails the receiving NIC's CRC check
    corrupted: bool = False
    #: frames represented by this object (> 1 only for flow-mode trains)
    train_frames: int = 1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("negative payload")

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast


def wire_bytes(frame: Frame, link: LinkParams) -> int:
    """Total bytes the frame occupies on the wire (incl. preamble + IFG).

    For a flow-mode train this is the exact sum over the batch: ``k``
    times the wire bytes of one constituent frame (the per-frame payload
    divides evenly by construction), so serialization time is identical
    to sending the ``k`` frames back to back.
    """
    k = frame.train_frames
    per_payload = frame.payload_bytes // k if k > 1 else frame.payload_bytes
    mac_frame = link.mac_header_bytes + per_payload + link.crc_bytes
    mac_frame = max(mac_frame, link.min_frame_bytes)
    return (link.preamble_bytes + mac_frame + link.ifg_bytes) * k


def frame_time_ns(frame: Frame, link: LinkParams) -> float:
    """Serialization time of the frame at the link rate."""
    return wire_bytes(frame, link) * 8 / link.rate_bps * 1e9


def payload_time_ns(payload_bytes: int, link: LinkParams) -> float:
    """Serialization time of one frame carrying ``payload_bytes``.

    Same framing arithmetic as :func:`wire_bytes` without needing a
    :class:`Frame` object — used by the flow-mode engine to compute
    closed-form hop latencies.
    """
    mac_frame = link.mac_header_bytes + payload_bytes + link.crc_bytes
    mac_frame = max(mac_frame, link.min_frame_bytes)
    return (link.preamble_bytes + mac_frame + link.ifg_bytes) * 8 / link.rate_bps * 1e9


def split_train(frame: Frame) -> list:
    """Materialize a train back into its constituent per-packet frames.

    The fallback boundary of the flow-mode fast path: a hop that cannot
    keep the batch together (rx-ring shortfall, mid-flight blackout)
    splits the train and continues exact per-frame simulation.  The
    train's payload is duck-typed — anything with a ``packets`` sequence
    (:class:`repro.protocols.headers.ClicTrain`) works; each packet gets
    its own frame with an equal share of the payload bytes.
    """
    k = frame.train_frames
    if k <= 1:
        return [frame]
    per_payload = frame.payload_bytes // k
    return [
        Frame(src=frame.src, dst=frame.dst, ethertype=frame.ethertype,
              payload_bytes=per_payload, payload=packet,
              corrupted=frame.corrupted)
        for packet in frame.payload.packets
    ]


def max_payload(mtu: int) -> int:
    """Maximum protocol payload per frame for a given MTU.

    MTU counts bytes above the MAC header (the classical Ethernet MTU of
    1500 spans IP header + data), so it is exactly the frame's
    ``payload_bytes`` budget.
    """
    if mtu <= 0:
        raise ValueError("MTU must be positive")
    return mtu
