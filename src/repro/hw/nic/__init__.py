"""Gigabit Ethernet NIC model."""

from .base import Nic, RxFrame, TxDescriptor
from .frames import BROADCAST, EtherType, Frame, MacAddress, frame_time_ns, max_payload, wire_bytes
from .interrupts import InterruptCoalescer

__all__ = [
    "BROADCAST",
    "EtherType",
    "Frame",
    "InterruptCoalescer",
    "MacAddress",
    "Nic",
    "RxFrame",
    "TxDescriptor",
    "frame_time_ns",
    "max_payload",
    "wire_bytes",
]
