"""NIC-resident collective engine (Quadrics/Myrinet-style offload).

The paper's CLIC removes the kernel from the per-message data path; the
NIC-based-collectives line of work (PAPERS.md) removes the *host* from
the collective critical path: the NIC firmware recognizes collective
frames, combines or forwards them on-card, and only the final
completion word crosses the PCI bus into host memory.  No IRQ is
raised, no syscall or bottom half runs between a rank's doorbell and
its completion — which is exactly what the tracer-based tests assert.

Model
=====

Each participating NIC owns one :class:`CollectiveEngine`, configured
by the MPI layer with its rank, the world size, and a rank -> MAC
lookup.  All three supported ops run over the same binomial tree of
*virtual* ranks (``vrank = (rank - root) % size``):

* ``barrier``   — contributions combine up the tree; the root releases
  down it.  A rank's completion therefore strictly follows the last
  rank's doorbell.
* ``bcast``     — the root DMAs the payload on-card once and streams it
  down the tree; interior NICs cut through fragment by fragment, then
  DMA the assembled payload to their host.
* ``allreduce`` — payloads combine up (a reduction cannot cut through:
  a parent needs its own and all children's data before forwarding),
  then the fixed-size result broadcasts down.

Data ops fragment to the NIC's effective MTU, so jumbo/standard framing
affects collectives exactly as it does point-to-point traffic.  Costs
charged: a user-level doorbell (CPU + PIO — no kernel crossing), one
payload DMA where the host supplies or receives data, the firmware's
per-frame ``collective_op_ns`` for every combine/forward step, and wire
time through the ordinary tx FIFO / switch-fabric path (collective
frames are regular frames to every switch).

The engine assumes a fault-free fabric: collective frames carry no
sequence numbers and are never retransmitted.  Clusters with fault
plans must keep ``collectives="host"`` (the host algorithms ride the
reliable CLIC/TCP transports).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ...protocols.headers import COLLECTIVE_OPS, ClicCollective, fragment_plan
from ...sim import Counters, Event
from ..cpu import PRIO_USER
from .frames import EtherType, Frame

__all__ = ["CollectiveEngine"]

#: PCI bytes of the DMA'd completion word (op id + status)
COMPLETION_BYTES = 8


class _CollState:
    """Per-(op, coll_id) combine/forward state on one NIC."""

    __slots__ = ("op", "coll_id", "root", "nbytes", "completion",
                 "local_posted", "child_frags", "up_sent", "down_frags",
                 "released", "contributions", "done")

    def __init__(self, op: str, coll_id: int, root: int, completion: Event):
        self.op = op
        self.coll_id = coll_id
        self.root = root
        self.nbytes = 0
        self.completion = completion
        self.local_posted = False
        #: fragments received per child vrank (a child's message is
        #: complete when its count reaches the analytic fragment count)
        self.child_frags: Dict[int, int] = {}
        self.up_sent = False
        self.down_frags = 0
        self.released = False
        #: ranks folded into this subtree so far (self counts on post)
        self.contributions = 0
        self.done = False


class CollectiveEngine:
    """Combine-and-forward firmware for one NIC."""

    def __init__(self, nic):
        self.nic = nic
        self.env = nic.env
        self.counters = Counters(registry=nic.metrics, prefix=f"{nic.name}.coll.")
        self.rank: Optional[int] = None
        self.size = 0
        self.mac_of = None
        self._state: Dict[Tuple[str, int], _CollState] = {}
        self._posts = 0

    def configure(self, rank: int, size: int, mac_of) -> None:
        """(Re)bind the engine to a world: rank, size, rank -> MAC map.

        Rebuilding a world on the same cluster resets post numbering and
        any stale state, so coll_ids stay aligned across ranks.
        """
        self.rank = rank
        self.size = size
        self.mac_of = mac_of
        self._state.clear()
        self._posts = 0

    # ------------------------------------------------------------------
    # binomial-tree geometry (virtual ranks, root rotated to 0)

    def _vrank(self, rank: int, root: int) -> int:
        return (rank - root) % self.size

    def _rank(self, vrank: int, root: int) -> int:
        return (vrank + root) % self.size

    @staticmethod
    def _parent(vrank: int) -> Optional[int]:
        if vrank == 0:
            return None
        return vrank - (vrank & -vrank)

    def _children(self, vrank: int) -> List[int]:
        out = []
        mask = 1
        while mask < self.size:
            if vrank & mask:
                break
            if vrank + mask < self.size:
                out.append(vrank + mask)
            mask <<= 1
        return out

    # ------------------------------------------------------------------
    # framing

    @property
    def _frag_max(self) -> int:
        return self.nic.params.effective_mtu() - ClicCollective.WIRE_BYTES

    def _frag_count(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 1
        return -(-nbytes // self._frag_max)

    def match(self, frame: Frame) -> bool:
        """True for frames this engine consumes (the rx-path hook)."""
        return isinstance(frame.payload, ClicCollective)

    # ------------------------------------------------------------------
    # host-side surface

    def post(self, proc, op: str, nbytes: int = 0, root: int = 0) -> Generator:
        """Post a collective from a user process; yields until complete.

        The doorbell is a user-mapped page write (VIA-style): CPU time
        plus one PIO transaction, **no syscall**.  The returned value
        matches the host algorithms' conventions (barrier -> None,
        bcast -> nbytes, allreduce -> contributions == P).
        """
        if self.rank is None:
            raise RuntimeError(f"{self.nic.name} collective engine not configured")
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {op!r}")
        coll_id = self._posts
        self._posts += 1
        self.counters.add("posts")
        yield from proc.cpu.execute(
            self.nic.params.collective_doorbell_ns, PRIO_USER,
            label="nic_coll_doorbell",
        )
        yield from self.nic.pci.pio(label=f"{self.nic.name}.coll_doorbell")
        state = self._state_for(op, coll_id, root)
        self.env.process(
            self._local_post(state, nbytes),
            name=f"{self.nic.name}.coll.post",
        )
        result = yield state.completion
        if op == "barrier":
            return None
        if op == "bcast":
            return state.nbytes
        return result  # allreduce: contributions

    # ------------------------------------------------------------------
    # firmware

    def _state_for(self, op: str, coll_id: int, root: int) -> _CollState:
        key = (op, coll_id)
        state = self._state.get(key)
        if state is None:
            state = _CollState(op, coll_id, root, self.env.event())
            self._state[key] = state
        return state

    def _local_post(self, state: _CollState, nbytes: int) -> Generator:
        """Firmware's view of the doorbell: fetch data, join the tree."""
        yield self.env.timeout(self.nic.params.collective_op_ns)
        vrank = self._vrank(self.rank, state.root)
        fetches = (state.op == "allreduce"
                   or (state.op == "bcast" and vrank == 0))
        if fetches:
            state.nbytes = max(state.nbytes, nbytes)
            yield from self.nic.pci.dma(
                nbytes, priority=2, label=f"{self.nic.name}.coll_fetch")
        state.local_posted = True
        state.contributions += 1
        if state.op == "bcast":
            if vrank == 0:
                yield from self._start_down(state)
            elif state.released:
                # Data fully arrived before the host posted: complete now.
                yield from self._complete(state)
        else:
            yield from self._try_up(state)

    def on_frame(self, frame: Frame) -> None:
        """Rx-path hook: consume one collective frame on-card."""
        self.env.process(
            self._handle(frame), name=f"{self.nic.name}.coll.rx")

    def _handle(self, frame: Frame) -> Generator:
        coll: ClicCollective = frame.payload
        # Per-frame firmware cost: descriptor fetch + combine/forward.
        yield self.env.timeout(self.nic.params.frame_processing_ns
                               + self.nic.params.collective_op_ns)
        state = self._state_for(coll.op, coll.coll_id, coll.root)
        state.nbytes = max(state.nbytes, coll.nbytes)
        if coll.phase == "up":
            self.counters.add("combined")
            src_vrank = self._vrank(coll.src_rank, coll.root)
            seen = state.child_frags.get(src_vrank, 0) + 1
            state.child_frags[src_vrank] = seen
            if seen == self._frag_count(coll.nbytes):
                state.contributions += coll.contributions
            yield from self._try_up(state)
        else:
            self.counters.add("forwarded")
            state.contributions = max(state.contributions, coll.contributions)
            # Cut-through: relay this fragment down before local DMA.
            vrank = self._vrank(self.rank, coll.root)
            for child in self._children(vrank):
                yield from self._send(state, self._rank(child, coll.root),
                                      "down", coll.frag_bytes,
                                      contributions=coll.contributions)
            state.down_frags += 1
            if state.down_frags == self._frag_count(state.nbytes):
                state.released = True
                if state.local_posted or state.op != "bcast":
                    yield from self._complete(state)

    def _try_up(self, state: _CollState) -> Generator:
        """Combine step: send up (or release) once the subtree is in."""
        if state.up_sent or not state.local_posted:
            return
        vrank = self._vrank(self.rank, state.root)
        frags = self._frag_count(state.nbytes)
        for child in self._children(vrank):
            if state.child_frags.get(child, 0) < frags:
                return
        state.up_sent = True
        parent = self._parent(vrank)
        if parent is None:
            yield from self._start_down(state)
            return
        yield from self._send_message(
            state, self._rank(parent, state.root), "up",
            contributions=state.contributions)

    def _start_down(self, state: _CollState) -> Generator:
        """Root: release/broadcast the result down the tree, then
        complete locally (barrier: everyone has arrived by now)."""
        if state.op != "bcast":
            state.contributions = self.size if self.size else 1
        for child in self._children(0):
            yield from self._send_message(
                state, self._rank(child, state.root), "down",
                contributions=state.contributions)
        state.released = True
        yield from self._complete(state)

    def _complete(self, state: _CollState) -> Generator:
        """Deliver the result to the host: payload DMA (data ops, except
        the bcast root which already holds it) plus the completion word."""
        if state.done:
            return
        state.done = True
        vrank = self._vrank(self.rank, state.root)
        delivers = (state.op == "allreduce"
                    or (state.op == "bcast" and vrank != 0))
        if delivers:
            yield from self.nic.pci.dma(
                state.nbytes, priority=2,
                label=f"{self.nic.name}.coll_deliver")
            self.counters.add("bytes_delivered", state.nbytes)
        yield from self.nic.pci.dma(
            COMPLETION_BYTES, priority=2,
            label=f"{self.nic.name}.coll_complete")
        self.counters.add("completions")
        del self._state[(state.op, state.coll_id)]
        state.completion.succeed(state.contributions)

    # ------------------------------------------------------------------
    # wire side

    def _send_message(self, state: _CollState, dst_rank: int, phase: str,
                      contributions: int) -> Generator:
        """Send a whole (possibly fragmented) hop of ``state.nbytes``."""
        for _offset, frag_bytes in fragment_plan(state.nbytes, self._frag_max):
            yield from self._send(state, dst_rank, phase, frag_bytes,
                                  contributions=contributions)

    def _send(self, state: _CollState, dst_rank: int, phase: str,
              frag_bytes: int, contributions: int = 1) -> Generator:
        coll = ClicCollective(
            op=state.op, phase=phase, coll_id=state.coll_id,
            root=state.root, src_rank=self.rank, dst_rank=dst_rank,
            nbytes=state.nbytes, frag_bytes=frag_bytes,
            contributions=contributions,
        )
        frame = Frame(
            src=self.nic.mac, dst=self.mac_of(dst_rank),
            ethertype=EtherType.CLIC,
            payload_bytes=ClicCollective.WIRE_BYTES + frag_bytes,
            payload=coll,
        )
        # On-card injection: straight into the tx FIFO — no host DMA,
        # no tx ring descriptor, no doorbell.
        yield self.nic._tx_fifo.put((frame, None))
        self.counters.add("tx_frames")
