"""Multi-switch fabrics: star, 2-level fat-tree, and linear chain.

The paper's testbed is two PCs behind one switch; scaling the simulated
cluster to hundreds of nodes needs a switched *fabric*.  This module
composes the existing store-and-forward :class:`~repro.hw.switch.Switch`
into three topologies:

* ``star`` — one switch, every node attached directly (the legacy
  layout; a ``topology=None`` cluster builds exactly this fabric, so
  all single-switch artifacts stay byte-identical);
* ``fat-tree`` — a 2-level tree: ``ceil(N / leaf_fan)`` leaf switches
  and ``uplink_fan`` spine switches, with one trunk from every leaf to
  every spine.  Cross-leaf unicast is spread over the spines by
  destination node (``dst_node % uplink_fan``) so each uplink's load is
  deterministic and individually accountable (:meth:`Fabric.uplink_stats`);
* ``chain`` — leaf switches in a line with one trunk between
  neighbours: the worst-case diameter, useful for stressing per-hop
  conservation accounting.

Routing is *static*: nodes register their MACs on attach, and
:meth:`Fabric.finalize` installs each MAC in every other switch's
forwarding table pointing at the correct trunk port (a closed cluster
needs no dynamic learning, and static tables keep runs deterministic).
Trunks are ordinary :class:`~repro.hw.link.Channel` pairs, so the
per-link frame-conservation invariant applies hop by hop; their names
carry a ``trunk.`` prefix (and never the ``.up``/``.down`` suffix of
node links) so the validate harness can tell edge links from trunks.

Broadcast stays loop-free by construction: in the fat-tree only the
uplink to spine 0 floods (the spanning tree through spine 0); a chain
is already a tree.  Trunk ports own synthetic MACs far above the node
MAC space purely to satisfy the switch's attach contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import LinkParams, Topology
from ..sim import Environment
from .link import Channel
from .nic.frames import MacAddress
from .switch import DEFAULT_FORWARD_NS, Switch, SwitchPort

__all__ = ["Fabric", "TRUNK_MAC_BASE"]

#: synthetic MACs for trunk ports — far above ``mac_for``'s
#: ``node_id * 16 + ch + 1`` space (node ids stay well under 2**16)
TRUNK_MAC_BASE = 0x0100_0000


class Fabric:
    """A topology of switches plus the trunks and routes between them.

    Build order mirrors :class:`~repro.cluster.Cluster`: the fabric
    creates its switches up front, the cluster attaches every NIC via
    :meth:`attach` (which records the MAC for routing), and
    :meth:`finalize` then wires the trunks and installs the static
    routes.  For the ``star`` (or single-leaf) case the fabric is
    exactly one switch and ``finalize`` is a no-op.
    """

    def __init__(
        self,
        env: Environment,
        link_params: LinkParams,
        topology: Optional[Topology],
        num_nodes: int,
        forward_ns: float = DEFAULT_FORWARD_NS,
        tracer=None,
        metrics=None,
        backpressure: str = "drop",
    ):
        self.env = env
        self.link_params = link_params
        self.topology = topology if topology is not None else Topology()
        self.num_nodes = num_nodes
        self.tracer = tracer
        kind = self.topology.kind
        if kind == "star":
            self.num_leaves = 1
        else:
            fan = self.topology.leaf_fan
            self.num_leaves = (num_nodes + fan - 1) // fan
        #: spine count (fat-tree with more than one leaf; else 0)
        self.num_spines = (
            self.topology.uplink_fan
            if kind == "fat-tree" and self.num_leaves > 1 else 0
        )
        self.switches: List[Switch] = []
        for index in range(self.num_leaves + self.num_spines):
            self.switches.append(Switch(
                env,
                link_params,
                forward_ns=forward_ns,
                tracer=tracer,
                metrics=metrics,
                backpressure=backpressure,
                name="switch" if index == 0 else f"switch{index}",
            ))
        #: trunk channels as ``(name, Channel)`` pairs, in wiring order —
        #: the cluster appends these to its link list so the per-link
        #: conservation invariant covers every inter-switch hop
        self.trunks: List[Tuple[str, Channel]] = []
        #: trunk egress ports keyed by trunk channel name (contention audit)
        self._trunk_ports: Dict[str, SwitchPort] = {}
        #: MACs attached so far, in attach order: (node_id, mac)
        self._node_macs: List[Tuple[int, MacAddress]] = []
        self._trunk_macs = 0
        #: leaf uplink ports: ``_uplinks[leaf][spine]`` (fat-tree only)
        self._uplinks: List[List[SwitchPort]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # layout queries

    @property
    def multi_switch(self) -> bool:
        """True when the fabric has more than one switch."""
        return len(self.switches) > 1

    @property
    def switch(self) -> Switch:
        """The first switch (the whole fabric in the single-switch case)."""
        return self.switches[0]

    def leaf_of(self, node_id: int) -> int:
        """Leaf-switch index hosting ``node_id``."""
        if self.num_leaves == 1:
            return 0
        return node_id // self.topology.leaf_fan

    def leaf_for(self, node_id: int) -> Switch:
        """The leaf switch hosting ``node_id``."""
        return self.switches[self.leaf_of(node_id)]

    def hops(self, src_node: int, dst_node: int) -> int:
        """Analytic switch count on the unicast path src -> dst."""
        src_leaf, dst_leaf = self.leaf_of(src_node), self.leaf_of(dst_node)
        if src_leaf == dst_leaf:
            return 1
        if self.topology.kind == "fat-tree":
            return 3  # leaf -> spine -> leaf
        return abs(dst_leaf - src_leaf) + 1  # chain

    def spine_for(self, dst_node: int) -> int:
        """Spine index carrying cross-leaf traffic *to* ``dst_node``."""
        return dst_node % self.num_spines if self.num_spines else 0

    # ------------------------------------------------------------------
    # wiring

    def attach(self, node_id: int, egress: Channel, mac: MacAddress) -> SwitchPort:
        """Attach a NIC's downlink channel to ``node_id``'s leaf switch."""
        if self._finalized:
            raise RuntimeError("fabric already finalized")
        port = self.leaf_for(node_id).attach(egress, mac)
        self._node_macs.append((node_id, mac))
        return port

    def _next_trunk_mac(self) -> MacAddress:
        self._trunk_macs += 1
        return MacAddress(TRUNK_MAC_BASE + self._trunk_macs)

    def _link_switches(self, a: Switch, b: Switch) -> Tuple[SwitchPort, SwitchPort]:
        """Wire a full-duplex trunk between ``a`` and ``b``.

        Returns ``(port on a toward b, port on b toward a)``.  A frame
        arriving at ``b`` over the trunk ingresses *from* b's port back
        toward ``a``, so the hairpin check (and broadcast replication)
        treats the trunk exactly like any other port.
        """
        a2b = Channel(self.env, self.link_params,
                      f"trunk.{a.name}->{b.name}", tracer=self.tracer)
        b2a = Channel(self.env, self.link_params,
                      f"trunk.{b.name}->{a.name}", tracer=self.tracer)
        port_ab = a.attach(a2b, self._next_trunk_mac())
        port_ba = b.attach(b2a, self._next_trunk_mac())
        a2b.connect(b.ingress(port_ba))
        b2a.connect(a.ingress(port_ab))
        self.trunks.append((a2b.name, a2b))
        self.trunks.append((b2a.name, b2a))
        self._trunk_ports[a2b.name] = port_ab
        self._trunk_ports[b2a.name] = port_ba
        return port_ab, port_ba

    def finalize(self) -> None:
        """Wire trunks and install static routes for all attached MACs."""
        if self._finalized:
            raise RuntimeError("fabric already finalized")
        self._finalized = True
        if not self.multi_switch:
            return
        if self.topology.kind == "fat-tree":
            self._finalize_fat_tree()
        else:
            self._finalize_chain()

    def _finalize_fat_tree(self) -> None:
        leaves = self.switches[:self.num_leaves]
        spines = self.switches[self.num_leaves:]
        # spine_down[s][l]: port on spine s toward leaf l
        spine_down: List[List[SwitchPort]] = [[] for _ in spines]
        self._uplinks = [[] for _ in leaves]
        for leaf_idx, leaf in enumerate(leaves):
            for spine_idx, spine in enumerate(spines):
                up, down = self._link_switches(leaf, spine)
                # Spanning tree through spine 0: redundant uplinks do
                # not flood, so a broadcast reaches each node once.
                up.flood = spine_idx == 0
                self._uplinks[leaf_idx].append(up)
                spine_down[spine_idx].append(down)
        for node_id, mac in self._node_macs:
            home = self.leaf_of(node_id)
            spine_idx = self.spine_for(node_id)
            for leaf_idx, leaf in enumerate(leaves):
                if leaf_idx != home:
                    leaf.add_mac(self._uplinks[leaf_idx][spine_idx], mac)
            for s, spine in enumerate(spines):
                spine.add_mac(spine_down[s][home], mac)

    def _finalize_chain(self) -> None:
        leaves = self.switches
        rightward: List[Optional[SwitchPort]] = [None] * len(leaves)
        leftward: List[Optional[SwitchPort]] = [None] * len(leaves)
        for k in range(len(leaves) - 1):
            right, left = self._link_switches(leaves[k], leaves[k + 1])
            rightward[k] = right      # on switch k, toward k+1
            leftward[k + 1] = left    # on switch k+1, toward k
        for node_id, mac in self._node_macs:
            home = self.leaf_of(node_id)
            for k in range(len(leaves)):
                if k < home:
                    leaves[k].add_mac(rightward[k], mac)
                elif k > home:
                    leaves[k].add_mac(leftward[k], mac)

    # ------------------------------------------------------------------
    # accounting

    def uplink_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-trunk contention accounting.

        Maps trunk channel name to the frames/bytes carried and the
        egress queue's high-water mark — the observable that shows how
        evenly the ``dst % uplink_fan`` spreading loads the spines.
        """
        stats: Dict[str, Dict[str, float]] = {}
        for name, channel in self.trunks:
            port = self._trunk_ports[name]
            stats[name] = {
                "frames": channel.counters["frames"],
                "bytes": channel.counters["bytes"],
                "max_depth": float(port.max_depth),
            }
        return stats

    def counter_sum(self, counter: str) -> float:
        """Sum one switch counter over every switch in the fabric."""
        return sum(s.counters[counter] for s in self.switches)

    @property
    def max_queue_depth(self) -> int:
        """Highest egress-queue occupancy seen on any switch."""
        return max(s.max_queue_depth for s in self.switches)
