"""PCI bus model.

Section 2 of the paper singles out the 33 MHz / 32-bit PCI bus as the
emerging bottleneck of the gigabit-era communication path: theoretical
133 MB/s, real DMA efficiency well below that, and "delays of
microseconds" per transaction (PCI 2.1 arbitration).  Every byte that
moves between host memory and the NIC crosses this bus exactly once per
copy — which is why copy-count is the paper's central design axis.

The bus is a single-owner resource; a DMA transfer holds it for
``transaction_setup + bytes / effective_bw``.  Host programmed I/O
(doorbell writes, polling reads across the bus, as in the VIA
discussion of Section 3.2(b)) are modeled as small transactions too.
"""

from __future__ import annotations

from typing import Generator

from ..config import PciParams
from ..sim import BusyTracker, Counters, Environment, PriorityResource

__all__ = ["PciBus"]


class PciBus:
    """A 33 MHz / 32-bit PCI bus shared by all devices on a node."""

    def __init__(self, env: Environment, params: PciParams, name: str = "pci"):
        self.env = env
        self.params = params
        self.name = name
        self._bus = PriorityResource(env, capacity=1)
        self.busy = BusyTracker()
        self.counters = Counters()

    def transfer_time(self, nbytes: int, transactions: int = 1) -> float:
        """Bus-held time for ``transactions`` DMA setups moving ``nbytes``.

        A flow-mode train burst charges ``transactions`` descriptor
        setups plus the batch bytes in one bus hold — the exact sum of
        the per-frame transactions it replaces.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if transactions < 1:
            raise ValueError("transactions must be >= 1")
        return (
            self.params.transaction_setup_ns * transactions
            + nbytes / self.params.effective_bw_Bps * 1e9
        )

    def dma(self, nbytes: int, priority: int = 5, label: str = "dma",
            transactions: int = 1) -> Generator:
        """Perform a bus-master DMA burst of ``nbytes``.

        ``transactions`` counts the descriptor setups charged (and
        tallied) for the burst: 1 for an ordinary frame, ``k`` when a
        flow-mode train moves ``k`` frames' bytes in one bus hold.
        """
        duration = self.transfer_time(nbytes, transactions)
        with self._bus.request(priority=priority) as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                yield self.env.timeout(duration)
            finally:
                self.busy.release(self.env.now)
        self.counters.add(f"{label}_transactions", transactions)
        self.counters.add(f"{label}_bytes", nbytes)

    def pio(self, priority: int = 0, label: str = "pio") -> Generator:
        """One programmed-I/O access (doorbell write / status read)."""
        with self._bus.request(priority=priority) as grant:
            yield grant
            self.busy.acquire(self.env.now)
            try:
                yield self.env.timeout(self.params.transaction_setup_ns)
            finally:
                self.busy.release(self.env.now)
        self.counters.add(f"{label}_accesses")

    def utilization(self) -> float:
        """Busy fraction of the bus since time zero."""
        now = self.env.now
        if now <= 0:
            return 0.0
        return self.busy.busy_time(now) / now
