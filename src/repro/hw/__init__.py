"""Hardware substrate: CPU, memory, PCI, NIC, link, switch."""

from .cpu import PRIO_IRQ, PRIO_KERNEL, PRIO_SOFTIRQ, PRIO_USER, Cpu
from .fabric import Fabric
from .link import Channel, Link
from .memory import MemoryBus
from .pci import PciBus
from .switch import Switch, SwitchPort

__all__ = [
    "Channel",
    "Cpu",
    "Fabric",
    "Link",
    "MemoryBus",
    "PciBus",
    "PRIO_IRQ",
    "PRIO_KERNEL",
    "PRIO_SOFTIRQ",
    "PRIO_USER",
    "Switch",
    "SwitchPort",
]
