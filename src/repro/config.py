"""Central configuration: every cost and capability in one place.

The simulator charges *time* for mechanisms (a syscall, an interrupt, a
memcpy, a PCI transaction).  This module collects all of those constants
into dataclasses, so:

* experiments vary exactly the knobs the paper varies (MTU, 0-copy,
  coalescing, protocol) and nothing else;
* the calibration against the paper's own microbenchmarks is documented
  in one place (:func:`granada2003`).

Calibration sources (all from the paper text):

====================================  ==========================================
paper statement                        parameter(s)
====================================  ==========================================
syscall enter+leave ~= 0.65 us         ``kernel.syscall_enter_ns + syscall_exit_ns``
1.5 GHz PC                             ``cpu.freq_hz``
33 MHz / 32-bit PCI                    ``pci.clock_hz, width_bytes``
PCI 2.1 delays "of microseconds"       ``pci.transaction_setup_ns``
interrupt path ~20 us (Fig 7a)         irq entry + driver rx stage for 1400 B
driver rx stage 15 us @1400 B (Fig7a)  ``driver.rx_per_frame_ns`` + PCI transfer
BH -> CLIC_MODULE stage 2 us (Fig 7a)  ``kernel.bottom_half_dispatch_ns`` +
                                       memcpy of 1400 B at ``memory.copy_bw``
sender ~0.7 + 4 us (Fig 7a)            syscall + ``clic.module_tx_ns`` +
                                       ``driver.tx_call_ns``
direct-call variant ~5 us (Fig 7b)     ``kernel.direct_rx_dispatch`` path
====================================  ==========================================

The *shape* conclusions (CLIC > 2x TCP, half-bandwidth points, jumbo vs
0-copy ordering) are robust to modest changes in these values; the
calibration tests in ``tests/experiments`` check the shapes, not the
absolute microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "CpuParams",
    "MemoryParams",
    "PciParams",
    "LinkParams",
    "NicParams",
    "DriverParams",
    "KernelParams",
    "ClicParams",
    "TcpIpParams",
    "GammaParams",
    "ViaParams",
    "MpiParams",
    "PvmParams",
    "NodeConfig",
    "SimParams",
    "Topology",
    "ClusterConfig",
    "granada2003",
    "MTU_STANDARD",
    "MTU_JUMBO",
]

MTU_STANDARD = 1500
MTU_JUMBO = 9000


@dataclass(frozen=True)
class CpuParams:
    """Host processor."""

    freq_hz: float = 1.5e9
    #: cost of a context switch between user processes
    context_switch_ns: float = 2_000.0
    #: cost of one scheduler pass (run-queue scan + pick)
    scheduler_pass_ns: float = 900.0


@dataclass(frozen=True)
class MemoryParams:
    """Main-memory subsystem as seen by CPU copies."""

    #: sustained CPU memcpy bandwidth, bytes/s.  PC133-era SDRAM moves
    #: ~1 GB/s raw, but a copy transits it ~3x (read src, write-allocate,
    #: write dst), leaving ~300 MB/s of effective memcpy throughput —
    #: this value makes the receive-side copy of a 9000 B frame cost
    #: ~30 us, consistent with the paper's Figure 7 stage budget.
    copy_bw_Bps: float = 300e6
    #: fixed cost per copy call (function call, cache warmup)
    copy_setup_ns: float = 250.0


@dataclass(frozen=True)
class PciParams:
    """The I/O bus — the paper's emerging bottleneck."""

    clock_hz: float = 33e6
    width_bytes: int = 4
    #: fraction of theoretical bandwidth achieved by burst DMA
    dma_efficiency: float = 0.82
    #: per-DMA-transaction arbitration + address-phase cost
    transaction_setup_ns: float = 1_000.0

    @property
    def effective_bw_Bps(self) -> float:
        """Sustained DMA bandwidth over the bus."""
        return self.clock_hz * self.width_bytes * self.dma_efficiency


@dataclass(frozen=True)
class LinkParams:
    """Gigabit Ethernet wire parameters."""

    rate_bps: float = 1e9
    preamble_bytes: int = 8  # preamble + SFD
    ifg_bytes: int = 12  # inter-frame gap
    crc_bytes: int = 4
    mac_header_bytes: int = 14  # dst(6) + src(6) + ethertype(2)
    min_frame_bytes: int = 64  # incl. MAC header + CRC
    #: one-way propagation + switch port latency, ns
    propagation_ns: float = 500.0


@dataclass(frozen=True)
class NicParams:
    """Network interface card capabilities and costs."""

    mtu: int = MTU_STANDARD
    rx_ring_slots: int = 256
    tx_ring_slots: int = 256
    #: NIC firmware per-frame processing (descriptor fetch, DMA setup)
    frame_processing_ns: float = 600.0
    #: on-card transmit FIFO depth (frames): lets host-side DMA overlap
    #: wire serialization, as the store-and-forward NIC buffer does
    tx_fifo_frames: int = 32
    #: scatter/gather DMA from user pages (enables CLIC 0-copy tx)
    supports_sg: bool = True
    supports_jumbo: bool = True
    #: on-NIC fragmentation/reassembly offload (paper: future work)
    supports_fragmentation: bool = False
    #: interrupt coalescing: raise IRQ after this many frames...
    coalesce_frames: int = 8
    #: ...or this much time after the first unannounced frame (drivers of
    #: the era default rx-usecs ~= 10; §2 notes the interval is tunable)
    coalesce_timeout_ns: float = 10_000.0
    #: set False to interrupt on every frame (ABL-COAL)
    coalescing_enabled: bool = True
    #: NIC-resident collective engine: firmware cost to combine/forward
    #: one collective frame on-card (Quadrics/Myrinet-style processors
    #: ran the whole barrier hop in a microsecond or two)
    collective_op_ns: float = 900.0
    #: host cost to post a collective to the NIC through a user-mapped
    #: doorbell page (no syscall — the point of the NIC engine)
    collective_doorbell_ns: float = 800.0

    def effective_mtu(self) -> int:
        """The MTU actually usable (jumbo requires NIC support)."""
        if self.mtu > MTU_STANDARD and not self.supports_jumbo:
            return MTU_STANDARD
        return self.mtu


@dataclass(frozen=True)
class DriverParams:
    """Unmodified vendor NIC driver (CLIC's portability constraint)."""

    #: tx entry: ring descriptor setup, doorbell write
    tx_call_ns: float = 1_300.0
    #: rx per frame inside the IRQ handler: sk_buff alloc + ring refill
    rx_per_frame_ns: float = 2_200.0
    #: fixed IRQ handler prologue/epilogue (beyond kernel irq entry)
    irq_overhead_ns: float = 1_500.0
    #: frames serviced per interrupt before the handler yields — bounding
    #: IRQ work prevents receive livelock (bottom halves must run for the
    #: protocol, and its acks, to make progress)
    rx_budget_per_irq: int = 16


@dataclass(frozen=True)
class KernelParams:
    """Linux 2.4-like kernel mechanics."""

    #: user->kernel mode switch (INT 80h); paper: enter+leave ~ 0.65 us
    syscall_enter_ns: float = 350.0
    syscall_exit_ns: float = 300.0
    #: hardware interrupt entry (vector dispatch, register save)
    irq_entry_ns: float = 1_800.0
    irq_exit_ns: float = 700.0
    #: scheduling a bottom half and dispatching it later
    bottom_half_dispatch_ns: float = 1_200.0
    #: GAMMA-style lightweight trap (no scheduler on return)
    lightweight_syscall_ns: float = 200.0
    #: run the scheduler when returning from a syscall (CLIC does; GAMMA not)
    scheduler_on_syscall_return: bool = True
    #: Figure 8(b) improvement: driver calls the protocol module directly
    #: from the IRQ handler instead of via bottom halves.
    direct_rx_dispatch: bool = False


@dataclass(frozen=True)
class ClicParams:
    """The CLIC protocol proper."""

    header_bytes: int = 12
    #: CLIC_MODULE tx work: compose headers, update SK_BUFF, bookkeeping
    module_tx_ns: float = 1_600.0
    #: CLIC_MODULE rx work per packet: type decode, queue lookup
    module_rx_ns: float = 900.0
    #: transmit directly from user memory via scatter/gather (path 2 of
    #: Figure 1); False falls back to staging through system memory
    #: (1-copy, the Fast Ethernet-era path)
    zero_copy: bool = True
    #: sliding window (frames in flight before blocking for acks); kept
    #: below the rx ring size so a fast sender cannot overrun a receiver
    window_frames: int = 64
    #: acknowledge every k-th frame (piggyback-free explicit acks)
    ack_every: int = 16
    #: delayed-ack hold-off for stream tails / lone packets
    ack_delay_ns: float = 200_000.0
    #: retransmission timer.  Must exceed the worst-case ack turnaround:
    #: under saturation the receiver services a full sender window in IRQ
    #: context before bottom halves (and hence acks) run — era kernels
    #: used >= 200 ms RTOs for the same reason.
    retransmit_timeout_ns: float = 50_000_000.0
    max_retries: int = 10
    #: adapt the RTO from measured RTTs (Jacobson/Karels SRTT/RTTVAR with
    #: Karn's rule and exponential backoff); ``retransmit_timeout_ns``
    #: becomes the *initial* timeout only.
    adaptive_rto: bool = True
    #: floor for the computed RTO — still needs to cover the saturation
    #: ack-turnaround (see retransmit_timeout_ns note above)
    min_rto_ns: float = 5_000_000.0
    #: backoff/estimate ceiling
    max_rto_ns: float = 3_000_000_000.0
    #: duplicate cumulative acks before fast retransmit (0 = off).  An
    #: isolated frame loss is then repaired in ~1 RTT instead of a full
    #: RTO stall; only window-wiping fault bursts still pay the timeout.
    dupack_threshold: int = 3
    #: bounded out-of-order reassembly stash at the receiver (packets
    #: held while waiting for an in-order gap to fill); beyond this the
    #: overrun policy is *drop-newest* (counted as
    #: ``stash_overflow_drops``) so adversarial reordering can never
    #: grow receiver memory without bound
    reorder_stash_frames: int = 64


@dataclass(frozen=True)
class TcpIpParams:
    """The TCP/IP baseline (Linux 2.4-era stack costs)."""

    ip_header_bytes: int = 20
    tcp_header_bytes: int = 20
    #: per-segment tx stack traversal (socket -> TCP -> IP -> route cache
    #: -> dev queue, skb management) — Linux 2.4-era costs
    per_segment_tx_ns: float = 20_000.0
    #: per-segment rx stack traversal (netif_rx -> IP -> TCP demux ->
    #: socket queue + ack bookkeeping); dominated by per-packet work the
    #: paper's Section 2 warns about
    per_segment_rx_ns: float = 50_000.0
    #: software checksum cost per byte, each side (~330 MB/s: a separate
    #: byte-touching pass on uncached data)
    checksum_ns_per_byte: float = 3.0
    #: socket-layer copy between user and kernel buffers (both sides)
    copies_on_tx: int = 1
    copies_on_rx: int = 1
    #: congestion/flow window in segments (large: LAN, no loss)
    window_segments: int = 64
    ack_every: int = 2  # delayed acks
    ack_delay_ns: float = 200_000.0
    #: Linux's minimum RTO of the era (200 ms)
    retransmit_timeout_ns: float = 200_000_000.0
    max_retries: int = 10
    #: adaptive RTO (Jacobson/Karels), as the real stack does
    adaptive_rto: bool = True
    #: Linux clamps the computed RTO to [200 ms, 120 s]
    min_rto_ns: float = 200_000_000.0
    max_rto_ns: float = 120_000_000_000.0
    #: per-connection socket bookkeeping per send/recv call
    socket_call_ns: float = 1_500.0


@dataclass(frozen=True)
class GammaParams:
    """GAMMA-style active-ports comparator (modified driver, lightweight traps)."""

    header_bytes: int = 16
    #: send path cost: lightweight trap + minimal port handling
    port_tx_ns: float = 900.0
    #: rx handled entirely in the (modified) driver IRQ, direct to user
    port_rx_ns: float = 700.0
    zero_copy: bool = True


@dataclass(frozen=True)
class ViaParams:
    """VIA-style user-level comparator (polling, no OS on data path)."""

    header_bytes: int = 16
    #: post a descriptor + doorbell write (uncached PCI write)
    doorbell_ns: float = 800.0
    descriptor_ns: float = 500.0
    #: polling interval of the receiving process
    poll_interval_ns: float = 1_000.0
    #: cost of one poll probe (PCI read is expensive; paper 3.2(b))
    poll_probe_ns: float = 900.0


@dataclass(frozen=True)
class MpiParams:
    """Thin MPI layer costs (LAM/MPICH-era)."""

    #: library overhead per point-to-point call (matching, request mgmt)
    per_call_ns: float = 2_500.0
    #: envelope bytes added to each message
    envelope_bytes: int = 24
    #: eager/rendezvous switch-over
    rendezvous_threshold: int = 128 * 1024


@dataclass(frozen=True)
class PvmParams:
    """PVM 3-era layer: pack/unpack staging plus heavier per-call cost."""

    per_call_ns: float = 6_000.0
    envelope_bytes: int = 40
    #: pvm_pack copies the payload into a send buffer (extra memcpy)
    pack_copy: bool = True
    #: fraction of messages routed via the pvmd daemon (extra hop cost);
    #: modeled as added per-message latency
    daemon_detour_ns: float = 25_000.0


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to build one cluster node."""

    cpu: CpuParams = field(default_factory=CpuParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    pci: PciParams = field(default_factory=PciParams)
    nic: NicParams = field(default_factory=NicParams)
    driver: DriverParams = field(default_factory=DriverParams)
    kernel: KernelParams = field(default_factory=KernelParams)
    clic: ClicParams = field(default_factory=ClicParams)
    tcp: TcpIpParams = field(default_factory=TcpIpParams)
    gamma: GammaParams = field(default_factory=GammaParams)
    via: ViaParams = field(default_factory=ViaParams)
    #: number of NICs (channel bonding when > 1)
    nic_count: int = 1

    def with_mtu(self, mtu: int) -> "NodeConfig":
        """Copy of this config with the NIC MTU replaced."""
        return replace(self, nic=replace(self.nic, mtu=mtu))

    def with_zero_copy(self, zero_copy: bool) -> "NodeConfig":
        """Copy with CLIC's 0-copy transmit toggled."""
        return replace(self, clic=replace(self.clic, zero_copy=zero_copy))

    def with_coalescing(self, enabled: bool) -> "NodeConfig":
        """Copy with NIC interrupt coalescing toggled."""
        return replace(self, nic=replace(self.nic, coalescing_enabled=enabled))

    def with_direct_rx(self, enabled: bool) -> "NodeConfig":
        """Copy with the Figure 8(b) direct dispatch toggled."""
        return replace(self, kernel=replace(self.kernel, direct_rx_dispatch=enabled))

    def with_nic_count(self, n: int) -> "NodeConfig":
        """Copy with ``n`` NICs (channel bonding when > 1)."""
        return replace(self, nic_count=n)

    def with_fragmentation_offload(self, enabled: bool) -> "NodeConfig":
        """Copy with on-NIC fragmentation toggled."""
        return replace(self, nic=replace(self.nic, supports_fragmentation=enabled))


@dataclass(frozen=True)
class SimParams:
    """Simulator-engine knobs (how the run is computed, not what it models).

    ``flow_mode`` selects the hybrid flow/packet engine
    (:mod:`repro.sim.flowmode`): ``"off"`` simulates every frame
    discretely at every hop — the exactness reference, bit-identical to
    historical artifacts — while ``"auto"`` lets steady-state bulk
    windows advance as analytically batched frame *trains* (per-hop
    serialization, PCI setups, coalescing cadence and counters computed
    closed-form over the batch).  Any protocol-relevant boundary —
    active fault window, switch contention, reorder stash occupancy,
    journey tracing — forces exact per-packet simulation for the
    affected flow, with seamless re-entry.
    """

    #: ``"off"`` (exact, the reference) | ``"auto"`` (hybrid fast path)
    flow_mode: str = "off"
    #: smallest batch worth the batching bookkeeping; below this the
    #: per-packet path is used
    flow_min_train: int = 4
    #: largest batch advanced as one analytic step (kept at the driver's
    #: per-IRQ rx budget so a train is consumed by a single interrupt)
    flow_max_train: int = 16
    #: lookahead used to prove a train's transit quiet: no scheduled
    #: fault/blackout/congestion window may intersect
    #: ``[now, now + horizon)`` for the fast path to engage
    flow_horizon_ns: float = 10_000_000.0


@dataclass(frozen=True)
class Topology:
    """Fabric topology spec (pure data — built by :mod:`repro.hw.fabric`).

    * ``"star"`` — every node on one switch (the legacy layout; a
      ``topology=None`` cluster builds the identical fabric).
    * ``"fat-tree"`` — a 2-level tree: ``ceil(N / leaf_fan)`` leaf
      switches, each with ``uplink_fan`` trunk ports, one per spine
      switch.  Cross-leaf traffic is spread over the spines by
      destination node (``dst % uplink_fan``) so per-uplink contention
      is deterministic and accountable.
    * ``"chain"`` — leaf switches in a line with one trunk between
      neighbours (the worst-case diameter layout).
    """

    kind: str = "star"
    #: nodes per leaf switch (fat-tree and chain)
    leaf_fan: int = 4
    #: trunk ports per leaf == number of spine switches (fat-tree)
    uplink_fan: int = 1

    KINDS = ("star", "fat-tree", "chain")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown topology kind {self.kind!r}")
        if self.leaf_fan < 1:
            raise ValueError(f"leaf_fan must be >= 1, got {self.leaf_fan}")
        if self.uplink_fan < 1:
            raise ValueError(f"uplink_fan must be >= 1, got {self.uplink_fan}")


@dataclass(frozen=True)
class ClusterConfig:
    """A cluster: homogeneous nodes behind one switch."""

    node: NodeConfig = field(default_factory=NodeConfig)
    num_nodes: int = 2
    link: LinkParams = field(default_factory=LinkParams)
    mpi: MpiParams = field(default_factory=MpiParams)
    pvm: PvmParams = field(default_factory=PvmParams)
    seed: int = 2003
    trace: bool = False
    #: attach an event-loop profiler to the Environment (repro.obs.profile)
    profile: bool = False
    #: switch egress-exhaustion policy: ``"drop"`` (tail-drop, counted)
    #: or ``"pause"`` (802.3x-style lossless — the forwarding engine
    #: stalls until the egress queue drains; see repro.hw.switch)
    switch_backpressure: str = "drop"
    #: simulator-engine knobs (flow/packet hybrid fast path)
    sim: SimParams = field(default_factory=SimParams)
    #: fabric layout; ``None`` builds the legacy single-switch star
    topology: Optional[Topology] = None

    def with_node(self, node: NodeConfig) -> "ClusterConfig":
        """Copy of this cluster config with the node config replaced."""
        return replace(self, node=node)

    def with_flow_mode(self, mode: str) -> "ClusterConfig":
        """Copy with the hybrid-engine mode replaced ("off" | "auto")."""
        return replace(self, sim=replace(self.sim, flow_mode=mode))

    def with_topology(self, topology: Optional[Topology]) -> "ClusterConfig":
        """Copy with the fabric topology replaced (None = single switch)."""
        return replace(self, topology=topology)


def pci_66mhz_64bit() -> PciParams:
    """A server-class 66 MHz / 64-bit PCI bus (~430 MB/s effective).

    Used by the channel-bonding ablation: with 33 MHz PCI the I/O bus and
    the CPU-captive receive DMA cap a single node below one NIC's wire
    rate, so a second NIC cannot help; on a 66/64 bus the wire becomes
    the bottleneck and bonding pays off — which is the configuration
    where the paper's §5 bonding feature makes sense.
    """
    return PciParams(clock_hz=66e6, width_bytes=8, dma_efficiency=0.82,
                     transaction_setup_ns=600.0)


def fastethernet2001(num_nodes: int = 2, trace: bool = False, seed: int = 2001) -> ClusterConfig:
    """The *previous* CLIC testbed: Fast Ethernet, first-generation CLIC.

    100 Mb/s links, no jumbo frames, no interrupt coalescing, and the
    1-copy transmit path (§3.1: the Fast Ethernet CLIC staged data into
    a system-memory SK_BUFF before the driver copied it out) — the
    configuration whose measurements motivated this paper's Section 2:
    at 100 Mb/s the *wire* is the bottleneck and the host loafs; at
    1 Gb/s the same software drowns the host.  Used by the FE-2001
    baseline experiment.
    """
    link = LinkParams(rate_bps=100e6)
    nic = NicParams(
        mtu=MTU_STANDARD,
        supports_jumbo=False,
        supports_sg=False,  # FE-era NICs: no scatter/gather from user pages
        coalescing_enabled=False,
    )
    node = NodeConfig(nic=nic).with_zero_copy(False)
    return ClusterConfig(node=node, num_nodes=num_nodes, link=link, trace=trace, seed=seed)


def granada2003(
    mtu: int = MTU_JUMBO,
    zero_copy: bool = True,
    num_nodes: int = 2,
    trace: bool = False,
    seed: int = 2003,
    profile: bool = False,
) -> ClusterConfig:
    """The calibrated testbed of the paper.

    Two PCs (1.5 GHz, 33 MHz/32-bit PCI) with SMC9462TX/3C996-T-class
    Gigabit Ethernet NICs behind a store-and-forward switch; Linux 2.4
    kernel mechanics.  Defaults are the paper's best CLIC configuration
    (jumbo frames, 0-copy, coalesced interrupts).
    """
    node = NodeConfig().with_mtu(mtu).with_zero_copy(zero_copy)
    return ClusterConfig(node=node, num_nodes=num_nodes, trace=trace, seed=seed,
                         profile=profile)
