"""Ping-pong and streaming measurement workloads.

The paper's bandwidth-vs-size curves (Figures 4–6) are NetPIPE-style
**ping-pong** measurements: node A sends an n-byte message, node B
echoes it back, and bandwidth(n) = n / (RTT/2).  This is why sender-side
critical-path costs (like the 1-copy staging) show up in the curves even
though a pipelined stream would hide them — there is no cross-message
pipelining in a ping-pong.

Latency (the "36 microseconds" headline) is the same measurement at
n = 0.  A unidirectional **stream** workload is also provided for the
utilization/interrupt-rate experiments (Section 2's analysis).

Every workload returns a plain dict of numbers; transports are duck-
typed adapters (CLIC endpoint / TCP socket / GAMMA port / VIA interface
/ MPI communicator) exposing generator ``send``/``recv``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..units import bandwidth_mbps

__all__ = ["pingpong", "stream", "PingPongResult", "StreamResult"]


@dataclass
class PingPongResult:
    """Outcome of one ping-pong measurement."""

    nbytes: int
    repeats: int
    rtt_ns: float  # average round-trip time

    @property
    def one_way_ns(self) -> float:
        return self.rtt_ns / 2

    @property
    def bandwidth_mbps(self) -> float:
        return bandwidth_mbps(self.nbytes, self.one_way_ns)

    def as_dict(self) -> Dict[str, float]:
        """The measurement as a plain dict."""
        return {
            "nbytes": self.nbytes,
            "rtt_us": self.rtt_ns / 1000,
            "one_way_us": self.one_way_ns / 1000,
            "mbps": self.bandwidth_mbps,
        }


@dataclass
class StreamResult:
    """Outcome of one unidirectional stream measurement."""

    nbytes_total: int
    elapsed_ns: float
    messages: int

    @property
    def bandwidth_mbps(self) -> float:
        return bandwidth_mbps(self.nbytes_total, self.elapsed_ns)


def pingpong(cluster, setup, nbytes: int, repeats: int = 3, warmup: int = 1) -> PingPongResult:
    """Run a ping-pong between two transport endpoints.

    ``setup(proc_a, proc_b)`` builds the endpoint pair (see
    :mod:`repro.workloads.adapters`); each endpoint provides generator
    methods ``send(nbytes)`` (to the peer) and ``recv(nbytes)``
    (returning once an ``nbytes`` message sits in user memory).
    """
    node_a, node_b = cluster.nodes[0], cluster.nodes[1]
    proc_a, proc_b = node_a.spawn("ping"), node_b.spawn("pong")
    ep_a, ep_b = setup(proc_a, proc_b)
    result: Dict[str, float] = {}

    def ping(proc) -> Generator:
        env = proc.env
        for _ in range(warmup):
            yield from ep_a.send(nbytes)
            yield from ep_a.recv(nbytes)
        t0 = env.now
        for _ in range(repeats):
            yield from ep_a.send(nbytes)
            yield from ep_a.recv(nbytes)
        result["rtt"] = (env.now - t0) / repeats

    def pong(proc) -> Generator:
        for _ in range(warmup + repeats):
            yield from ep_b.recv(nbytes)
            yield from ep_b.send(nbytes)

    done_a = proc_a.run(ping)
    proc_b.run(pong)
    cluster.env.run(done_a)
    if "rtt" not in result:
        raise RuntimeError("ping-pong did not complete")
    return PingPongResult(nbytes=nbytes, repeats=repeats, rtt_ns=result["rtt"])


def stream(cluster, setup, nbytes: int, messages: int = 1) -> StreamResult:
    """Unidirectional stream: send ``messages`` x ``nbytes`` and time
    until the receiver holds the last byte."""
    node_a, node_b = cluster.nodes[0], cluster.nodes[1]
    proc_a, proc_b = node_a.spawn("tx"), node_b.spawn("rx")
    ep_a, ep_b = setup(proc_a, proc_b)
    result: Dict[str, float] = {}

    def tx(proc) -> Generator:
        for _ in range(messages):
            yield from ep_a.send(nbytes)

    def rx(proc) -> Generator:
        for _ in range(messages):
            yield from ep_b.recv(nbytes)
        result["done"] = proc.env.now

    proc_a.run(tx)
    done_b = proc_b.run(rx)
    cluster.env.run(done_b)
    return StreamResult(
        nbytes_total=nbytes * messages,
        elapsed_ns=result["done"],
        messages=messages,
    )
