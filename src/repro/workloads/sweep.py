"""Message-size sweeps: the x-axis of Figures 4, 5 and 6.

The paper plots bandwidth against message size from 10^1 to 10^7 bytes
on a log axis.  :func:`netpipe_sizes` generates that grid;
:func:`bandwidth_sweep` runs a fresh cluster per point (fresh state, no
warm caches carrying over — and each point's simulation is independent
and reproducible).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..cluster import Cluster
from ..config import ClusterConfig
from .pingpong import PingPongResult, pingpong

__all__ = ["netpipe_sizes", "bandwidth_sweep", "SweepSeries"]


def netpipe_sizes(
    min_exp: int = 1,
    max_exp: int = 7,
    points_per_decade: int = 3,
) -> List[int]:
    """Log-spaced message sizes, ``10^min_exp .. 10^max_exp`` bytes."""
    if min_exp > max_exp:
        raise ValueError("min_exp must be <= max_exp")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    sizes: List[int] = []
    for exp in range(min_exp, max_exp):
        base = 10**exp
        for i in range(points_per_decade):
            size = int(round(base * 10 ** (i / points_per_decade)))
            if not sizes or size > sizes[-1]:
                sizes.append(size)
    sizes.append(10**max_exp)
    return sizes


class SweepSeries:
    """One labeled bandwidth-vs-size curve."""

    def __init__(self, label: str):
        self.label = label
        self.points: List[PingPongResult] = []

    @property
    def sizes(self) -> List[int]:
        return [p.nbytes for p in self.points]

    @property
    def mbps(self) -> List[float]:
        return [p.bandwidth_mbps for p in self.points]

    def at(self, nbytes: int) -> PingPongResult:
        """The measured point for an exact size (KeyError if absent)."""
        for p in self.points:
            if p.nbytes == nbytes:
                return p
        raise KeyError(f"no point at {nbytes} B in {self.label}")

    def asymptote(self) -> float:
        """Bandwidth at the largest measured size."""
        return self.points[-1].bandwidth_mbps

    def half_bandwidth_size(self) -> Optional[int]:
        """Smallest measured size reaching half the asymptotic bandwidth
        (the paper's 4 KB / 16 KB comparison)."""
        half = self.asymptote() / 2
        for p in self.points:
            if p.bandwidth_mbps >= half:
                return p.nbytes
        return None

    def as_dict(self) -> Dict:
        """The whole series as a plain dict."""
        return {"label": self.label, "points": [p.as_dict() for p in self.points]}


def bandwidth_sweep(
    label: str,
    make_cluster: Callable[[], Cluster],
    setup_factory: Callable[[], Callable],
    sizes: Sequence[int],
    repeats: int = 2,
    warmup: int = 1,
) -> SweepSeries:
    """Measure a bandwidth curve: one fresh cluster + ping-pong per size."""
    series = SweepSeries(label)
    for nbytes in sizes:
        cluster = make_cluster()
        result = pingpong(cluster, setup_factory(), nbytes, repeats=repeats, warmup=warmup)
        series.points.append(result)
    return series
