"""Message-size sweeps: the x-axis of Figures 4, 5 and 6.

The paper plots bandwidth against message size from 10^1 to 10^7 bytes
on a log axis.  :func:`netpipe_sizes` generates that grid;
:func:`bandwidth_sweep` runs a fresh cluster per point (fresh state, no
warm caches carrying over — and each point's simulation is independent
and reproducible).  Because every point is independent, the sweep fans
out over a process pool with ``jobs > 1`` (see :mod:`repro.parallel`)
and still returns the exact series a serial run would.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..cluster import Cluster
from ..config import ClusterConfig
from ..parallel import run_tasks
from .pingpong import PingPongResult, pingpong

__all__ = ["netpipe_sizes", "bandwidth_sweep", "SweepSeries"]


def netpipe_sizes(
    min_exp: int = 1,
    max_exp: int = 7,
    points_per_decade: int = 3,
) -> List[int]:
    """Log-spaced message sizes, ``10^min_exp .. 10^max_exp`` bytes."""
    if min_exp > max_exp:
        raise ValueError("min_exp must be <= max_exp")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    sizes: List[int] = []
    for exp in range(min_exp, max_exp):
        base = 10**exp
        for i in range(points_per_decade):
            size = int(round(base * 10 ** (i / points_per_decade)))
            if not sizes or size > sizes[-1]:
                sizes.append(size)
    sizes.append(10**max_exp)
    return sizes


class SweepSeries:
    """One labeled bandwidth-vs-size curve.

    Iterable and sized (``for point in series`` / ``len(series)``), with
    O(1) size lookup via :meth:`at` — analysis code should use these
    rather than reaching into ``points``.
    """

    def __init__(self, label: str, points: Optional[Sequence[PingPongResult]] = None):
        self.label = label
        self.points: List[PingPongResult] = []
        self._by_size: Dict[int, PingPongResult] = {}
        for point in points or ():
            self.add(point)

    def add(self, point: PingPongResult) -> PingPongResult:
        """Append one measured point (keeps the size index current)."""
        self.points.append(point)
        self._by_size[point.nbytes] = point
        return point

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PingPongResult]:
        return iter(self.points)

    @property
    def sizes(self) -> List[int]:
        return [p.nbytes for p in self.points]

    @property
    def mbps(self) -> List[float]:
        return [p.bandwidth_mbps for p in self.points]

    def at(self, nbytes: int) -> PingPongResult:
        """The measured point for an exact size (KeyError if absent)."""
        if len(self._by_size) != len(self.points):
            # Someone appended to ``points`` directly (legacy callers):
            # rebuild the index before trusting it.
            self._by_size = {p.nbytes: p for p in self.points}
        try:
            return self._by_size[nbytes]
        except KeyError:
            raise KeyError(f"no point at {nbytes} B in {self.label}") from None

    def asymptote(self) -> float:
        """Bandwidth at the largest measured size."""
        return self.points[-1].bandwidth_mbps

    def half_bandwidth_size(self) -> Optional[int]:
        """Smallest measured size reaching half the asymptotic bandwidth
        (the paper's 4 KB / 16 KB comparison)."""
        half = self.asymptote() / 2
        for p in self.points:
            if p.bandwidth_mbps >= half:
                return p.nbytes
        return None

    def as_dict(self) -> Dict:
        """The whole series as a plain dict."""
        return {"label": self.label, "points": [p.as_dict() for p in self.points]}


def _sweep_point(spec) -> PingPongResult:
    """One sweep point from a pure-data spec (module-level: pool-safe)."""
    cluster_spec, setup_factory, nbytes, repeats, warmup = spec
    if isinstance(cluster_spec, ClusterConfig):
        cluster = Cluster(cluster_spec)
    else:
        cluster = cluster_spec()
    return pingpong(cluster, setup_factory(), nbytes, repeats=repeats, warmup=warmup)


def bandwidth_sweep(
    label: str,
    cluster_spec: Union[ClusterConfig, Callable[[], Cluster]],
    setup_factory: Callable[[], Callable],
    sizes: Sequence[int],
    repeats: int = 2,
    warmup: int = 1,
    jobs: int = 1,
) -> SweepSeries:
    """Measure a bandwidth curve: one fresh cluster + ping-pong per size.

    ``cluster_spec`` is preferably a :class:`~repro.config.ClusterConfig`
    (pure data — each point rebuilds ``Cluster(cfg)`` wherever it runs);
    a zero-argument cluster factory is also accepted, but with
    ``jobs > 1`` it must then be a picklable module-level callable.
    Points fan out over a process pool and come back in size order, so
    the series is identical at any ``jobs`` value.
    """
    specs = [(cluster_spec, setup_factory, nbytes, repeats, warmup) for nbytes in sizes]
    return SweepSeries(label, run_tasks(_sweep_point, specs, jobs=jobs))
