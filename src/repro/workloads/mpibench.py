"""MPI benchmark kernels: point-to-point and collective timings.

The paper's companion work (Díaz et al., CLUSTER 2001) evaluated a
LAM-MPI port over CLIC; these kernels provide the standard measurements
for that layer — a rank-pair ping-pong (used by Figure 6) and per-
collective timings versus cluster size (used by the EXT-COLL extension
experiment).
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster import Cluster
from ..config import ClusterConfig
from ..mpi import build_world
from .pingpong import PingPongResult

__all__ = ["mpi_pingpong", "collective_time", "collective_rank_times", "COLLECTIVES"]

COLLECTIVES = ("barrier", "bcast", "reduce", "allreduce", "allgather", "alltoall")


def mpi_pingpong(
    cfg: ClusterConfig,
    transport: str,
    nbytes: int,
    repeats: int = 1,
    warmup: int = 1,
) -> PingPongResult:
    """Ping-pong between ranks 0 and 1 through the MPI layer."""
    cluster = Cluster(cfg)
    world = build_world(cluster, transport)
    n = max(nbytes, 1) if transport == "tcp" else nbytes

    def program(ctx):
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            for _ in range(warmup):
                yield from ctx.send(peer, n)
                yield from ctx.recv(n, source=peer)
            t0 = ctx.proc.env.now
            for _ in range(repeats):
                yield from ctx.send(peer, n)
                yield from ctx.recv(n, source=peer)
            return (ctx.proc.env.now - t0) / repeats
        for _ in range(warmup + repeats):
            yield from ctx.recv(n, source=peer)
            yield from ctx.send(peer, n)
        return None

    rtt = world.run(program)[0]
    return PingPongResult(nbytes=nbytes, repeats=repeats, rtt_ns=rtt)


def collective_time(
    cfg: ClusterConfig,
    transport: str,
    collective: str,
    nbytes: int,
    repeats: int = 3,
    collectives: str = "host",
) -> float:
    """Average wall time (ns) of one collective across all ranks.

    Measured the standard way: barrier, timestamp, ``repeats``
    back-to-back collectives, timestamp, max across ranks.
    ``collectives`` selects the host algorithms or the NIC-resident
    engine (see :class:`repro.mpi.World`).
    """
    return max(collective_rank_times(
        cfg, transport, collective, nbytes,
        repeats=repeats, collectives=collectives,
    ))


def collective_rank_times(
    cfg: ClusterConfig,
    transport: str,
    collective: str,
    nbytes: int,
    repeats: int = 3,
    collectives: str = "host",
) -> List[float]:
    """Per-rank average wall time (ns) of one collective — the full
    distribution :func:`collective_time` takes the max of."""
    if collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {collective!r}; have {COLLECTIVES}")
    cluster = Cluster(cfg)
    world = build_world(cluster, transport, collectives=collectives)

    def program(ctx):
        op = getattr(ctx, collective)
        yield from ctx.barrier()
        t0 = ctx.proc.env.now
        for _ in range(repeats):
            if collective == "barrier":
                yield from op()
            else:
                yield from op(nbytes)
        return (ctx.proc.env.now - t0) / repeats

    return world.run(program)
