"""Measurement workloads and transport adapters."""

from .adapters import (
    ClicAdapter,
    GammaAdapter,
    TcpAdapter,
    ViaAdapter,
    clic_pair,
    gamma_pair,
    tcp_pair,
    via_pair,
)
from .mpibench import COLLECTIVES, collective_time, mpi_pingpong
from .patterns import HotspotResult, all_pairs, hotspot, overlap_efficiency
from .pingpong import PingPongResult, StreamResult, pingpong, stream
from .sweep import SweepSeries, bandwidth_sweep, netpipe_sizes

__all__ = [
    "COLLECTIVES",
    "ClicAdapter",
    "HotspotResult",
    "all_pairs",
    "collective_time",
    "hotspot",
    "mpi_pingpong",
    "overlap_efficiency",
    "GammaAdapter",
    "PingPongResult",
    "StreamResult",
    "SweepSeries",
    "TcpAdapter",
    "ViaAdapter",
    "bandwidth_sweep",
    "clic_pair",
    "gamma_pair",
    "netpipe_sizes",
    "pingpong",
    "stream",
    "tcp_pair",
    "via_pair",
]
