"""Transport adapters: one uniform ``send(n)``/``recv(n)`` face per stack.

The workloads (ping-pong, stream, sweeps) and the MPI/PVM layers talk to
all five transports through this interface, so every figure's curves are
produced by *identical* measurement code — only the protocol under test
changes, exactly like running the same NetPIPE binary over different
libraries.
"""

from __future__ import annotations

import itertools
from typing import Generator, Tuple

from ..protocols.clic import ClicEndpoint

__all__ = [
    "clic_pair",
    "tcp_pair",
    "gamma_pair",
    "via_pair",
    "ClicAdapter",
    "TcpAdapter",
    "GammaAdapter",
    "ViaAdapter",
]

_ports = itertools.count(100)


class ClicAdapter:
    """CLIC endpoint with the uniform adapter face."""

    def __init__(self, proc, peer_node_id: int, port: int):
        self.ep = ClicEndpoint(proc, port)
        self.peer = peer_node_id

    def send(self, nbytes: int) -> Generator:
        """Send ``nbytes`` to the peer over CLIC."""
        yield from self.ep.send(self.peer, nbytes)

    def recv(self, nbytes: int) -> Generator:
        """Receive and size-check one message."""
        msg = yield from self.ep.recv()
        if msg.nbytes != nbytes:
            raise AssertionError(f"expected {nbytes} B, got {msg.nbytes} B")
        return msg


class TcpAdapter:
    """TCP socket adapter; 0-byte exchanges ride a 1-byte probe (a TCP
    stream has no zero-length message concept)."""

    def __init__(self, sock):
        self.sock = sock

    def send(self, nbytes: int) -> Generator:
        """Send ``nbytes`` on the stream (0 rides a 1-byte probe)."""
        yield from self.sock.send(max(nbytes, 1))

    def recv(self, nbytes: int) -> Generator:
        """Receive exactly ``nbytes`` from the stream."""
        got = yield from self.sock.recv(max(nbytes, 1))
        return got


class GammaAdapter:
    """GAMMA active-port adapter."""

    def __init__(self, proc, peer_node_id: int, port: int):
        self.layer = proc.node.gamma
        self.proc = proc
        self.peer = peer_node_id
        self.port = port

    def send(self, nbytes: int) -> Generator:
        """Send ``nbytes`` to the peer's active port."""
        yield from self.layer.send(self.peer, self.port, nbytes)

    def recv(self, nbytes: int) -> Generator:
        """Receive and size-check one message."""
        msg = yield from self.layer.recv(self.port)
        if msg.nbytes != nbytes:
            raise AssertionError(f"expected {nbytes} B, got {msg.nbytes} B")
        return msg


class ViaAdapter:
    """VIA virtual-interface adapter (polling receive)."""

    def __init__(self, proc, peer_node_id: int, vi):
        self.proc = proc
        self.peer = peer_node_id
        self.vi = vi

    def send(self, nbytes: int) -> Generator:
        """Send ``nbytes`` through the virtual interface."""
        yield from self.vi.send(self.peer, nbytes)

    def recv(self, nbytes: int) -> Generator:
        """Poll the completion queue for one message."""
        msg = yield from self.vi.recv()
        if msg.nbytes != nbytes:
            raise AssertionError(f"expected {nbytes} B, got {msg.nbytes} B")
        return msg


# -- pair factories (the ``setup`` argument of the workloads) ---------------
def clic_pair(port: int = 0):
    """CLIC endpoints on a fresh port for both processes."""
    bound_port = port or next(_ports)

    def setup(proc_a, proc_b) -> Tuple[ClicAdapter, ClicAdapter]:
        return (
            ClicAdapter(proc_a, proc_b.node.node_id, bound_port),
            ClicAdapter(proc_b, proc_a.node.node_id, bound_port),
        )

    return setup


def tcp_pair():
    """A connected TCP socket pair."""

    def setup(proc_a, proc_b) -> Tuple[TcpAdapter, TcpAdapter]:
        from ..protocols.tcpip import TcpIpStack

        sock_a, sock_b = TcpIpStack.connect_pair(proc_a, proc_b)
        return TcpAdapter(sock_a), TcpAdapter(sock_b)

    return setup


def gamma_pair(port: int = 0):
    """GAMMA active ports on both processes."""
    bound_port = port or next(_ports)

    def setup(proc_a, proc_b) -> Tuple[GammaAdapter, GammaAdapter]:
        return (
            GammaAdapter(proc_a, proc_b.node.node_id, bound_port),
            GammaAdapter(proc_b, proc_a.node.node_id, bound_port),
        )

    return setup


def via_pair():
    """A connected pair of virtual interfaces (same VI id both ends)."""

    def setup(proc_a, proc_b) -> Tuple[ViaAdapter, ViaAdapter]:
        vi_a = proc_a.node.via.create_vi()
        vi_b = proc_b.node.via.create_vi(vi_a.vi_id)
        return (
            ViaAdapter(proc_a, proc_b.node.node_id, vi_a),
            ViaAdapter(proc_b, proc_a.node.node_id, vi_b),
        )

    return setup
