"""Multi-node communication patterns.

Beyond the two-node measurements, clusters run *patterns*: hotspot
traffic into one node (file/viz servers), all-pairs exchanges
(transpose/alltoall phases), and compute/communication overlap.  These
drive the multiprogramming and contention aspects CLIC advertises
(§5) — everything goes through the same public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from ..cluster import Cluster
from ..protocols.clic import ClicEndpoint
from ..units import bandwidth_mbps

__all__ = ["HotspotResult", "hotspot", "all_pairs", "overlap_efficiency"]


@dataclass
class HotspotResult:
    """N senders -> one receiver."""

    senders: int
    nbytes_each: int
    elapsed_ns: float
    per_sender_done_ns: Dict[int, float]

    @property
    def aggregate_mbps(self) -> float:
        return bandwidth_mbps(self.senders * self.nbytes_each, self.elapsed_ns)


def hotspot(cluster: Cluster, nbytes_each: int, port: int = 40) -> HotspotResult:
    """Every other node sends ``nbytes_each`` to node 0 simultaneously."""
    senders = len(cluster.nodes) - 1
    if senders < 1:
        raise ValueError("hotspot needs at least 2 nodes")
    done_at: Dict[int, float] = {}
    sink_done: List[float] = []

    def sender_body(node_id):
        def body(proc):
            ep = ClicEndpoint(proc, port)
            yield from ep.send(0, nbytes_each, tag=node_id)
            yield from ep.flush(0)
            done_at[node_id] = proc.env.now

        return body

    def sink_body(proc):
        ep = ClicEndpoint(proc, port)
        for _ in range(senders):
            yield from ep.recv()
        sink_done.append(proc.env.now)

    sink = cluster.nodes[0].spawn("sink")
    done = sink.run(sink_body)
    for node in cluster.nodes[1:]:
        node.spawn().run(sender_body(node.node_id))
    cluster.env.run(done)
    return HotspotResult(
        senders=senders,
        nbytes_each=nbytes_each,
        elapsed_ns=sink_done[0],
        per_sender_done_ns=done_at,
    )


def all_pairs(cluster: Cluster, nbytes: int, port: int = 41) -> float:
    """Every node sends ``nbytes`` to every other node; returns the
    completion time (ns) of the last delivery."""
    n = len(cluster.nodes)
    finish: List[float] = []

    def body(node_id):
        def run(proc):
            ep = ClicEndpoint(proc, port)
            for peer in range(n):
                if peer != node_id:
                    yield from ep.send(peer, nbytes, tag=node_id)
            for _ in range(n - 1):
                yield from ep.recv()
            finish.append(proc.env.now)

        return run

    done = [node.spawn().run(body(node.node_id)) for node in cluster.nodes]
    cluster.env.run(cluster.env.all_of(done))
    return max(finish)


def overlap_efficiency(cluster: Cluster, nbytes: int, compute_ns: float, port: int = 42) -> float:
    """How much of a transfer hides behind computation.

    Node 0 starts a send and immediately computes for ``compute_ns``;
    node 1 receives.  Returns overlap efficiency in [0, 1]:
    1.0 means the transfer cost was fully hidden behind the compute
    (the promise of CLIC's asynchronous, DMA-driven send path).
    """
    times: Dict[str, float] = {}

    def tx(proc):
        ep = ClicEndpoint(proc, port)
        t0 = proc.env.now
        yield from ep.send(1, nbytes)
        yield from proc.compute(compute_ns)
        yield from ep.flush(1)
        times["tx_total"] = proc.env.now - t0

    def rx(proc):
        ep = ClicEndpoint(proc, port)
        yield from ep.recv()

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    d0 = p0.run(tx)
    p1.run(rx)
    cluster.env.run(d0)
    total = times["tx_total"]
    # Fully hidden: handoff + acks fit inside the compute window.
    # Otherwise the efficiency is the fraction of wall time that was
    # doing application work.
    return 1.0 if total <= compute_ns else compute_ns / total
