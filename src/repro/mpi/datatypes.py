"""MPI datatype sizing.

The simulator moves *byte counts*, so the MPI layer needs the classical
datatype machinery only to answer one question: how many bytes does a
``count`` of some (possibly derived) datatype occupy on the wire, and is
it contiguous (eligible for CLIC's scatter/gather 0-copy) or strided
(needs a pack, charged as a copy)?

Supports the MPI-1 constructors LAM-era codes used: contiguous, vector,
indexed, and struct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = [
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "indexed",
    "struct",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: size (payload bytes), extent (span in memory),
    and contiguity (whether a send can scatter/gather directly)."""

    name: str
    size: int
    extent: int
    contiguous: bool = True

    def __post_init__(self) -> None:
        if self.size < 0 or self.extent < 0:
            raise ValueError("negative datatype size/extent")
        if self.extent < self.size:
            raise ValueError(f"extent {self.extent} smaller than size {self.size}")

    def bytes_for(self, count: int) -> int:
        """Payload bytes for ``count`` elements."""
        if count < 0:
            raise ValueError("negative count")
        return self.size * count

    def footprint(self, count: int) -> int:
        """Memory span for ``count`` elements (last element's padding
        not included, per MPI extent rules)."""
        if count == 0:
            return 0
        return self.extent * (count - 1) + self.size

    def needs_pack(self) -> bool:
        """Strided types must be packed before a 0-copy send."""
        return not self.contiguous


BYTE = Datatype("MPI_BYTE", 1, 1)
CHAR = Datatype("MPI_CHAR", 1, 1)
INT = Datatype("MPI_INT", 4, 4)
FLOAT = Datatype("MPI_FLOAT", 4, 4)
DOUBLE = Datatype("MPI_DOUBLE", 8, 8)


def contiguous(count: int, base: Datatype, name: str = "") -> Datatype:
    """MPI_Type_contiguous."""
    if count < 0:
        raise ValueError("negative count")
    return Datatype(
        name or f"contig({count},{base.name})",
        size=base.size * count,
        extent=base.extent * count,
        contiguous=base.contiguous,
    )


def vector(count: int, blocklength: int, stride: int, base: Datatype, name: str = "") -> Datatype:
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements,
    ``stride`` elements apart."""
    if count < 0 or blocklength < 0:
        raise ValueError("negative count/blocklength")
    if count > 0 and blocklength > stride:
        raise ValueError("blocks overlap: blocklength > stride")
    size = base.size * blocklength * count
    if count == 0:
        return Datatype(name or "vector(empty)", 0, 0, True)
    extent = base.extent * (stride * (count - 1) + blocklength)
    is_contig = base.contiguous and (stride == blocklength or count == 1)
    return Datatype(
        name or f"vector({count},{blocklength},{stride},{base.name})",
        size=size,
        extent=extent,
        contiguous=is_contig,
    )


def indexed(blocks: Sequence[Tuple[int, int]], base: Datatype, name: str = "") -> Datatype:
    """MPI_Type_indexed: ``(blocklength, displacement)`` pairs (in
    elements)."""
    if not blocks:
        return Datatype(name or "indexed(empty)", 0, 0, True)
    size = base.size * sum(bl for bl, _ in blocks)
    last_end = max(disp + bl for bl, disp in blocks)
    first = min(disp for _, disp in blocks)
    extent = base.extent * (last_end - min(first, 0))
    # Contiguous only if the blocks tile [0, n) exactly in order.
    sorted_blocks = sorted(blocks, key=lambda b: b[1])
    pos = 0
    is_contig = base.contiguous
    for bl, disp in sorted_blocks:
        if disp != pos:
            is_contig = False
            break
        pos += bl
    return Datatype(name or f"indexed({len(blocks)},{base.name})", size, extent, is_contig)


def struct(fields: Sequence[Tuple[int, Datatype]], name: str = "") -> Datatype:
    """MPI_Type_struct (simplified: fields laid out in order, naturally
    aligned to their extents)."""
    if not fields:
        return Datatype(name or "struct(empty)", 0, 0, True)
    offset = 0
    size = 0
    is_contig = True
    for count, dtype in fields:
        if count < 0:
            raise ValueError("negative field count")
        align = max(dtype.extent, 1)
        padded = (offset + align - 1) // align * align
        if padded != offset or not dtype.contiguous:
            is_contig = False
        offset = padded + dtype.extent * count
        size += dtype.size * count
    if size != offset:
        is_contig = False
    return Datatype(name or f"struct({len(fields)})", size=size, extent=offset, contiguous=is_contig)
