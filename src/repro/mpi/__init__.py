"""MPI middleware over CLIC or TCP transports (Figure 6's contenders)."""

from .api import ANY_SOURCE, ANY_TAG, MpiMessage, RankContext, Request
from .transports import ClicTransport, TcpTransport
from .world import World, build_world, mpirun

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ClicTransport",
    "MpiMessage",
    "RankContext",
    "Request",
    "TcpTransport",
    "World",
    "build_world",
    "mpirun",
]
