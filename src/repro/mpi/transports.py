"""MPI transport bindings.

Figure 6 compares MPI-over-CLIC against MPI-over-TCP (and PVM): the same
middleware mapped onto two different message layers.  §5: "MPI and PVM
point-to-point communication functions can be easily mapped to reliable
point-to-point communications provided by the CLIC layer."  These
bindings are that mapping:

* :class:`ClicTransport` — one CLIC port per (world, rank); the CLIC
  module's tag/src matching implements MPI envelope matching directly.
* :class:`TcpTransport` — a full mesh of TCP connections; every message
  is framed as a fixed-size envelope plus payload on the pair's stream
  (per-pair in-order matching, as MPICH's ch_p4 did).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from ..protocols.clic import ClicEndpoint

__all__ = ["ClicTransport", "TcpTransport", "Envelope"]

_world_ports = itertools.count(1000)

#: MPI envelope: communicator id, source, tag, length (modeled bytes).
ENVELOPE_BYTES = 24


@dataclass
class Envelope:
    source: int
    tag: int
    nbytes: int


class ClicTransport:
    """MPI rank endpoint over the CLIC module."""

    def __init__(self, proc, rank: int, rank_to_node: Dict[int, int], world_port: int):
        self.proc = proc
        self.rank = rank
        self.rank_to_node = rank_to_node
        self.ep = ClicEndpoint(proc, world_port)

    def send(self, dest_rank: int, nbytes: int, tag: int, payload=None) -> Generator:
        """Send ``nbytes`` (+envelope) to a rank through CLIC."""
        yield from self.ep.send(
            self.rank_to_node[dest_rank], nbytes + ENVELOPE_BYTES, tag=tag, payload=payload
        )

    def recv(self, source_rank: Optional[int], tag: Optional[int]) -> Generator:
        """Receive a message; returns (Envelope, payload)."""
        src_node = None if source_rank is None else self.rank_to_node[source_rank]
        msg = yield from self.ep.recv(tag=tag, src=src_node)
        env = Envelope(source=msg.src_node, tag=msg.tag, nbytes=msg.nbytes - ENVELOPE_BYTES)
        return env, msg.payload


class TcpTransport:
    """MPI rank endpoint over a mesh of TCP sockets."""

    def __init__(self, proc, rank: int):
        self.proc = proc
        self.rank = rank
        #: peer rank -> connected socket
        self.sockets: Dict[int, object] = {}

    def connect(self, peer_rank: int, socket) -> None:
        """Attach the connected socket for ``peer_rank``."""
        self.sockets[peer_rank] = socket

    def send(self, dest_rank: int, nbytes: int, tag: int, payload=None) -> Generator:
        """Send ``nbytes`` (+envelope) on the pair's stream."""
        sock = self.sockets[dest_rank]
        # Envelope + payload on the stream (one send call: MPICH batched
        # the header into the same writev).
        yield from sock.send(nbytes + ENVELOPE_BYTES)

    def recv(self, source_rank: Optional[int], tag: Optional[int]) -> Generator:
        """Unsupported: wildcard matching needs a progress engine."""
        if source_rank is None:
            raise NotImplementedError(
                "ANY_SOURCE requires a receive progress engine; the TCP "
                "binding (like ch_p4) matches per-pair in order — use the "
                "CLIC transport for wildcard receives"
            )
        sock = self.sockets[source_rank]
        # The caller knows the expected size from the benchmark protocol;
        # we model envelope-then-payload as one sized read.
        raise NotImplementedError("use recv_sized")

    def recv_sized(self, source_rank: int, nbytes: int) -> Generator:
        """Read one sized message from ``source_rank``'s stream."""
        sock = self.sockets[source_rank]
        got = yield from sock.recv(nbytes + ENVELOPE_BYTES)
        return Envelope(source=source_rank, tag=0, nbytes=got - ENVELOPE_BYTES), None


def fresh_world_port() -> int:
    """Allocate a CLIC port number for a new MPI world."""
    return next(_world_ports)
