"""MPI collective algorithms over point-to-point.

Classic implementations (the ones LAM/MPICH shipped in 2001-2003), built
purely on the rank's send/recv so they run over either transport:

* ``barrier``   — dissemination (log2 P rounds of 0-byte exchanges)
* ``bcast``     — binomial tree from the root
* ``reduce``    — binomial tree to the root (data flows leaf -> root)
* ``allreduce`` — recursive doubling
* ``gather``    — linear to the root (rank order, as LAM's basic algo)
* ``scatter``   — linear from the root
* ``allgather`` — ring (P-1 steps of neighbour exchange)
* ``alltoall``  — pairwise exchange schedule

Tags in the 0x7Fxx range keep collective traffic from colliding with
application point-to-point messages on the same communicator.
"""

from __future__ import annotations

from typing import Generator

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "reduce_scatter",
    "nic_barrier",
    "nic_bcast",
    "nic_allreduce",
]

TAG_BARRIER = 0x7F01
TAG_BCAST = 0x7F02
TAG_REDUCE = 0x7F03
TAG_ALLREDUCE = 0x7F04
TAG_GATHER = 0x7F05
TAG_SCATTER = 0x7F06
TAG_ALLGATHER = 0x7F07
TAG_ALLTOALL = 0x7F08
TAG_SCAN = 0x7F09
TAG_REDSCAT = 0x7F0A


def barrier(ctx) -> Generator:
    """Dissemination barrier: ceil(log2 P) rounds."""
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dest = (rank + step) % size
        source = (rank - step) % size
        req = ctx.isend(dest, 0, tag=TAG_BARRIER)
        yield from ctx.recv(0, source=source, tag=TAG_BARRIER)
        yield from req.wait()
        step *= 2


def bcast(ctx, nbytes: int, root: int = 0) -> Generator:
    """Binomial-tree broadcast; returns the received size on non-roots."""
    size = ctx.size
    if size == 1:
        return nbytes
    # Rotate so the root is virtual rank 0 (standard MPICH binomial).
    vrank = (ctx.rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            source = ((vrank - mask) + root) % size
            yield from ctx.recv(nbytes, source=source, tag=TAG_BCAST)
            break
        mask *= 2
    # ``mask`` is the bit we received on (or the top bit for the root);
    # forward to children on all lower bits.
    mask //= 2
    while mask >= 1:
        if vrank + mask < size:
            dest = ((vrank + mask) + root) % size
            yield from ctx.send(dest, nbytes, tag=TAG_BCAST)
        mask //= 2
    return nbytes


def reduce(ctx, nbytes: int, root: int = 0) -> Generator:
    """Binomial-tree reduction to the root; returns total contributions
    seen at this rank (== P at the root)."""
    size = ctx.size
    vrank = (ctx.rank - root) % size
    contributions = 1
    mask = 1
    while mask < size:
        if vrank & mask:
            dest = ((vrank - mask) + root) % size
            yield from ctx.send(dest, nbytes, tag=TAG_REDUCE, payload=contributions)
            break
        else:
            vsource = vrank + mask
            if vsource < size:
                msg = yield from ctx.recv(
                    nbytes, source=(vsource + root) % size, tag=TAG_REDUCE
                )
                contributions += msg.payload if isinstance(msg.payload, int) else 1
        mask *= 2
    return contributions


def allreduce(ctx, nbytes: int) -> Generator:
    """Recursive doubling (power-of-two ranks take the fast path; the
    remainder folds in/out as MPICH does)."""
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return 1
    # Largest power of two <= size.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    contributions = 1
    # Fold the remainder: ranks >= pof2 send to rank - rem... (classic).
    if rank >= pof2:
        yield from ctx.send(rank - rem, nbytes, tag=TAG_ALLREDUCE, payload=contributions)
        msg = yield from ctx.recv(nbytes, source=rank - rem, tag=TAG_ALLREDUCE)
        return msg.payload if msg.payload is not None else size
    if rank >= pof2 - rem:
        msg = yield from ctx.recv(nbytes, source=rank + rem, tag=TAG_ALLREDUCE)
        # The TCP binding does not carry payload metadata; count one
        # contribution per folded rank either way.
        contributions += msg.payload if isinstance(msg.payload, int) else 1
    mask = 1
    vrank = rank
    while mask < pof2:
        peer = vrank ^ mask
        msg = yield from ctx.sendrecv(
            peer, nbytes, peer, nbytes, tag=TAG_ALLREDUCE
        )
        contributions *= 2  # symmetric merge each round
        mask *= 2
    contributions = size  # semantics: everyone holds the full reduction
    if rank >= pof2 - rem and rank < pof2:
        yield from ctx.send(rank + rem, nbytes, tag=TAG_ALLREDUCE, payload=contributions)
    return contributions


def gather(ctx, nbytes: int, root: int = 0) -> Generator:
    """Linear gather; the root receives P-1 messages in rank order."""
    if ctx.rank == root:
        received = {ctx.rank: nbytes}
        for rank in range(ctx.size):
            if rank == root:
                continue
            msg = yield from ctx.recv(nbytes, source=rank, tag=TAG_GATHER)
            received[rank] = msg.nbytes
        return received
    yield from ctx.send(root, nbytes, tag=TAG_GATHER)
    return None


def scatter(ctx, nbytes: int, root: int = 0) -> Generator:
    """Linear scatter: the root sends each rank its slice."""
    if ctx.rank == root:
        for rank in range(ctx.size):
            if rank == root:
                continue
            yield from ctx.send(rank, nbytes, tag=TAG_SCATTER)
        return nbytes
    msg = yield from ctx.recv(nbytes, source=root, tag=TAG_SCATTER)
    return msg.nbytes


def allgather(ctx, nbytes: int) -> Generator:
    """Ring allgather: P-1 neighbour steps, each of ``nbytes``."""
    size, rank = ctx.size, ctx.rank
    total = nbytes
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _ in range(size - 1):
        msg = yield from ctx.sendrecv(right, nbytes, left, nbytes, tag=TAG_ALLGATHER)
        total += msg.nbytes
    return total


def scan(ctx, nbytes: int) -> Generator:
    """Inclusive prefix reduction (linear chain, as LAM's basic scan):
    rank r ends up holding the combination of ranks 0..r.  Returns the
    number of contributions combined at this rank."""
    rank = ctx.rank
    contributions = 1
    if rank > 0:
        msg = yield from ctx.recv(nbytes, source=rank - 1, tag=TAG_SCAN)
        contributions += msg.payload if isinstance(msg.payload, int) else rank
    if rank < ctx.size - 1:
        yield from ctx.send(rank + 1, nbytes, tag=TAG_SCAN, payload=contributions)
    return contributions


def reduce_scatter(ctx, nbytes_per_rank: int) -> Generator:
    """Reduce-scatter (pairwise-exchange): each rank ends up with the
    fully reduced slice of size ``nbytes_per_rank``.  Implemented as the
    ring algorithm: P-1 steps, each combining a slice with a neighbour's
    partial result.  Returns contributions in this rank's slice (== P).
    """
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return 1
    right = (rank + 1) % size
    left = (rank - 1) % size
    contributions = 1
    for _ in range(size - 1):
        msg = yield from ctx.sendrecv(
            right, nbytes_per_rank, left, nbytes_per_rank, tag=TAG_REDSCAT
        )
        contributions += 1
    return contributions


def alltoall(ctx, nbytes: int) -> Generator:
    """Pairwise-exchange alltoall (XOR schedule for power-of-two sizes,
    shifted ring otherwise)."""
    size, rank = ctx.size, ctx.rank
    total = nbytes  # own slice
    is_pof2 = (size & (size - 1)) == 0
    for step in range(1, size):
        if is_pof2:
            peer = rank ^ step
        else:
            peer = (rank + step) % size
        recv_from = peer if is_pof2 else (rank - step) % size
        msg = yield from ctx.sendrecv(peer, nbytes, recv_from, nbytes, tag=TAG_ALLTOALL)
        total += msg.nbytes
    return total


# ----------------------------------------------------------------------
# NIC-resident variants (collectives="nic"): the whole combine/forward
# tree runs in NIC firmware (repro.hw.nic.collective); the host posts a
# user-level doorbell and sleeps on the DMA'd completion — no syscall,
# no IRQ, no bottom half on the critical path.


def nic_barrier(ctx) -> Generator:
    """Barrier offloaded to the NIC collective engine."""
    if ctx.size == 1:
        return
    engine = ctx.world.nic_engine(ctx.rank)
    yield from engine.post(ctx.proc, "barrier")


def nic_bcast(ctx, nbytes: int, root: int = 0) -> Generator:
    """Broadcast offloaded to the NIC collective engine; returns the
    delivered size (matching the host binomial bcast)."""
    if ctx.size == 1:
        return nbytes
    engine = ctx.world.nic_engine(ctx.rank)
    result = yield from engine.post(ctx.proc, "bcast", nbytes=nbytes, root=root)
    return result


def nic_allreduce(ctx, nbytes: int) -> Generator:
    """Allreduce offloaded to the NIC collective engine; returns total
    contributions (== P, matching the host recursive doubling)."""
    if ctx.size == 1:
        return 1
    engine = ctx.world.nic_engine(ctx.rank)
    result = yield from engine.post(ctx.proc, "allreduce", nbytes=nbytes)
    return result
