"""MPI world construction.

``build_world(cluster, transport=...)`` places one rank per node (the
paper's configuration), wires the chosen transport, and runs each rank's
program as a user process.  The runner collects per-rank return values —
the moral equivalent of ``mpirun`` over the simulated cluster.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..cluster import Cluster
from ..config import MpiParams
from ..protocols.tcpip import TcpIpStack
from .api import RankContext
from .transports import ClicTransport, TcpTransport, fresh_world_port

__all__ = ["World", "build_world", "mpirun"]


class World:
    """An MPI_COMM_WORLD over the simulated cluster.

    ``collectives`` selects where barrier/bcast/allreduce run:
    ``"host"`` is the classic 2003 software algorithms over the
    transport; ``"nic"`` offloads them to the NIC-resident engine
    (:mod:`repro.hw.nic.collective` — requires a fault-free fabric and
    one NIC per node; the remaining collectives stay host-based).
    """

    def __init__(self, cluster: Cluster, transport: str = "clic",
                 collectives: str = "host"):
        if transport not in ("clic", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        if collectives not in ("host", "nic"):
            raise ValueError(f"unknown collectives mode {collectives!r}")
        self.cluster = cluster
        self.transport_kind = transport
        self.collectives = collectives
        self.params: MpiParams = cluster.cfg.mpi
        self.size = len(cluster.nodes)
        self._rank_to_node: Dict[int, int] = {r: r for r in range(self.size)}
        self._node_to_rank: Dict[int, int] = {n: r for r, n in self._rank_to_node.items()}
        self.ranks: List[RankContext] = []
        self._build()
        if collectives == "nic":
            self._configure_nic_collectives()

    def _build(self) -> None:
        procs = [self.cluster.nodes[n].spawn(f"rank{r}") for r, n in self._rank_to_node.items()]
        if self.transport_kind == "clic":
            port = fresh_world_port()
            for rank, proc in enumerate(procs):
                transport = ClicTransport(proc, rank, self._rank_to_node, port)
                self.ranks.append(RankContext(self, rank, proc, transport))
        else:
            transports = [TcpTransport(proc, rank) for rank, proc in enumerate(procs)]
            for a in range(self.size):
                for b in range(a + 1, self.size):
                    sock_a, sock_b = TcpIpStack.connect_pair(procs[a], procs[b])
                    transports[a].connect(b, sock_a)
                    transports[b].connect(a, sock_b)
            for rank, proc in enumerate(procs):
                self.ranks.append(RankContext(self, rank, proc, transports[rank]))

    def _configure_nic_collectives(self) -> None:
        """Bind every rank's NIC collective engine to this world."""
        from ..cluster.node import mac_for

        if self.cluster.faults is not None:
            raise ValueError(
                "NIC collectives need a fault-free fabric — collective "
                "frames carry no reliability; use collectives='host'"
            )
        for node_id in self._rank_to_node.values():
            if len(self.cluster.nodes[node_id].nics) != 1:
                raise ValueError(
                    "NIC collectives need exactly one NIC per node "
                    "(bonded channels take the host algorithms)"
                )

        def _mac(rank: int) -> object:
            return mac_for(self._rank_to_node[rank], 0)

        for rank, node_id in self._rank_to_node.items():
            engine = self.cluster.nodes[node_id].nics[0].collective_engine()
            engine.configure(rank, self.size, _mac)

    def nic_engine(self, rank: int):
        """The collective engine serving ``rank`` (nic mode only)."""
        node_id = self._rank_to_node[rank]
        return self.cluster.nodes[node_id].nics[0].collective_engine()

    def node_to_rank(self, node_id: int) -> int:
        """Rank living on the given node id."""
        return self._node_to_rank[node_id]

    def run(self, program: Callable[[RankContext], Generator], until: float = 120e9) -> List:
        """Run ``program(ctx)`` on every rank; returns per-rank results."""
        done = [ctx.proc.run(lambda p, c=ctx: program(c)) for ctx in self.ranks]
        self.cluster.env.run(self.cluster.env.all_of(done))
        return [d.value for d in done]


def build_world(cluster: Cluster, transport: str = "clic",
                collectives: str = "host") -> World:
    """Create an MPI world over ``cluster`` with the chosen transport."""
    return World(cluster, transport=transport, collectives=collectives)


def mpirun(
    cluster: Cluster,
    program: Callable[[RankContext], Generator],
    transport: str = "clic",
    collectives: str = "host",
) -> List:
    """One-shot: build a world and run ``program`` on every rank."""
    return build_world(cluster, transport, collectives=collectives).run(program)
