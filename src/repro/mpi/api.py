"""MPI point-to-point API.

A deliberately small MPI: blocking send/recv, nonblocking isend/irecv
with requests, sendrecv — the subset LAM/MPICH applications of the era
lived on, and exactly what Figure 6 benchmarks.  Receives specify the
expected byte count (as real MPI posts a typed buffer).

Every call charges the middleware's per-call cost on the caller's CPU
(request bookkeeping, matching) before touching the transport, so
"MPI-CLIC sits slightly below raw CLIC" emerges the same way it does in
the paper's Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import MpiParams
from ..hw.cpu import PRIO_USER
from ..sim import Process
from .transports import ClicTransport, Envelope, TcpTransport

__all__ = ["RankContext", "Request", "MpiMessage", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = None
ANY_TAG = None


@dataclass
class MpiMessage:
    """Result of a receive."""

    source: int
    tag: int
    nbytes: int
    payload: object = None


class Request:
    """Handle for a nonblocking operation."""

    def __init__(self, process: Process):
        self._process = process

    def wait(self) -> Generator:
        """Block until the operation completes; returns its result."""
        result = yield self._process
        return result

    @property
    def done(self) -> bool:
        return not self._process.is_alive

    def test(self) -> Optional[object]:
        """Non-blocking completion check (the MPI_Test analogue)."""
        if self._process.is_alive:
            return None
        return self._process.value


class RankContext:
    """One MPI rank: the object application code receives."""

    def __init__(self, world, rank: int, proc, transport):
        self.world = world
        self.rank = rank
        self.proc = proc
        self.transport = transport

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def params(self) -> MpiParams:
        return self.world.params

    def _library_overhead(self) -> Generator:
        yield from self.proc.cpu.execute(
            self.params.per_call_ns, PRIO_USER, label="mpi_call"
        )

    # -- blocking point-to-point ------------------------------------------------
    def send(self, dest: int, nbytes: int, tag: int = 0, payload=None) -> Generator:
        """MPI_Send."""
        self._check_rank(dest)
        yield from self._library_overhead()
        yield from self.transport.send(dest, nbytes, tag, payload=payload)

    def recv(
        self,
        nbytes: int,
        source: Optional[int] = ANY_SOURCE,
        tag: Optional[int] = ANY_TAG,
    ) -> Generator:
        """MPI_Recv into a posted buffer of ``nbytes``."""
        if source is not None:
            self._check_rank(source)
        yield from self._library_overhead()
        if isinstance(self.transport, TcpTransport):
            if source is None:
                raise NotImplementedError(
                    "ANY_SOURCE needs the CLIC transport (see TcpTransport)"
                )
            env, payload = yield from self.transport.recv_sized(source, nbytes)
        else:
            env, payload = yield from self.transport.recv(source, tag)
        if env.nbytes != nbytes:
            raise AssertionError(
                f"rank {self.rank}: posted {nbytes} B but received {env.nbytes} B"
            )
        source_rank = self.world.node_to_rank(env.source) if source is None else source
        return MpiMessage(source=source_rank, tag=env.tag, nbytes=env.nbytes, payload=payload)

    def sendrecv(
        self,
        dest: int,
        send_bytes: int,
        source: int,
        recv_bytes: int,
        tag: int = 0,
    ) -> Generator:
        """MPI_Sendrecv (deadlock-free exchange)."""
        req = self.isend(dest, send_bytes, tag=tag)
        msg = yield from self.recv(recv_bytes, source=source, tag=tag)
        yield from req.wait()
        return msg

    # -- nonblocking -------------------------------------------------------------
    def isend(self, dest: int, nbytes: int, tag: int = 0, payload=None) -> Request:
        """MPI_Isend."""
        process = self.proc.env.process(
            self.send(dest, nbytes, tag=tag, payload=payload),
            name=f"rank{self.rank}.isend",
        )
        return Request(process)

    def irecv(
        self,
        nbytes: int,
        source: Optional[int] = ANY_SOURCE,
        tag: Optional[int] = ANY_TAG,
    ) -> Request:
        """MPI_Irecv."""
        process = self.proc.env.process(
            self.recv(nbytes, source=source, tag=tag),
            name=f"rank{self.rank}.irecv",
        )
        return Request(process)

    def waitall(self, requests) -> Generator:
        """MPI_Waitall: block until every request completes; returns
        their results in order."""
        results = []
        for req in requests:
            result = yield from req.wait()
            results.append(result)
        return results

    def iprobe(self, source: Optional[int] = ANY_SOURCE, tag: Optional[int] = ANY_TAG):
        """MPI_Iprobe: non-consuming, non-blocking envelope check.

        Returns an :class:`MpiMessage` (payload-free) or ``None``.
        Only available over the CLIC transport, whose in-kernel matching
        supports peeking; MPICH's ch_p4-style TCP binding could not
        probe either without a progress thread.
        """
        if isinstance(self.transport, TcpTransport):
            raise NotImplementedError("probe needs the CLIC transport")
        src_node = None if source is None else self.world._rank_to_node[source]
        msg = self.transport.ep.module.probe(self.transport.ep.port, tag=tag, src=src_node)
        if msg is None:
            return None
        from .transports import ENVELOPE_BYTES

        return MpiMessage(
            source=self.world.node_to_rank(msg.src_node),
            tag=msg.tag,
            nbytes=msg.nbytes - ENVELOPE_BYTES,
        )

    def probe(self, source: Optional[int] = ANY_SOURCE, tag: Optional[int] = ANY_TAG) -> Generator:
        """MPI_Probe: block until a matching message is available,
        without consuming it."""
        poll_ns = 2_000.0
        while True:
            found = self.iprobe(source=source, tag=tag)
            if found is not None:
                return found
            yield self.proc.env.timeout(poll_ns)

    # -- collectives are provided by mixin-style functions -----------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world.size:
            raise ValueError(f"rank {rank} out of range (world size {self.world.size})")

    # Wire the collective algorithms in (defined in collectives.py to keep
    # this module focused on point-to-point).
    def barrier(self) -> Generator:
        """MPI_Barrier (dissemination; NIC-resident in ``"nic"`` mode)."""
        if getattr(self.world, "collectives", "host") == "nic":
            from .collectives import nic_barrier

            yield from nic_barrier(self)
            return
        from .collectives import barrier

        yield from barrier(self)

    def bcast(self, nbytes: int, root: int = 0) -> Generator:
        """MPI_Bcast (binomial tree; NIC-resident in ``"nic"`` mode)."""
        if getattr(self.world, "collectives", "host") == "nic":
            from .collectives import nic_bcast

            result = yield from nic_bcast(self, nbytes, root)
            return result
        from .collectives import bcast

        result = yield from bcast(self, nbytes, root)
        return result

    def reduce(self, nbytes: int, root: int = 0) -> Generator:
        """MPI_Reduce (binomial tree to the root)."""
        from .collectives import reduce

        result = yield from reduce(self, nbytes, root)
        return result

    def allreduce(self, nbytes: int) -> Generator:
        """MPI_Allreduce (recursive doubling; NIC-resident in ``"nic"``
        mode — combine up the binomial tree, result broadcast down)."""
        if getattr(self.world, "collectives", "host") == "nic":
            from .collectives import nic_allreduce

            result = yield from nic_allreduce(self, nbytes)
            return result
        from .collectives import allreduce

        result = yield from allreduce(self, nbytes)
        return result

    def gather(self, nbytes: int, root: int = 0) -> Generator:
        """MPI_Gather (linear to the root)."""
        from .collectives import gather

        result = yield from gather(self, nbytes, root)
        return result

    def scatter(self, nbytes: int, root: int = 0) -> Generator:
        """MPI_Scatter (linear from the root)."""
        from .collectives import scatter

        result = yield from scatter(self, nbytes, root)
        return result

    def allgather(self, nbytes: int) -> Generator:
        """MPI_Allgather (ring)."""
        from .collectives import allgather

        result = yield from allgather(self, nbytes)
        return result

    def alltoall(self, nbytes: int) -> Generator:
        """MPI_Alltoall (pairwise exchange)."""
        from .collectives import alltoall

        result = yield from alltoall(self, nbytes)
        return result

    def scan(self, nbytes: int) -> Generator:
        """MPI_Scan (linear prefix chain)."""
        from .collectives import scan

        result = yield from scan(self, nbytes)
        return result

    def reduce_scatter(self, nbytes_per_rank: int) -> Generator:
        """MPI_Reduce_scatter (ring)."""
        from .collectives import reduce_scatter

        result = yield from reduce_scatter(self, nbytes_per_rank)
        return result
