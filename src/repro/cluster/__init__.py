"""Cluster assembly."""

from .cluster import Cluster
from .node import Node, mac_for

__all__ = ["Cluster", "Node", "mac_for"]
