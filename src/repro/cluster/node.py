"""One cluster node: hardware + OS + protocol stacks, assembled.

A node owns a CPU, a memory bus, a PCI bus, one or more Gigabit Ethernet
NICs (more than one = channel bonding, §5), the kernel, one vendor
driver per NIC, and the protocol engines (CLIC module and the TCP/IP
stack — they coexist, demuxed by ethertype, exactly as a real CLIC node
still runs TCP/IP for everything else).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..config import LinkParams, NodeConfig
from ..hw import Cpu, MemoryBus, PciBus
from ..hw.nic import MacAddress, Nic
from ..obs import MetricsRegistry, Tracer
from ..oskernel import Kernel, UserProcess, VendorDriver
from ..sim import Environment, Trace

__all__ = ["Node", "mac_for"]

#: MACs are assigned by convention so any node can address any other
#: without a resolution protocol (the paper's closed-cluster assumption).
_MACS_PER_NODE = 16


def mac_for(node_id: int, channel: int = 0) -> MacAddress:
    """The MAC of ``node_id``'s ``channel``-th NIC."""
    if not 0 <= channel < _MACS_PER_NODE:
        raise ValueError(f"channel {channel} out of range")
    return MacAddress(node_id * _MACS_PER_NODE + channel + 1)


class Node:
    """A workstation in the cluster."""

    def __init__(
        self,
        env: Environment,
        cfg: NodeConfig,
        link_params: LinkParams,
        node_id: int,
        name: str = "",
        trace: Optional[Trace] = None,
        rx_mode: str = "irq-pull",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.cfg = cfg
        self.link_params = link_params
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        self.rx_mode = rx_mode

        self.cpu = Cpu(env, cfg.cpu, name=f"{self.name}.cpu")
        self.memory = MemoryBus(env, cfg.memory, name=f"{self.name}.mem")
        self.pci = PciBus(env, cfg.pci, name=f"{self.name}.pci")
        self.kernel = Kernel(
            env, cfg.kernel, self.cpu, self.memory, name=f"{self.name}.kernel",
            trace=trace, tracer=tracer, metrics=metrics,
        )
        #: the node's span tracer / metrics registry (shared cluster-wide
        #: when built by Cluster; private otherwise)
        self.tracer = self.kernel.tracer
        self.metrics = self.kernel.metrics
        self.nics: List[Nic] = []
        self.drivers: List[VendorDriver] = []
        for ch in range(cfg.nic_count):
            nic = Nic(
                env,
                cfg.nic,
                link_params,
                self.pci,
                mac_for(node_id, ch),
                name=f"{self.name}.nic{ch}",
                rx_deliver=rx_mode,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self.nics.append(nic)
            self.drivers.append(
                VendorDriver(self.kernel, nic, cfg.driver, name=f"{self.name}.eth{ch}")
            )
        self.processes: List[UserProcess] = []
        # Protocol engines are attached by the cluster builder:
        self.clic = None
        self.tcp = None
        self.gamma = None
        self.via = None

    # -- protocol-facing helpers ----------------------------------------------
    def mtu(self) -> int:
        """Effective MTU of this node's (first) NIC."""
        return self.nics[0].params.effective_mtu()

    def nic_supports_sg(self) -> bool:
        """True when the NIC can scatter/gather from user pages."""
        return self.nics[0].params.supports_sg

    def mac_of(self, node_id: int, channel: int = 0) -> MacAddress:
        """MAC address of a peer node's NIC on the given channel."""
        return mac_for(node_id, channel)

    # -- applications --------------------------------------------------------
    def spawn(self, name: str = "") -> UserProcess:
        """Create a user process on this node."""
        proc = UserProcess(self, name=name)
        self.processes.append(proc)
        return proc

    def __repr__(self) -> str:
        return f"<Node {self.name} nics={len(self.nics)}>"
