"""Cluster assembly: N nodes behind a store-and-forward switch fabric.

This is the experiment entry point: build a :class:`Cluster` from a
:class:`~repro.config.ClusterConfig`, spawn processes on its nodes, and
run the shared :class:`~repro.sim.Environment`.

The default fabric is the paper's single switch; ``cfg.topology``
selects a multi-switch layout (fat-tree, chain — see
:mod:`repro.hw.fabric`), in which case every NIC attaches to its *leaf*
switch and inter-switch trunks carry the cross-leaf traffic.

Protocol engines are attached per the ``protocols`` argument; CLIC and
TCP/IP coexist on stock (``irq-pull``) NICs, while the GAMMA and VIA
comparators need their modified-driver / user-level NIC behaviour
(``push`` receive mode) and therefore their own cluster instance —
matching reality, where installing GAMMA means replacing the driver.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Tuple

from ..config import ClusterConfig
from ..faults import ChannelFaults, FaultPlan
from ..hw import Channel, Fabric
from ..obs import MetricsRegistry, Tracer
from ..sim import Counters, Environment, RngStreams, Trace
from .node import Node, mac_for

__all__ = ["Cluster"]

_PULL_PROTOCOLS = {"clic", "tcp"}
_PUSH_PROTOCOLS = {"gamma", "via"}


def _reset_global_ids() -> None:
    """Restart the process-global bookkeeping id counters.

    Packet / sk_buff / frame / descriptor / pid ids come from module-level
    ``itertools.count`` objects that keep counting across cluster builds
    within one Python process.  They model nothing (pure bookkeeping) but
    leak into trace records and span attributes, so restarting them per
    cluster makes two same-seed runs byte-identical — including their
    span and Chrome-trace exports.
    """
    import itertools

    from ..hw.nic import base as nic_base
    from ..hw.nic import frames as nic_frames
    from ..oskernel import process as osk_process
    from ..oskernel import skbuff as osk_skbuff
    from ..protocols import headers
    from ..protocols.tcpip import tcp
    from ..workloads import adapters

    nic_base._desc_ids = itertools.count(1)
    nic_frames._frame_ids = itertools.count(1)
    osk_process._pids = itertools.count(1)
    osk_skbuff._skb_ids = itertools.count(1)
    headers._packet_ids = itertools.count(1)
    tcp._conn_ids = itertools.count(1)
    # Auto-assigned workload ports too: a cluster built in a pool worker
    # must bind the same ports as the same cluster built serially, or
    # parallel sweeps would not be byte-identical (see repro.parallel).
    adapters._ports = itertools.count(100)


class Cluster:
    """A simulated cluster (nodes + switch + links + protocol engines)."""

    def __init__(
        self,
        cfg: Optional[ClusterConfig] = None,
        protocols: Iterable[str] = ("clic", "tcp"),
        loss_rate: float = 0.0,
        node_overrides: Optional[dict] = None,
        faults: Optional[FaultPlan] = None,
    ):
        """``node_overrides`` maps node_id -> NodeConfig for heterogeneous
        clusters (e.g. the jumbo-frame interoperability experiment, where
        one side runs MTU 9000 and the other MTU 1500).

        ``faults`` is a declarative :class:`~repro.faults.FaultPlan`
        (bursty loss, corruption, scheduled link outages, switch egress
        blackouts) injected deterministically from the cluster's seeded
        RNG streams; the legacy ``loss_rate`` float is shorthand for
        ``FaultPlan.uniform(loss_rate)`` and draws the same random
        sequence it always has."""
        self.cfg = cfg if cfg is not None else ClusterConfig()
        self.protocols = tuple(protocols)
        unknown = set(self.protocols) - _PULL_PROTOCOLS - _PUSH_PROTOCOLS
        if unknown:
            raise ValueError(f"unknown protocols: {sorted(unknown)}")
        if set(self.protocols) & _PULL_PROTOCOLS and set(self.protocols) & _PUSH_PROTOCOLS:
            raise ValueError(
                "GAMMA/VIA need modified-driver NICs and cannot share a "
                "cluster with CLIC/TCP — build separate clusters"
            )
        rx_mode = "push" if set(self.protocols) & _PUSH_PROTOCOLS else "irq-pull"

        _reset_global_ids()
        self.env = Environment(profile=getattr(self.cfg, "profile", False))
        self.rng = RngStreams(self.cfg.seed)
        self.trace = Trace(enabled=self.cfg.trace)
        #: cluster-wide span tracer (see repro.obs.span); shares the Trace
        self.tracer = Tracer(self.env, self.trace)
        #: cluster-wide typed metrics namespace (counters/gauges/histograms)
        self.metrics = MetricsRegistry()
        #: the switch fabric (one switch unless ``cfg.topology`` says more)
        self.fabric = Fabric(
            self.env,
            self.cfg.link,
            getattr(self.cfg, "topology", None),
            self.cfg.num_nodes,
            tracer=self.tracer,
            metrics=self.metrics,
            backpressure=getattr(self.cfg, "switch_backpressure", "drop"),
        )
        #: the first switch — the whole fabric in the single-switch case
        #: (legacy accessor kept for experiments and the validate harness)
        self.switch = self.fabric.switch
        self.nodes: List[Node] = []
        #: every simplex wire in build order, as ``(name, Channel)`` with
        #: names ``"{node_id}.{ch}.up"`` (node -> switch) and ``...down``
        #: (switch -> node) — the invariant harness walks this to check
        #: frame conservation across the wire layer.
        self.channels: List[Tuple[str, Channel]] = []
        #: hardware-path lookups for flow-mode route registration
        self._chan_map: dict = {}
        self._port_map: dict = {}

        if faults is not None and loss_rate:
            raise ValueError("give either loss_rate or a FaultPlan, not both")
        #: the active fault plan (None = clean links)
        self.faults = faults if faults is not None else (
            FaultPlan.uniform(loss_rate) if loss_rate else None
        )

        overrides = node_overrides or {}
        for node_id in range(self.cfg.num_nodes):
            node = Node(
                self.env,
                overrides.get(node_id, self.cfg.node),
                self.cfg.link,
                node_id,
                trace=self.trace,
                rx_mode=rx_mode,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self.nodes.append(node)
            for ch, nic in enumerate(node.nics):
                to_switch = Channel(
                    self.env, self.cfg.link, f"{node.name}.ch{ch}->sw",
                    faults=self._channel_faults(node_id, ch, "up"),
                    tracer=self.tracer,
                )
                from_switch = Channel(
                    self.env, self.cfg.link, f"sw->{node.name}.ch{ch}",
                    faults=self._channel_faults(node_id, ch, "down"),
                    tracer=self.tracer,
                )
                port = self.fabric.attach(node_id, from_switch, mac_for(node_id, ch))
                to_switch.connect(port.switch.ingress(port))
                from_switch.connect(nic.receive_frame)
                nic.attach_tx(to_switch)
                self.channels.append((f"{node_id}.{ch}.up", to_switch))
                self.channels.append((f"{node_id}.{ch}.down", from_switch))
                self._chan_map[(node_id, ch, "up")] = to_switch
                self._chan_map[(node_id, ch, "down")] = from_switch
                self._port_map[(node_id, ch)] = port
                self._install_blackouts(port, node_id, ch)

        # Trunks + static routes once every NIC is on its leaf; trunk
        # channels join the link list so the per-hop conservation
        # invariant walks them like any other wire.
        self.fabric.finalize()
        self.channels.extend(self.fabric.trunks)

        self._attach_protocols()

        #: hybrid flow/packet engine (None unless ``sim.flow_mode="auto"``)
        self.flow = None
        sim = getattr(self.cfg, "sim", None)
        if (
            sim is not None
            and sim.flow_mode == "auto"
            and rx_mode == "irq-pull"
            and "clic" in self.protocols
        ):
            self._install_flow_mode()

    # -- fault-plan wiring -----------------------------------------------------
    def _channel_faults(self, node_id: int, ch: int, direction: str) -> Optional[ChannelFaults]:
        """Build the fault injector for one simplex link, or ``None``.

        The RNG stream name matches the historical per-link loss streams
        (``loss.{node}.{ch}.{up|down}``), so a plain ``loss_rate`` run is
        bit-identical to pre-fault-subsystem builds.
        """
        if self.faults is None:
            return None
        spec = self.faults.link_spec(node_id, ch, direction)
        if not spec.active:
            return None
        injector = ChannelFaults(
            spec,
            rng=self.rng.stream(f"loss.{node_id}.{ch}.{direction}"),
            counters=Counters(
                registry=self.metrics,
                prefix=f"faults.link.{node_id}.{ch}.{direction}.",
            ),
        )
        for window in spec.outages:
            self.env.process(
                self._outage_span(window, f"node{node_id}.ch{ch}.{direction}"),
                name=f"faults.outage.{node_id}.{ch}.{direction}",
            )
        return injector

    def _install_blackouts(self, port, node_id: int, ch: int) -> None:
        """Attach any matching switch egress-blackout windows to ``port``."""
        if self.faults is None:
            return
        windows = self.faults.blackouts_for(node_id, ch)
        if not windows:
            return
        port.switch.set_blackouts(port, windows)
        for window in windows:
            self.env.process(
                self._blackout_span(window, f"port{port.index}"),
                name=f"faults.blackout.{node_id}.{ch}",
            )

    def _outage_span(self, window, link: str) -> Generator:
        """Emit a trace span covering one scheduled link outage."""
        yield self.env.timeout(max(window.start_ns - self.env.now, 0.0))
        span = self.tracer.begin("faults", "link_outage", link=link)
        self.metrics.counter("faults.outages_started").value += 1
        yield self.env.timeout(window.duration_ns)
        span.end(duration_ns=window.duration_ns)

    def _blackout_span(self, window, port: str) -> Generator:
        """Emit a trace span covering one switch egress blackout."""
        yield self.env.timeout(max(window.start_ns - self.env.now, 0.0))
        span = self.tracer.begin("faults", "egress_blackout", port=port)
        self.metrics.counter("faults.blackouts_started").value += 1
        yield self.env.timeout(window.duration_ns)
        span.end(duration_ns=window.duration_ns)

    def _attach_protocols(self) -> None:
        # Imports here avoid protocol<->cluster import cycles.
        if "clic" in self.protocols:
            from ..protocols.clic import ClicModule

            for node in self.nodes:
                node.clic = ClicModule(node)
        if "tcp" in self.protocols:
            from ..protocols.tcpip import TcpIpStack

            for node in self.nodes:
                node.tcp = TcpIpStack(node)
        if "gamma" in self.protocols:
            from ..protocols.gamma import GammaLayer

            for node in self.nodes:
                node.gamma = GammaLayer(node)
        if "via" in self.protocols:
            from ..protocols.via import ViaNic

            for node in self.nodes:
                node.via = ViaNic(node)

    def _install_flow_mode(self) -> None:
        """Build the hybrid-engine controller and register flow routes.

        Routes exist only between single-NIC endpoints (channel bonding
        always takes the exact per-packet path) and are wired with a
        live view of the destination's reorder stash, so the
        controller's eligibility checks read the same state the exact
        simulation would.

        Flow routes are derived for the single-switch fabric only: a
        multi-switch path has per-trunk queueing the closed-form route
        model does not capture, so the controller is installed with
        ``topology_known=False`` and every train falls back to the
        exact per-packet engine (counted as ``fallback_unknown_topology``).
        """
        from ..hw.nic.frames import payload_time_ns
        from ..protocols.headers import ClicAck
        from ..sim import FlowModeController, FlowRoute

        sim = self.cfg.sim
        controller = FlowModeController(
            min_train=sim.flow_min_train,
            max_train=sim.flow_max_train,
            horizon_ns=sim.flow_horizon_ns,
            topology_known=not self.fabric.multi_switch,
        )
        if self.fabric.multi_switch:
            self.env.flow = controller
            self.flow = controller
            return
        for src in self.nodes:
            if len(src.nics) != 1:
                continue
            for dst in self.nodes:
                if dst is src or len(dst.nics) != 1:
                    continue
                up = self._chan_map[(src.node_id, 0, "up")]
                down = self._chan_map[(dst.node_id, 0, "down")]
                route = FlowRoute(
                    up=up,
                    down=down,
                    port=self._port_map[(dst.node_id, 0)],
                    src_nic=src.nics[0],
                    dst_nic=dst.nics[0],
                    rx_budget=dst.drivers[0].params.rx_budget_per_irq,
                    dst_coalescing=dst.nics[0].params.coalescing_enabled,
                    forward_ns=self.switch.forward_ns,
                    switch_counters=self.switch.counters,
                )
                route.stash_depth = (
                    lambda module=dst.clic, peer=src.node_id:
                    module.reorder_stash_depth(peer)
                )
                # Closed-form one-way flight time of a cumulative ack
                # along this route, composed from the same per-stage
                # parameters the packet path charges: tx DMA + firmware,
                # two wire serializations + propagations, store-and-
                # forward, rx firmware, the coalescing timer a lone
                # frame waits out, IRQ entry + driver costs, rx DMA, and
                # the bottom-half + module entry.
                ack_bytes = src.clic.params.header_bytes + ClicAck.WIRE_BYTES
                dst_nic = dst.nics[0]
                dst_drv = dst.drivers[0]
                route.ack_latency_ns = (
                    src.nics[0].pci.transfer_time(ack_bytes)
                    + src.nics[0].params.frame_processing_ns
                    + payload_time_ns(ack_bytes, up.params)
                    + up.params.propagation_ns
                    + self.switch.forward_ns
                    + payload_time_ns(ack_bytes, down.params)
                    + down.params.propagation_ns
                    + dst_nic.params.frame_processing_ns
                    + (dst_nic.params.coalesce_timeout_ns
                       if dst_nic.params.coalescing_enabled else 0.0)
                    + dst.kernel.params.irq_entry_ns
                    + dst_drv.params.irq_overhead_ns
                    + dst_drv.params.rx_per_frame_ns
                    + dst_nic.pci.transfer_time(ack_bytes)
                    + dst.kernel.params.bottom_half_dispatch_ns
                    + dst.clic.params.module_rx_ns
                )

                def _deliver_ack(cum, route=route, peer=src.node_id,
                                 module=dst.clic, nbytes=ack_bytes):
                    for channel in (route.up, route.down):
                        c = channel.counters
                        c.add("frames_offered")
                        c.add("bytes_offered", nbytes)
                        c.add("frames")
                        c.add("bytes", nbytes)
                    route.switch_counters.add("forwarded")
                    route.dst_nic.counters.add("rx_frames")
                    route.dst_nic.counters.add("rx_bytes", nbytes)
                    module.receive_ack_express(peer, cum)

                route.deliver_ack = _deliver_ack
                controller.register_route(src.node_id, dst.node_id, route)
        self.env.flow = controller
        self.flow = controller

    # -- conveniences ----------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        return self.nodes[node_id]

    def run(self, until=None):
        """Advance the shared simulation."""
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} protocols={self.protocols}>"
