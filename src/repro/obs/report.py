"""Self-contained HTML dashboard for a :class:`~repro.obs.RunArtifact`.

``python -m repro.trace --html`` turns any run artifact into one HTML
file a reviewer can open from a CI artifact listing: stat tiles for the
headline numbers, the SLO scorecard, the health-event log, a small
multiple of every sampled time series (inline SVG), the slowest
journey's hop waterfall, and the top-outlier explanations.

Design constraints, in order:

* **Self-contained** — a single file with zero network fetches: no CDN
  scripts, no webfonts, no external CSS.  Charts are hand-built inline
  SVG; hover tooltips are native SVG ``<title>`` elements.
* **Deterministic** — the output is a pure function of the artifact
  dict (sorted iteration, no wall-clock timestamps), so two renders of
  the same artifact are byte-identical and diffable in CI.
* **Readable by construction** — colors follow the repo's chart rules:
  identity comes from labels, never hue alone; status colors always
  pair with an icon + word; single-series charts carry their name in
  the title instead of a legend; light and dark are both first-class
  via CSS custom properties.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .analyze import explain_outliers, journey_latency_summary, journey_waterfall

__all__ = ["render_html", "write_html"]

#: max polyline vertices per chart — beyond this the series is strided
#: down so a million-sample artifact still renders to a small file
_MAX_POINTS = 300

# Palette (validated light/dark pairs; status colors are mode-invariant
# and always rendered beside an icon + word, never meaning by hue alone).
_STYLE = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --page: #0d0d0d; --surface: #1a1a19;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 148px;
}
.card .label { color: var(--ink-2); font-size: 12px; }
.card .value { font-size: 24px; font-weight: 600; margin-top: 2px; }
.card .detail { color: var(--muted); font-size: 12px; margin-top: 2px; }
table {
  border-collapse: collapse; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px;
}
th, td {
  padding: 6px 12px; text-align: left; font-size: 13px;
  border-top: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; border-top: none; }
td.num, th.num { text-align: right; }
.status { font-weight: 600; white-space: nowrap; }
.status.ok       { color: var(--good); }
.status.violated { color: var(--critical); }
.status.missing  { color: var(--serious); }
.status.warning  { color: var(--warning); }
.status.critical { color: var(--critical); }
.status.info     { color: var(--ink-2); }
.charts { display: flex; flex-wrap: wrap; gap: 16px; }
.chart {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px 6px;
}
.chart .title { font-size: 12px; color: var(--ink-2); margin-bottom: 4px; }
.empty { color: var(--muted); font-style: italic; }
svg text { font: 10px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--muted); font-variant-numeric: tabular-nums; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any, digits: int = 3) -> str:
    """Compact deterministic number formatting (SI suffix past 10^4)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    v = float(value)
    if v != v or v in (float("inf"), float("-inf")):
        return "-"
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e4, "k")):
        if abs(v) >= cut:
            scaled = v / (1e9 if suffix == "G" else 1e6 if suffix == "M" else 1e3)
            return f"{scaled:.{digits}g}{suffix}"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.{digits}g}"


def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    """Round tick positions covering [lo, hi] on a 1/2/5 grid."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(n, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * mag
        if span / step <= n + 0.5:
            break
    first = math.ceil(lo / step) * step
    out = []
    t = first
    while t <= hi + step * 1e-9:
        out.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return out or [lo]


def _stride(points: Sequence, cap: int = _MAX_POINTS) -> List:
    """Downsample to at most ``cap`` points, always keeping the last."""
    pts = list(points)
    if len(pts) <= cap:
        return pts
    step = math.ceil(len(pts) / cap)
    sampled = pts[::step]
    if sampled[-1] is not pts[-1]:
        sampled.append(pts[-1])
    return sampled


def _status_cell(status: str, word: Optional[str] = None) -> str:
    """Status as icon + word + color — never color alone."""
    icons = {"ok": "✓", "violated": "✗", "missing": "?", "info": "·",
             "warning": "⚠", "critical": "✗", "good": "✓"}
    icon = icons.get(status, "·")
    return (f'<span class="status {_esc(status)}">{icon} '
            f'{_esc((word or status).upper())}</span>')


def _line_chart(name: str, unit: str, points: Sequence,
                width: int = 520, height: int = 150) -> str:
    """One series as an inline-SVG line chart (single hue, one axis)."""
    pts = _stride([(float(t), float(v)) for t, v in points])
    pad_l, pad_r, pad_t, pad_b = 52, 10, 8, 20
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    title = f"{name} ({unit})" if unit else name
    if len(pts) < 2:
        return (f'<div class="chart"><div class="title">{_esc(title)}</div>'
                f'<div class="empty">not enough samples</div></div>')
    t0, t1 = pts[0][0], pts[-1][0]
    vals = [v for _, v in pts]
    v0, v1 = min(vals + [0.0]), max(vals)
    if v1 <= v0:
        v1 = v0 + 1.0
    sx = plot_w / (t1 - t0) if t1 > t0 else 0.0
    sy = plot_h / (v1 - v0)

    def X(t: float) -> float:
        return pad_l + (t - t0) * sx

    def Y(v: float) -> float:
        return pad_t + plot_h - (v - v0) * sy

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img" aria-label="{_esc(title)}">']
    for tick in _ticks(v0, v1):
        y = Y(tick)
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{pad_l - 6}" y="{y + 3:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    base_y = pad_t + plot_h
    parts.append(f'<line x1="{pad_l}" y1="{base_y}" x2="{width - pad_r}" '
                 f'y2="{base_y}" stroke="var(--axis)" stroke-width="1"/>')
    for tick in _ticks(t0 / 1e3, t1 / 1e3, 5):
        x = X(tick * 1e3)
        parts.append(f'<text x="{x:.1f}" y="{height - 6}" '
                     f'text-anchor="middle">{_fmt(tick)}µs</text>')
    coords = " ".join(f"{X(t):.1f},{Y(v):.1f}" for t, v in pts)
    parts.append(f'<polyline points="{coords}" fill="none" '
                 f'stroke="var(--series-1)" stroke-width="2" '
                 f'stroke-linejoin="round" stroke-linecap="round"/>')
    # native hover layer: invisible ≥8px hit targets with <title> tooltips
    for t, v in pts:
        parts.append(f'<circle cx="{X(t):.1f}" cy="{Y(v):.1f}" r="8" '
                     f'fill="transparent"><title>t={_fmt(t / 1e3)}µs  '
                     f'{_esc(name)}={_fmt(v)}{_esc(" " + unit if unit else "")}'
                     f'</title></circle>')
    parts.append("</svg>")
    return (f'<div class="chart"><div class="title">{_esc(title)}</div>'
            f'{"".join(parts)}</div>')


def _waterfall_chart(journey: Dict[str, Any]) -> str:
    """The slowest journey's hop waterfall as labeled horizontal bars.

    One hue: identity lives in the row label, magnitude in the bar, so
    no legend and no hue cycling no matter how many hops the chain has.
    """
    segments = journey_waterfall(journey)
    total = journey["end_ns"] - journey["start_ns"]
    if not segments or total <= 0:
        return '<div class="empty">no waterfall segments</div>'
    width, row_h, label_w, value_w = 560, 22, 150, 70
    bar_w = width - label_w - value_w
    peak = max(max(s["dur_ns"] for s in segments), 1.0)
    height = row_h * len(segments) + 6
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img" aria-label="journey waterfall">']
    for i, seg in enumerate(segments):
        y = i * row_h + 3
        dur = max(seg["dur_ns"], 0.0)
        w = dur / peak * bar_w
        share = seg["dur_ns"] / total * 100.0
        label = f'{seg["hop"]} · {seg["scope"]}'
        parts.append(f'<text x="{label_w - 8}" y="{y + row_h / 2 + 3:.1f}" '
                     f'text-anchor="end" fill="var(--ink-2)">{_esc(label)}</text>')
        parts.append(f'<rect x="{label_w}" y="{y + 3}" width="{max(w, 1):.1f}" '
                     f'height="{row_h - 8}" rx="4" fill="var(--series-1)">'
                     f'<title>{_esc(seg["hop"])}: {_fmt(seg["dur_ns"] / 1e3)}µs '
                     f'({share:.1f}% of e2e)</title></rect>')
        parts.append(f'<text x="{label_w + max(w, 1) + 6:.1f}" '
                     f'y="{y + row_h / 2 + 3:.1f}">'
                     f'{_fmt(seg["dur_ns"] / 1e3)}µs</text>')
    parts.append("</svg>")
    return "".join(parts)


def _tiles(artifact: Dict[str, Any]) -> str:
    """Headline stat tiles: latency tails, delivery, health verdict."""
    result = artifact.get("result", {})
    latency = result.get("latency") or {}
    if not latency and artifact.get("journeys"):
        latency = journey_latency_summary(artifact["journeys"])
    tiles: List[Tuple[str, str, str]] = []
    for key, label in (("p50_us", "p50 latency"), ("p99_us", "p99 latency"),
                       ("p999_us", "p99.9 latency")):
        if key in latency:
            tiles.append((label, f"{_fmt(latency[key])}µs", ""))
    if "delivered" in latency:
        tiles.append(("delivered",
                      f'{_fmt(latency["delivered"])}/{_fmt(latency.get("messages"))}',
                      f'{_fmt(latency.get("retransmitted", 0))} retransmitted'))
    for key in ("goodput_mbps", "throughput_mbps"):
        if key in result:
            tiles.append((key.replace("_mbps", ""),
                          f"{_fmt(result[key])} Mb/s", ""))
    slo = artifact.get("slo") or {}
    if slo:
        n = len(slo.get("objectives", ()))
        bad = len(slo.get("violations", ()))
        tiles.append(("SLO", _status_cell("ok" if slo.get("ok") else "violated",
                                          "pass" if slo.get("ok") else "fail"),
                      f"{n - bad}/{n} objectives met"))
    health = artifact.get("health") or []
    worst = "info"
    order = ("info", "warning", "critical")
    for event in health:
        sev = event.get("severity", "info")
        if sev in order and order.index(sev) > order.index(worst):
            worst = sev
    tiles.append(("health",
                  _status_cell("good" if worst == "info" else worst,
                               "healthy" if worst == "info" else worst),
                  f"{len(health)} events"))
    cards = "".join(
        f'<div class="card"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value}</div>'
        f'<div class="detail">{_esc(detail)}</div></div>'
        for label, value, detail in tiles)
    return f'<div class="cards">{cards}</div>'


def _slo_section(card: Dict[str, Any]) -> str:
    if not card:
        return '<div class="empty">no SLO spec declared for this run</div>'
    rows = []
    for r in card.get("objectives", ()):
        rows.append(
            "<tr>"
            f"<td>{_esc(r['name'])}</td>"
            f"<td>{_esc(r['metric'])}</td>"
            f"<td>{_esc(r['kind'])}</td>"
            f"<td class='num'>{_fmt(r['threshold'])}</td>"
            f"<td class='num'>{_fmt(r['value'])}</td>"
            f"<td class='num'>{_fmt(r['margin'])}</td>"
            f"<td>{_status_cell(r['status'])}</td>"
            "</tr>")
    verdict = _status_cell("ok" if card.get("ok") else "violated",
                           "pass" if card.get("ok") else "fail")
    sub = _esc(card.get("slo", ""))
    if card.get("description"):
        sub += f' — {_esc(card["description"])}'
    return (f'<p class="sub">{sub}: {verdict}</p>'
            "<table><tr><th>objective</th><th>metric</th><th>kind</th>"
            "<th class='num'>threshold</th><th class='num'>value</th>"
            "<th class='num'>margin</th><th>status</th></tr>"
            + "".join(rows) + "</table>")


def _health_section(events: List[Dict[str, Any]]) -> str:
    if not events:
        return ('<div class="empty">'
                + _status_cell("good", "healthy")
                + ' no stalls or storms detected</div>')
    rows = []
    for e in events:
        rows.append(
            "<tr>"
            f"<td class='num'>{_fmt(e.get('t_ns', 0) / 1e3)}µs</td>"
            f"<td>{_esc(e.get('rule', ''))}</td>"
            f"<td>{_esc(e.get('kind', ''))}</td>"
            f"<td>{_status_cell(e.get('severity', 'info'))}</td>"
            f"<td>{_esc(e.get('message', ''))}</td>"
            "</tr>")
    return ("<table><tr><th class='num'>t</th><th>rule</th><th>kind</th>"
            "<th>severity</th><th>message</th></tr>"
            + "".join(rows) + "</table>")


def _timeseries_section(timeseries: Dict[str, Any]) -> str:
    if not timeseries:
        return '<div class="empty">no sampled time series in this artifact</div>'
    charts, rows = [], []
    for name in sorted(timeseries):
        series = timeseries[name]
        points = series.get("points", ())
        charts.append(_line_chart(name, series.get("unit", ""), points))
        vals = [float(v) for _, v in points]
        rows.append(
            "<tr>"
            f"<td>{_esc(name)}</td><td>{_esc(series.get('unit', ''))}</td>"
            f"<td class='num'>{len(vals)}</td>"
            f"<td class='num'>{_fmt(min(vals) if vals else None)}</td>"
            f"<td class='num'>{_fmt(max(vals) if vals else None)}</td>"
            f"<td class='num'>{_fmt(vals[-1] if vals else None)}</td>"
            "</tr>")
    # table view of every chart — the non-visual reading of the same data
    table = ("<table><tr><th>series</th><th>unit</th><th class='num'>samples"
             "</th><th class='num'>min</th><th class='num'>max</th>"
             "<th class='num'>last</th></tr>" + "".join(rows) + "</table>")
    return f'<div class="charts">{"".join(charts)}</div><h2>Series table</h2>{table}'


def _journey_section(journeys: List[Dict[str, Any]]) -> str:
    delivered = [j for j in journeys if j.get("delivered")]
    if not delivered:
        return '<div class="empty">no delivered journeys in this artifact</div>'
    slowest = max(delivered, key=lambda j: (j["end_ns"] - j["start_ns"], j["id"]))
    lat_us = (slowest["end_ns"] - slowest["start_ns"]) / 1e3
    out = [f'<p class="sub">slowest journey #{slowest["id"]} '
           f'({_esc(slowest["key"])}, {_fmt(slowest["nbytes"])} B, '
           f'{_fmt(lat_us)}µs end-to-end, '
           f'{len(slowest.get("retransmits", ()))} retransmits)</p>',
           _waterfall_chart(slowest),
           "<h2>Top outliers</h2>"]
    rows = []
    for o in explain_outliers(journeys, top=5):
        rows.append(
            "<tr>"
            f"<td class='num'>{o['id']}</td><td>{_esc(o['key'])}</td>"
            f"<td class='num'>{_fmt(o['latency_us'])}µs</td>"
            f"<td>{_esc(o['band'])}</td>"
            f"<td>{_esc(o['dominant_hop'] or '-')}</td>"
            f"<td class='num'>{_fmt(o['dominant_us'])}µs "
            f"({o['dominant_share'] * 100:.0f}%)</td>"
            f"<td class='num'>{o['retransmits']}</td>"
            f"<td>{_esc(','.join(o['retransmit_kinds']) or '-')}</td>"
            "</tr>")
    out.append("<table><tr><th class='num'>id</th><th>key</th>"
               "<th class='num'>latency</th><th>band</th><th>dominant hop</th>"
               "<th class='num'>dominant</th><th class='num'>rtx</th>"
               "<th>kinds</th></tr>" + "".join(rows) + "</table>")
    return "".join(out)


def render_html(artifact: Dict[str, Any], title: Optional[str] = None) -> str:
    """Render an artifact dict (``RunArtifact.to_dict`` form) to HTML."""
    name = title or artifact.get("experiment", "run")
    meta_bits = [f"schema {artifact.get('schema', '?')}"]
    if artifact.get("quick"):
        meta_bits.append("quick run")
    result = artifact.get("result", {})
    for key in ("seed", "nbytes", "messages", "loss", "loss_model"):
        if key in result:
            meta_bits.append(f"{key}={_fmt(result[key]) if isinstance(result[key], (int, float)) else result[key]}")
    sections = [
        f"<h1>{_esc(name)}</h1>",
        f'<p class="sub">{_esc(" · ".join(str(b) for b in meta_bits))}</p>',
        _tiles(artifact),
        "<h2>SLO scorecard</h2>", _slo_section(artifact.get("slo") or {}),
        "<h2>Health events</h2>", _health_section(artifact.get("health") or []),
        "<h2>Time series</h2>",
        _timeseries_section(artifact.get("timeseries") or {}),
        "<h2>Journey waterfall</h2>",
        _journey_section(artifact.get("journeys") or []),
    ]
    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
            f"<title>{_esc(name)} — run dashboard</title>\n"
            f"<style>{_STYLE}</style>\n</head>\n<body>\n"
            + "\n".join(sections)
            + "\n</body>\n</html>\n")


def write_html(artifact: Dict[str, Any], path: str,
               title: Optional[str] = None) -> None:
    """Write the dashboard for ``artifact`` to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_html(artifact, title=title))
