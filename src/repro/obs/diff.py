"""Run diffing: compare two run artifacts metric-by-metric.

A :class:`RunDiff` takes two run documents — live
:class:`~repro.obs.RunArtifact` objects or their JSON dict forms (run
artifacts, bench documents, any nested dict of numbers) — flattens every
numeric leaf into a dotted key, and classifies each key's change against
a configurable relative tolerance.  This is the engine behind
``python -m repro.perf diff a.json b.json``.

Span/record payloads and rendered reports are excluded by default: a
diff is about *measurements*, not trace dumps.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Delta", "RunDiff", "flatten_numeric"]

#: top-level keys never compared (bulk payloads / non-measurements)
DEFAULT_IGNORE = ("spans", "records", "report", "schema", "rev", "python",
                  "generated", "wall_s")


def flatten_numeric(doc: Any, prefix: str = "",
                    ignore: Tuple[str, ...] = DEFAULT_IGNORE) -> Dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.key -> float`` leaves.

    Booleans and non-numeric leaves are skipped; keys named in
    ``ignore`` are pruned at every nesting level.
    """
    out: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            if str(key) in ignore:
                continue
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, sub, ignore))
    elif isinstance(doc, (list, tuple)):
        for i, value in enumerate(doc):
            out.update(flatten_numeric(value, f"{prefix}[{i}]", ignore))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and math.isfinite(doc):
        out[prefix] = float(doc)
    return out


@dataclasses.dataclass(frozen=True)
class Delta:
    """One compared key: values on both sides and the change verdict."""

    key: str
    a: Optional[float]
    b: Optional[float]
    status: str  # "same" | "changed" | "added" | "removed"

    @property
    def abs_delta(self) -> float:
        """``b - a`` (0 when either side is missing)."""
        if self.a is None or self.b is None:
            return 0.0
        return self.b - self.a

    @property
    def rel_delta(self) -> float:
        """Relative change ``(b - a) / |a|``; ``inf`` when a == 0 != b."""
        if self.a is None or self.b is None:
            return math.inf
        if self.a == 0.0:
            return 0.0 if self.b == 0.0 else math.inf
        return (self.b - self.a) / abs(self.a)


class RunDiff:
    """Per-metric comparison of two run documents.

    ``tolerance`` is the default relative tolerance; ``tolerances`` maps
    dotted-key *prefixes* to overrides (longest matching prefix wins),
    so e.g. ``{"metrics.faults": 0.5}`` loosens every fault counter.
    """

    def __init__(self, a: Any, b: Any, tolerance: float = 0.05,
                 tolerances: Optional[Dict[str, float]] = None,
                 ignore: Tuple[str, ...] = DEFAULT_IGNORE):
        if dataclasses.is_dataclass(a) and not isinstance(a, type):
            a = a.to_dict()
        if dataclasses.is_dataclass(b) and not isinstance(b, type):
            b = b.to_dict()
        self.tolerance = tolerance
        self.tolerances = dict(tolerances or {})
        flat_a = flatten_numeric(a, ignore=ignore)
        flat_b = flatten_numeric(b, ignore=ignore)
        self.deltas: List[Delta] = []
        for key in sorted(set(flat_a) | set(flat_b)):
            va, vb = flat_a.get(key), flat_b.get(key)
            if va is None:
                status = "added"
            elif vb is None:
                status = "removed"
            else:
                delta = Delta(key, va, vb, "?")
                status = ("same" if abs(delta.rel_delta) <= self.tolerance_for(key)
                          else "changed")
            self.deltas.append(Delta(key, va, vb, status))

    def tolerance_for(self, key: str) -> float:
        """The relative tolerance applying to ``key`` (longest prefix)."""
        best, best_len = self.tolerance, -1
        for prefix, tol in self.tolerances.items():
            if key.startswith(prefix) and len(prefix) > best_len:
                best, best_len = tol, len(prefix)
        return best

    # -- verdicts --------------------------------------------------------
    @property
    def changed(self) -> List[Delta]:
        """Keys whose relative change exceeds their tolerance."""
        return [d for d in self.deltas if d.status == "changed"]

    @property
    def added(self) -> List[Delta]:
        """Keys present only in the second document."""
        return [d for d in self.deltas if d.status == "added"]

    @property
    def removed(self) -> List[Delta]:
        """Keys present only in the first document."""
        return [d for d in self.deltas if d.status == "removed"]

    def within_tolerance(self) -> bool:
        """True when every shared key stayed inside its tolerance."""
        return not self.changed

    # -- reporting -------------------------------------------------------
    def report(self, only_changes: bool = True,
               title: str = "Run diff") -> str:
        """Text table of the deltas (changed/added/removed, or all)."""
        rows = []
        shown: Iterable[Delta] = (
            self.changed + self.added + self.removed if only_changes
            else self.deltas
        )
        for d in shown:
            rel = (f"{d.rel_delta * 100:+.1f}%"
                   if d.a is not None and d.b is not None and math.isfinite(d.rel_delta)
                   else "-")
            rows.append((
                d.key,
                "-" if d.a is None else f"{d.a:g}",
                "-" if d.b is None else f"{d.b:g}",
                rel,
                d.status,
            ))
        if not rows:
            return f"{title}: no differences beyond tolerance ({self.tolerance:.1%})"
        # Deferred: repro.analysis builds on repro.obs (circular otherwise).
        from ..analysis.tables import format_table

        return format_table(["metric", "a", "b", "delta", "status"], rows,
                            title=title)

    def __repr__(self) -> str:
        return (f"<RunDiff keys={len(self.deltas)} changed={len(self.changed)} "
                f"added={len(self.added)} removed={len(self.removed)}>")
