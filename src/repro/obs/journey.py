"""Per-message causal tracing: journeys, hops, retransmit genealogy.

The paper's argument is a per-hop latency budget (Figure 7), but flat
spans cannot answer "why was *this* message slow".  A
:class:`JourneyRecorder` follows every message through its full
lifecycle — send call → ``fragment_plan()`` fragments → tx queue →
DMA/txpump → wire → switch egress → rx IRQ → BH → reassembly →
deliver — as causally-linked events sharing a *journey id*, so each
delivered message yields a waterfall of per-hop latencies
(:func:`repro.obs.analyze.journey_waterfall`), and each retransmission
is recorded as a child of the original transmission (the genealogy
comes from the :class:`~repro.protocols.reliability.ChannelProbe`
retransmit events, bridged by :class:`JourneyProbe`).

Enablement is one attribute on the cluster's tracer::

    cluster.tracer.journeys = JourneyRecorder(cluster.env)

Instrumented components (CLIC module, driver, NIC, switch) check
``tracer.journeys is not None`` inline, so the disabled default costs
one attribute load per hop site and schedules **zero** simulation
events — a run with journeys on is simulated-time bit-identical to the
same run with journeys off (the perf suite's ``journey`` scenario
enforces this).

Like the rest of :mod:`repro.obs`, this module imports nothing from
:mod:`repro.sim`: ``env`` is duck-typed (only ``.now`` is used) and
packets are duck-typed by their identity fields (``src_node``,
``msg_id``, ``packet_id``), so the recorder never touches — let alone
mutates — protocol state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "HOP_CHAIN",
    "Journey",
    "JourneyProbe",
    "JourneyRecorder",
    "packet_key",
]

#: canonical hop order of one fragment's life, send call to delivery
HOP_CHAIN = (
    "send",        # user's send syscall reached the protocol module
    "fragment",    # fragment_plan() piece registered with the window
    "tx_queue",    # module handed the fragment to the (stock) driver
    "nic_dma",     # NIC bus-master DMA pulled the bytes across PCI
    "wire",        # frame fully serialized onto the sender's link
    "switch",      # switch forwarded the frame to its egress queue
    "nic_rx",      # frame fully arrived in the receiver NIC's buffer
    "irq",         # driver drained the frame in interrupt context
    "bh",          # protocol module entered (bottom-half or direct)
    "reassembly",  # fragment folded into the partial message
    "deliver",     # message complete (ready for / in user memory)
)


def packet_key(payload: Any) -> Optional[Tuple[int, int]]:
    """The journey key ``(src_node, msg_id)`` of a packet-like payload.

    Returns ``None`` for payloads without message identity (acks, TCP
    segments, fuzzing junk) — those never join a journey.
    """
    msg_id = getattr(payload, "msg_id", None)
    if msg_id is None:
        return None
    src = getattr(payload, "src_node", None)
    if src is None:
        return None
    return (src, msg_id)


class Journey:
    """One message's causally-linked event chain."""

    __slots__ = ("journey_id", "src_node", "dst_node", "port", "msg_id",
                 "nbytes", "start_ns", "end_ns", "delivered", "fragments",
                 "events", "retransmits")

    def __init__(self, journey_id: int, src_node: int, dst_node: int,
                 port: int, msg_id: int, nbytes: int, start_ns: float):
        self.journey_id = journey_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.port = port
        self.msg_id = msg_id
        self.nbytes = nbytes
        self.start_ns = start_ns
        self.end_ns: Optional[float] = None
        self.delivered = False
        self.fragments = 0
        #: causally-ordered events: ``{"i", "t", "hop", "scope", "pkt"?,
        #: "parent"?, ...detail}`` — ``parent`` is the in-journey index
        #: of the originating event (retransmit genealogy).
        self.events: List[Dict[str, Any]] = []
        #: summary of retransmissions: ``{"pkt", "kind", "t", "parent"}``
        self.retransmits: List[Dict[str, Any]] = []

    @property
    def latency_ns(self) -> float:
        """End-to-end time, send call to delivery."""
        if self.end_ns is None:
            raise ValueError(f"journey {self.journey_id} not delivered")
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict export form (see :class:`~repro.obs.RunArtifact`)."""
        return {
            "id": self.journey_id,
            "key": f"{self.src_node}:{self.msg_id}",
            "src_node": self.src_node,
            "dst_node": self.dst_node,
            "port": self.port,
            "msg_id": self.msg_id,
            "nbytes": self.nbytes,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "delivered": self.delivered,
            "fragments": self.fragments,
            "retransmits": [dict(r) for r in self.retransmits],
            "events": [dict(e) for e in self.events],
        }

    def __repr__(self) -> str:
        state = "delivered" if self.delivered else "open"
        return (f"<Journey #{self.journey_id} {self.src_node}->{self.dst_node} "
                f"msg={self.msg_id} {self.nbytes}B {state} "
                f"events={len(self.events)}>")


class JourneyRecorder:
    """Collects journeys for one simulation run.

    Journey ids and event indexes are assigned in simulated-event order
    from per-recorder counters, so two same-seed runs produce
    byte-identical journey exports (nothing process-global to reset).
    The recorder observes only: it never schedules events, never sleeps,
    and never mutates packets.
    """

    def __init__(self, env: Any):
        self.env = env
        #: journeys by key, insertion (begin) order
        self._journeys: Dict[Tuple[int, int], Journey] = {}
        self._next_id = 1
        #: packet_id -> (journey, index of its first tx_queue event)
        self._pkt_tx: Dict[int, Tuple[Journey, Optional[int]]] = {}
        #: packet_id -> kind of the most recent retransmit decision
        self._retx_kind: Dict[int, str] = {}

    # -- lifecycle (called from the CLIC module) -------------------------
    def begin(self, src_node: int, msg_id: int, dst_node: int, port: int,
              nbytes: int, scope: str) -> Journey:
        """Open a journey at the send call; records the ``send`` event."""
        journey = Journey(self._next_id, src_node, dst_node, port, nbytes=nbytes,
                          msg_id=msg_id, start_ns=self.env.now)
        self._next_id += 1
        self._journeys[(src_node, msg_id)] = journey
        self._event(journey, "send", scope, dst=dst_node, nbytes=nbytes)
        return journey

    def fragment(self, pkt: Any, scope: str) -> None:
        """One ``fragment_plan()`` piece entered the send window."""
        journey = self._journeys.get(packet_key(pkt))
        if journey is None:
            return
        journey.fragments += 1
        self._event(journey, "fragment", scope, pkt_id=pkt.packet_id,
                    seq=pkt.seq, offset=pkt.frag_offset, nbytes=pkt.frag_bytes)
        self._pkt_tx[pkt.packet_id] = (journey, None)

    def tx(self, pkt: Any, scope: str, accepted: bool) -> None:
        """A transmission attempt of ``pkt`` reached the driver.

        The first attempt anchors the fragment's transmission; every
        later attempt is a retransmission and is linked as a *child* of
        the original (``parent`` = the first ``tx_queue`` event index,
        ``kind`` = the reliability layer's reason, via
        :class:`JourneyProbe`).
        """
        journey = self._journeys.get(packet_key(pkt))
        if journey is None:
            return
        pkt_id = pkt.packet_id
        entry = self._pkt_tx.get(pkt_id)
        first_tx = entry[1] if entry is not None else None
        if first_tx is None:
            ev = self._event(journey, "tx_queue", scope, pkt_id=pkt_id,
                             seq=pkt.seq, accepted=accepted)
            self._pkt_tx[pkt_id] = (journey, ev["i"])
            return
        kind = self._retx_kind.get(pkt_id, "unknown")
        ev = self._event(journey, "tx_queue", scope, pkt_id=pkt_id,
                         parent=first_tx, seq=pkt.seq, accepted=accepted,
                         kind=kind)
        journey.retransmits.append(
            {"pkt": pkt_id, "kind": kind, "t": ev["t"], "parent": first_tx})

    def hop(self, payload: Any, hop: str, scope: str, **detail: Any) -> None:
        """Record a generic hop for the packet carried by ``payload``.

        ``payload`` may be the packet itself or a wrapper with a
        ``.payload`` attribute (NIC fragmentation-offload markers);
        payloads without message identity are ignored.
        """
        key = packet_key(payload)
        pkt = payload
        if key is None:
            inner = getattr(payload, "payload", None)
            if inner is None:
                return
            key = packet_key(inner)
            if key is None:
                return
            pkt = inner
        journey = self._journeys.get(key)
        if journey is None:
            return
        self._event(journey, hop, scope,
                    pkt_id=getattr(pkt, "packet_id", None), **detail)

    def deliver(self, pkt: Any, scope: str, **detail: Any) -> None:
        """The message completed reassembly: close the journey."""
        journey = self._journeys.get(packet_key(pkt))
        if journey is None:
            return
        self._event(journey, "deliver", scope,
                    pkt_id=getattr(pkt, "packet_id", None), **detail)
        journey.delivered = True
        journey.end_ns = self.env.now

    def note_retransmit(self, pkt: Any, kind: str) -> None:
        """Reliability-layer decision: ``pkt`` will be re-emitted
        (``kind`` is ``"rto"`` or ``"fast"``); the next ``tx`` of the
        packet becomes a genealogy child with this kind."""
        pkt_id = getattr(pkt, "packet_id", None)
        if pkt_id is not None:
            self._retx_kind[pkt_id] = kind

    # -- internals -------------------------------------------------------
    def _event(self, journey: Journey, hop: str, scope: str,
               pkt_id: Optional[int] = None, parent: Optional[int] = None,
               **detail: Any) -> Dict[str, Any]:
        ev: Dict[str, Any] = {"i": len(journey.events), "t": self.env.now,
                              "hop": hop, "scope": scope}
        if pkt_id is not None:
            ev["pkt"] = pkt_id
        if parent is not None:
            ev["parent"] = parent
        ev.update(detail)
        journey.events.append(ev)
        return ev

    # -- queries ---------------------------------------------------------
    @property
    def journeys(self) -> List[Journey]:
        """Every journey in begin order."""
        return list(self._journeys.values())

    def get(self, src_node: int, msg_id: int) -> Optional[Journey]:
        """The journey of message ``msg_id`` from ``src_node``."""
        return self._journeys.get((src_node, msg_id))

    def delivered(self) -> List[Journey]:
        """Completed journeys in begin order."""
        return [j for j in self._journeys.values() if j.delivered]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Every journey as its plain-dict export form."""
        return [j.to_dict() for j in self._journeys.values()]

    def __len__(self) -> int:
        return len(self._journeys)

    def __repr__(self) -> str:
        done = sum(1 for j in self._journeys.values() if j.delivered)
        return f"<JourneyRecorder {len(self._journeys)} journeys ({done} delivered)>"


class JourneyProbe:
    """Bridges :class:`~repro.protocols.reliability.ChannelProbe`
    retransmit events into the recorder's genealogy.

    The channel-probe slot is process-global and single; this probe
    therefore *chains*: every callback is forwarded to the previously
    installed probe (e.g. the invariant harness), so journey capture
    composes with validation instead of displacing it.  Install with::

        probe = JourneyProbe(recorder, inner=install_channel_probe(None))
        install_channel_probe(probe)

    or use :meth:`install` which does exactly that and returns the
    probe to restore afterwards.
    """

    def __init__(self, recorder: JourneyRecorder, inner: Any = None):
        self.recorder = recorder
        self.inner = inner

    @classmethod
    def install(cls, recorder: JourneyRecorder) -> "JourneyProbe":
        """Chain a journey probe onto the global channel-probe slot.

        Returns the installed probe; the caller should restore the
        previous probe (``probe.inner``) with ``install_channel_probe``
        in a ``finally`` block.
        """
        from ..protocols.reliability import install_channel_probe

        probe = cls(recorder, inner=install_channel_probe(None))
        install_channel_probe(probe)
        return probe

    def uninstall(self) -> None:
        """Restore the previously installed probe (if any)."""
        from ..protocols.reliability import install_channel_probe

        install_channel_probe(self.inner)

    # -- the one event this probe consumes -------------------------------
    def on_retransmit(self, sender: Any, seqs: List[int], kind: str) -> None:
        """Record genealogy for each retransmitted seq, then forward."""
        # Read-only peek at the sender's in-flight table to map seq ->
        # packet; the recorder links the upcoming re-emission to the
        # original transmission.
        in_flight = getattr(sender, "_in_flight", {})
        for seq in seqs:
            pkt = in_flight.get(seq)
            if pkt is not None:
                self.recorder.note_retransmit(pkt, kind)
        if self.inner is not None:
            self.inner.on_retransmit(sender, seqs, kind)

    # -- pure forwarding -------------------------------------------------
    def on_sender(self, sender: Any) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_sender(sender)

    def on_receiver(self, receiver: Any) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_receiver(receiver)

    def on_register(self, sender: Any, seq: int) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_register(sender, seq)

    def on_ack_applied(self, sender: Any, base_before: int, cum: int) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_ack_applied(sender, base_before, cum)

    def on_rtt_sample(self, sender: Any, seq: int, rtt_ns: float) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_rtt_sample(sender, seq, rtt_ns)

    def on_timeout(self, sender: Any, rto_before_ns: float,
                   rto_after_ns: float) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_timeout(sender, rto_before_ns, rto_after_ns)

    def on_fail(self, sender: Any, reason: str) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_fail(sender, reason)

    def on_deliver(self, receiver: Any, seq: int) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_deliver(receiver, seq)

    def on_ack_emitted(self, receiver: Any, cum: int) -> None:
        """Forward to the previously installed probe."""
        if self.inner is not None:
            self.inner.on_ack_emitted(receiver, cum)
