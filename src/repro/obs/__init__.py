"""Observability: structured spans, typed metrics, profiling, exporters.

This package is the measurement layer of the reproduction — the paper's
contributions *are* measurements (Figure 7's per-stage microsecond
breakdown, Section 2's interrupt accounting), so every experiment
reports its numbers through the instruments here:

* :mod:`repro.obs.span` — span-based structured tracing (``begin``/
  ``end`` with parent links and per-node/per-subsystem scopes such as
  ``node0.clic``), layered on the flat :class:`repro.sim.Trace`;
* :mod:`repro.obs.metrics` — typed instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram` with streaming p50/p95/p99) behind
  a :class:`MetricsRegistry`;
* :mod:`repro.obs.profile` — event-loop profiling hooks for
  :class:`repro.sim.Environment` (events per process, queue high-water);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and the per-run :class:`RunArtifact` JSON.

The package deliberately imports nothing from :mod:`repro.sim` so the
simulation kernel can build *on top of* the instruments (``repro.sim``
-> ``repro.obs``, never the other way).
"""

from .analyze import (
    LAYERS,
    CriticalPath,
    PathSegment,
    ScopeStat,
    SpanNode,
    attribution_table,
    critical_path,
    fig7_stage_durations,
    layer_attribution,
    scope_stats,
    span_tree,
    summary_table,
)
from .diff import Delta, RunDiff, flatten_numeric
from .export import (
    RUN_SCHEMA,
    RUN_SCHEMA_V1,
    RunArtifact,
    chrome_trace_events,
    chrome_trace_json,
    jsonable,
    records_of,
    spans_of,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import EnvProfiler, aggregate_profiles
from .span import NULL_SPAN, Instant, Span, Tracer

__all__ = [
    "Counter",
    "CriticalPath",
    "Delta",
    "EnvProfiler",
    "Gauge",
    "Histogram",
    "Instant",
    "LAYERS",
    "MetricsRegistry",
    "NULL_SPAN",
    "PathSegment",
    "RUN_SCHEMA",
    "RUN_SCHEMA_V1",
    "RunArtifact",
    "RunDiff",
    "ScopeStat",
    "Span",
    "SpanNode",
    "Tracer",
    "aggregate_profiles",
    "attribution_table",
    "chrome_trace_events",
    "chrome_trace_json",
    "critical_path",
    "fig7_stage_durations",
    "flatten_numeric",
    "jsonable",
    "layer_attribution",
    "records_of",
    "scope_stats",
    "span_tree",
    "spans_of",
    "summary_table",
]
