"""Observability: structured spans, typed metrics, profiling, exporters.

This package is the measurement layer of the reproduction — the paper's
contributions *are* measurements (Figure 7's per-stage microsecond
breakdown, Section 2's interrupt accounting), so every experiment
reports its numbers through the instruments here:

* :mod:`repro.obs.span` — span-based structured tracing (``begin``/
  ``end`` with parent links and per-node/per-subsystem scopes such as
  ``node0.clic``), layered on the flat :class:`repro.sim.Trace`;
* :mod:`repro.obs.journey` — per-message causal tracing: every message
  followed send → fragment → wire → reassembly → deliver as a
  :class:`Journey` with per-hop waterfalls and retransmit genealogy;
* :mod:`repro.obs.metrics` — typed instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram` with streaming p50/p95/p99/p99.9,
  :class:`TimeSeries` sampled on a cadence by
  :class:`TimeSeriesSampler`) behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.profile` — event-loop profiling hooks for
  :class:`repro.sim.Environment` (events per process, queue high-water);
* :mod:`repro.obs.slo` — declarative service-level objectives: JSON-able
  :class:`SLOSpec` documents (percentile ceilings, goodput floors,
  loss/pause budgets, windowed burn-rates) evaluated into structured
  scorecards that bench gates and CI fail on;
* :mod:`repro.obs.health` — the in-sim :class:`HealthWatchdog`: stall
  and storm detection riding the sampler cadence, emitting structured
  :class:`HealthEvent` records in simulated time;
* :mod:`repro.obs.report` — any :class:`RunArtifact` rendered as a
  single self-contained HTML dashboard (stat tiles, SLO scorecard,
  health log, time-series charts, journey waterfall);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``; spans as slices, journeys as flow events, time
  series as counters) and the per-run :class:`RunArtifact` JSON.

The package deliberately imports nothing from :mod:`repro.sim` so the
simulation kernel can build *on top of* the instruments (``repro.sim``
-> ``repro.obs``, never the other way).
"""

from .analyze import (
    LAYERS,
    CriticalPath,
    PathSegment,
    ScopeStat,
    SpanNode,
    attribution_table,
    critical_path,
    explain_outliers,
    fig7_stage_durations,
    journey_latency_summary,
    journey_waterfall,
    layer_attribution,
    outlier_report,
    scope_stats,
    span_tree,
    summary_table,
    waterfall_table,
)
from .diff import Delta, RunDiff, flatten_numeric
from .export import (
    RUN_SCHEMA,
    RUN_SCHEMA_V1,
    RUN_SCHEMA_V2,
    RUN_SCHEMA_V3,
    RunArtifact,
    chrome_trace_events,
    chrome_trace_json,
    jsonable,
    records_of,
    spans_of,
    timeseries_of,
)
from .health import HEALTH_SCHEMA, SEVERITIES, HealthEvent, HealthWatchdog
from .journey import HOP_CHAIN, Journey, JourneyProbe, JourneyRecorder, packet_key
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    TimeSeriesSampler,
)
from .profile import EnvProfiler, aggregate_profiles
from .report import render_html, write_html
from .slo import (
    OBJECTIVE_KINDS,
    SCORECARD_SCHEMA,
    SLO_SCHEMA,
    Objective,
    SLOSpec,
    evaluate,
    resolve_metric,
    scorecard_table,
)
from .span import NULL_SPAN, Instant, Span, Tracer

__all__ = [
    "Counter",
    "CriticalPath",
    "Delta",
    "EnvProfiler",
    "Gauge",
    "HEALTH_SCHEMA",
    "HOP_CHAIN",
    "HealthEvent",
    "HealthWatchdog",
    "Histogram",
    "Instant",
    "Journey",
    "JourneyProbe",
    "JourneyRecorder",
    "LAYERS",
    "MetricsRegistry",
    "NULL_SPAN",
    "OBJECTIVE_KINDS",
    "Objective",
    "PathSegment",
    "RUN_SCHEMA",
    "RUN_SCHEMA_V1",
    "RUN_SCHEMA_V2",
    "RUN_SCHEMA_V3",
    "RunArtifact",
    "RunDiff",
    "SCORECARD_SCHEMA",
    "SEVERITIES",
    "SLOSpec",
    "SLO_SCHEMA",
    "ScopeStat",
    "Span",
    "SpanNode",
    "TimeSeries",
    "TimeSeriesSampler",
    "Tracer",
    "aggregate_profiles",
    "attribution_table",
    "chrome_trace_events",
    "chrome_trace_json",
    "critical_path",
    "evaluate",
    "explain_outliers",
    "fig7_stage_durations",
    "flatten_numeric",
    "journey_latency_summary",
    "journey_waterfall",
    "jsonable",
    "layer_attribution",
    "outlier_report",
    "packet_key",
    "records_of",
    "render_html",
    "resolve_metric",
    "scope_stats",
    "scorecard_table",
    "span_tree",
    "spans_of",
    "summary_table",
    "timeseries_of",
    "waterfall_table",
    "write_html",
]
