"""In-sim health watchdog: stall and storm detection in simulated time.

Post-hoc analysis tells you a run *was* sick; production telemetry
pipelines watch the stream in-band and flag the moment it got sick.
The :class:`HealthWatchdog` is that layer for the simulator: it rides
the :class:`~repro.obs.metrics.TimeSeriesSampler` cadence (via
``sampler.on_tick``) and evaluates health rules against counter probes
each sampling round, emitting structured :class:`HealthEvent` records
stamped with *simulated* time.

Two rule families cover the failure modes the resilience experiments
exercise:

* :meth:`HealthWatchdog.watch_progress` — a monotonically increasing
  progress probe (frames delivered, messages completed) that flat-lines
  for N consecutive ticks is a **stall**;
* :meth:`HealthWatchdog.watch_rate` — a counter probe (RTO firings,
  PAUSE events, pause time) whose increase over a sliding tick window
  exceeds a budget is a **storm**.

Each rule is edge-triggered: one event when the condition starts, one
``recovered`` event when it clears — not one event per sick tick, so a
ten-thousand-tick stall is two records, not ten thousand.

The watchdog is a pure observer, same contract as the journey seam: it
only *reads* probes (which read simulation state) and appends to its own
event list, so a run with the watchdog enabled produces bit-identical
simulated metrics to one without.  ``env`` is duck-typed — only
``.now`` is used.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "HEALTH_SCHEMA",
    "SEVERITIES",
    "HealthEvent",
    "HealthWatchdog",
]

HEALTH_SCHEMA = "repro.health/1"

#: ordered worst-last, so ``max(..., key=SEVERITIES.index)`` works
SEVERITIES = ("info", "warning", "critical")


@dataclasses.dataclass(frozen=True)
class HealthEvent:
    """One structured health observation at a simulated instant."""

    t_ns: float
    rule: str
    kind: str        # "stall" | "storm" | "recovered"
    severity: str    # one of SEVERITIES
    message: str
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict export form (rides the run artifact's ``health``)."""
        return {
            "t_ns": self.t_ns, "rule": self.rule, "kind": self.kind,
            "severity": self.severity, "message": self.message,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HealthEvent":
        return cls(
            t_ns=float(data["t_ns"]), rule=data["rule"], kind=data["kind"],
            severity=data["severity"], message=data["message"],
            details=dict(data.get("details", {})),
        )


class _ProgressRule:
    """Flags a stall when a progress probe flat-lines for N ticks."""

    def __init__(self, name: str, probe: Callable[[], float],
                 stall_ticks: int, severity: str):
        self.name = name
        self.probe = probe
        self.stall_ticks = stall_ticks
        self.severity = severity
        self._last: Optional[float] = None
        self._flat = 0
        self._stalled = False
        self._stall_start = 0.0

    def update(self, now: float, emit: Callable[..., None]) -> None:
        value = float(self.probe())
        if self._last is None or value > self._last:
            if self._stalled:
                emit(now, self.name, "recovered", "info",
                     f"{self.name}: progress resumed at {value:g}",
                     stalled_ns=now - self._stall_start, value=value)
                self._stalled = False
            self._flat = 0
        else:
            self._flat += 1
            if self._flat == self.stall_ticks and not self._stalled:
                self._stalled = True
                self._stall_start = now
                emit(now, self.name, "stall", self.severity,
                     f"{self.name}: no progress for {self.stall_ticks} ticks "
                     f"(stuck at {value:g})",
                     flat_ticks=self._flat, value=value)
        self._last = value


class _RateRule:
    """Flags a storm when a counter rises faster than budget per window."""

    def __init__(self, name: str, probe: Callable[[], float],
                 threshold: float, window_ticks: int, severity: str):
        self.name = name
        self.probe = probe
        self.threshold = threshold
        self.window_ticks = window_ticks
        self.severity = severity
        self._history: List[float] = []
        self._storming = False
        self._storm_start = 0.0

    def update(self, now: float, emit: Callable[..., None]) -> None:
        value = float(self.probe())
        self._history.append(value)
        if len(self._history) > self.window_ticks + 1:
            del self._history[0]
        rise = value - self._history[0]
        if rise > self.threshold:
            if not self._storming:
                self._storming = True
                self._storm_start = now
                emit(now, self.name, "storm", self.severity,
                     f"{self.name}: +{rise:g} over {len(self._history) - 1} "
                     f"ticks exceeds budget {self.threshold:g}",
                     rise=rise, value=value)
        elif self._storming:
            self._storming = False
            emit(now, self.name, "recovered", "info",
                 f"{self.name}: rate back under budget "
                 f"(+{rise:g} per window)",
                 storm_ns=now - self._storm_start, rise=rise, value=value)


class HealthWatchdog:
    """Evaluates health rules on the sampler cadence; pure observer.

    Attach to a sampler with :meth:`attach` (or pass ``tick`` to
    ``sampler.on_tick`` directly); declare rules before the run starts.
    Events accumulate in :attr:`events` with simulated timestamps and
    export via :meth:`to_dicts` for the run artifact.
    """

    def __init__(self, env: Any):
        self.env = env
        self.events: List[HealthEvent] = []
        self._rules: List[Any] = []

    # -- rule declaration -------------------------------------------------

    def watch_progress(self, name: str, probe: Callable[[], float],
                       stall_ticks: int = 20,
                       severity: str = "critical") -> "HealthWatchdog":
        """Stall rule: ``probe`` must increase at least once every
        ``stall_ticks`` sampling rounds."""
        self._rules.append(_ProgressRule(name, probe, stall_ticks,
                                         self._check_severity(severity)))
        return self

    def watch_rate(self, name: str, probe: Callable[[], float],
                   threshold: float, window_ticks: int = 10,
                   severity: str = "warning") -> "HealthWatchdog":
        """Storm rule: ``probe`` may rise at most ``threshold`` over any
        ``window_ticks`` consecutive sampling rounds."""
        self._rules.append(_RateRule(name, probe, threshold, window_ticks,
                                     self._check_severity(severity)))
        return self

    @staticmethod
    def _check_severity(severity: str) -> str:
        if severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {severity!r}")
        return severity

    # -- wiring -----------------------------------------------------------

    def attach(self, sampler: Any) -> "HealthWatchdog":
        """Ride ``sampler``'s cadence: evaluate rules after each round."""
        sampler.on_tick(self.tick)
        return self

    def tick(self) -> None:
        """Evaluate every rule once at the current simulated time."""
        now = self.env.now
        for rule in self._rules:
            rule.update(now, self._emit)

    def _emit(self, t_ns: float, rule: str, kind: str, severity: str,
              message: str, **details: Any) -> None:
        self.events.append(HealthEvent(
            t_ns=t_ns, rule=rule, kind=kind, severity=severity,
            message=message, details=details))

    # -- export -----------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Events as plain dicts, in emission (= simulated-time) order."""
        return [e.to_dict() for e in self.events]

    def summary(self) -> Dict[str, Any]:
        """Aggregate verdict: healthy unless any non-info event fired."""
        by_kind: Dict[str, int] = {}
        worst = "info"
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            if SEVERITIES.index(event.severity) > SEVERITIES.index(worst):
                worst = event.severity
        return {
            "schema": HEALTH_SCHEMA,
            "healthy": worst == "info",
            "worst_severity": worst,
            "events": len(self.events),
            "by_kind": dict(sorted(by_kind.items())),
        }
