"""Event-loop profiling for the discrete-event simulator.

Answers "where does the *simulator* spend its events" — complementary to
the in-simulation instruments: per-process event deliveries, per-event-
type tallies, and the scheduler queue's high-water mark.  Attached to
:class:`repro.sim.Environment` via ``Environment(profile=True)`` or
``env.enable_profiling()``; when detached the loop pays a single
``is None`` check per event.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

__all__ = ["EnvProfiler", "aggregate_profiles"]


class EnvProfiler:
    """Tallies maintained by the :class:`~repro.sim.Environment` loop."""

    __slots__ = ("events_processed", "events_scheduled", "queue_high_water",
                 "per_type", "per_process")

    def __init__(self):
        self.events_processed = 0
        self.events_scheduled = 0
        self.queue_high_water = 0
        #: event class name -> times processed
        self.per_type: Dict[str, int] = {}
        #: process name -> events delivered to it (generator resumptions)
        self.per_process: Dict[str, int] = {}

    # -- hooks called by the event loop ---------------------------------
    def on_schedule(self, queue_depth: int) -> None:
        """Called by the loop after pushing an event onto the heap."""
        self.events_scheduled += 1
        if queue_depth > self.queue_high_water:
            self.queue_high_water = queue_depth

    def on_step(self, event: Any, callbacks: Iterable[Any]) -> None:
        """Called by the loop as each event is popped and processed.

        ``callbacks`` is a list for ordinary events; for the
        :class:`~repro.sim.TimerHandle` fast path it is the bare
        callable itself (no per-process attribution — timers belong to
        no process).
        """
        self.events_processed += 1
        tname = type(event).__name__
        self.per_type[tname] = self.per_type.get(tname, 0) + 1
        if type(callbacks) is not list:
            return
        for cb in callbacks:
            # A process resumption is a bound ``Process._resume``; count
            # it against the process's name (duck-typed, no sim import).
            owner = getattr(cb, "__self__", None)
            if owner is not None and getattr(cb, "__name__", "") == "_resume":
                pname = getattr(owner, "name", "?")
                self.per_process[pname] = self.per_process.get(pname, 0) + 1

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict summary (keys sorted for deterministic export)."""
        return {
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "queue_high_water": self.queue_high_water,
            "per_type": dict(sorted(self.per_type.items())),
            "per_process": dict(sorted(self.per_process.items())),
        }

    def top_processes(self, n: int = 10):
        """The ``n`` busiest processes as (name, events) pairs."""
        return sorted(self.per_process.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def __repr__(self) -> str:
        return (f"<EnvProfiler events={self.events_processed} "
                f"high_water={self.queue_high_water}>")


def aggregate_profiles(profiles: Iterable[Any]) -> Dict[str, Any]:
    """Merge profiler tallies from several environments into one snapshot.

    ``profiles`` may hold :class:`EnvProfiler` objects or their
    ``snapshot()`` dicts (mixing is fine).  Event counts and the
    per-type/per-process tallies sum; the queue high-water mark is the
    max across environments; ``environments`` records how many were
    merged.  An experiment that builds many clusters (a size sweep)
    thereby reports one simulator-cost summary per run artifact.
    """
    profiles = list(profiles)
    if any(hasattr(p, "snapshot") for p in profiles):
        # Live profilers keep counting until read.  Tearing down a
        # finished simulation closes suspended generators, whose cleanup
        # (releasing resource grants) schedules a final event on the dead
        # environment — and *when* the cycle collector runs that cleanup
        # depends on allocation history, which differs between serial
        # and pooled runs.  Collect pending garbage before reading so
        # the tally deterministically includes all teardown events.
        import gc

        gc.collect()
    merged: Dict[str, Any] = {
        "environments": 0,
        "events_processed": 0,
        "events_scheduled": 0,
        "queue_high_water": 0,
        "per_type": {},
        "per_process": {},
    }
    for prof in profiles:
        snap = prof.snapshot() if hasattr(prof, "snapshot") else prof
        merged["environments"] += 1
        merged["events_processed"] += snap.get("events_processed", 0)
        merged["events_scheduled"] += snap.get("events_scheduled", 0)
        merged["queue_high_water"] = max(
            merged["queue_high_water"], snap.get("queue_high_water", 0))
        for field in ("per_type", "per_process"):
            for key, count in (snap.get(field) or {}).items():
                merged[field][key] = merged[field].get(key, 0) + count
    merged["per_type"] = dict(sorted(merged["per_type"].items()))
    merged["per_process"] = dict(sorted(merged["per_process"].items()))
    return merged
