"""Trace analytics: span trees, self-time, critical paths, layer budgets.

The paper's core claim is a *per-layer overhead budget* — CLIC wins
because time spent in the protocol/kernel/driver layers shrinks
(Figures 4–7).  This module turns the raw spans/records a traced run
emits (see :mod:`repro.obs.span` and :class:`~repro.obs.RunArtifact`)
into exactly those budgets:

* :func:`span_tree` / :func:`scope_stats` — reconstruct the span forest
  from parent links and compute, per ``scope/name``, total time and
  *self* time (total minus time covered by child spans), the numbers a
  flame-graph view would show;
* :func:`critical_path` — walk one message's packet through the
  pipeline (sender syscall → CLIC → driver → NIC → wire → interrupt →
  bottom halves → CLIC → wake) and label every hop with the layer that
  owns it, re-deriving the Figure 7 breakdown from structured spans
  instead of ad-hoc counters;
* :func:`layer_attribution` / :func:`attribution_table` — fold a
  critical path into the per-layer table (user/CLIC/kernel/driver/
  NIC/wire) the paper argues about;
* :func:`fig7_stage_durations` — regroup the path's segments into the
  five classic Figure-7 stages so the span-derived budget can be
  cross-checked against :mod:`repro.experiments.fig7`;
* :func:`journey_waterfall` / :func:`explain_outliers` /
  :func:`journey_latency_summary` — the per-message view: turn a
  :class:`~repro.obs.journey.Journey` export dict into a waterfall of
  per-hop latencies (telescoping, so segments sum exactly to the
  end-to-end latency) and name the dominant hop — and whether loss /
  retransmission was involved — for the p99/p99.9 journeys of a run.

Everything operates on the *plain dict* export forms (``Span.to_dict``
/ ``Journey.to_dict`` / trace-record dicts), so a
:class:`~repro.obs.RunArtifact` loaded from disk can be analyzed
without live simulator objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .journey import HOP_CHAIN


def _format_table(headers, rows, title=None):
    """Deferred import of :func:`repro.analysis.tables.format_table`.

    :mod:`repro.analysis` builds on top of :mod:`repro.obs`, so this
    module must not import it at module scope (circular import).
    """
    from ..analysis.tables import format_table

    return format_table(headers, rows, title=title)


__all__ = [
    "LAYERS",
    "CriticalPath",
    "PathSegment",
    "ScopeStat",
    "SpanNode",
    "attribution_table",
    "critical_path",
    "explain_outliers",
    "fig7_stage_durations",
    "journey_latency_summary",
    "journey_waterfall",
    "layer_attribution",
    "outlier_report",
    "scope_stats",
    "span_tree",
    "summary_table",
    "waterfall_table",
]

#: the layers of the paper's overhead budget, top of the stack first
LAYERS = ("user", "clic", "kernel", "driver", "nic", "wire")


# ---------------------------------------------------------------------------
# span forest reconstruction and self-time accounting
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One span plus its children, rebuilt from exported parent links."""

    span: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_ns(self) -> float:
        """Wall (simulated) duration of the span."""
        return self.span["end_ns"] - self.span["start_ns"]

    @property
    def self_ns(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(self.duration_ns - sum(c.duration_ns for c in self.children), 0.0)


def span_tree(spans: Iterable[Dict[str, Any]]) -> Tuple[List[SpanNode], Dict[int, SpanNode]]:
    """Rebuild the span forest from export dicts.

    Returns ``(roots, by_id)``: the root nodes in begin order and an
    id -> node index.  A span whose parent id is unknown (filtered out
    upstream, or ``None``) becomes a root.
    """
    by_id: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    nodes = [SpanNode(dict(s)) for s in spans]
    for node in nodes:
        by_id[node.span["id"]] = node
    for node in nodes:
        parent = node.span.get("parent")
        if parent is not None and parent in by_id:
            by_id[parent].children.append(node)
        else:
            roots.append(node)
    return roots, by_id


@dataclass
class ScopeStat:
    """Aggregated timing of every span sharing one ``scope/name``."""

    scope: str
    name: str
    count: int
    total_ns: float
    self_ns: float

    @property
    def key(self) -> str:
        """The ``scope/name`` label used in summary tables."""
        return f"{self.scope}/{self.name}"


def scope_stats(spans: Iterable[Dict[str, Any]]) -> List[ScopeStat]:
    """Per-``scope/name`` totals and self-times, sorted by self-time.

    Self-time is the span's duration minus the duration of its direct
    children — the flame-graph notion of "time spent *here*".
    """
    _, by_id = span_tree(spans)
    agg: Dict[Tuple[str, str], ScopeStat] = {}
    for node in by_id.values():
        key = (node.span["scope"], node.span["name"])
        stat = agg.get(key)
        if stat is None:
            stat = agg[key] = ScopeStat(key[0], key[1], 0, 0.0, 0.0)
        stat.count += 1
        stat.total_ns += node.duration_ns
        stat.self_ns += node.self_ns
    return sorted(agg.values(), key=lambda s: (-s.self_ns, s.key))


def summary_table(spans: Iterable[Dict[str, Any]], top: int = 15,
                  title: str = "Top scopes by self time") -> str:
    """Render the top-N :func:`scope_stats` rows as a text table.

    The bar column scales each scope's self-time against the largest,
    so the report reads like a one-column flame graph.
    """
    stats = scope_stats(spans)[:top]
    if not stats:
        return f"{title}\n(no completed spans)"
    peak = max(s.self_ns for s in stats) or 1.0
    rows = [
        (s.key, s.count, round(s.total_ns / 1000, 2), round(s.self_ns / 1000, 2),
         "#" * max(int(round(s.self_ns / peak * 24)), 1))
        for s in stats
    ]
    return _format_table(["scope/name", "n", "total us", "self us", "self"],
                         rows, title=title)


# ---------------------------------------------------------------------------
# critical-path extraction and layer attribution
# ---------------------------------------------------------------------------

@dataclass
class PathSegment:
    """One hop of a message's critical path, owned by a single layer."""

    name: str
    layer: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        """Length of the hop in simulated nanoseconds."""
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        """Length of the hop in microseconds."""
        return self.duration_ns / 1000.0


@dataclass
class CriticalPath:
    """The gap-free chain of hops a packet's latency decomposes into."""

    packet_id: int
    segments: List[PathSegment]

    @property
    def total_ns(self) -> float:
        """End-to-end time covered by the path."""
        return self.segments[-1].end_ns - self.segments[0].start_ns

    @property
    def total_us(self) -> float:
        """End-to-end time in microseconds."""
        return self.total_ns / 1000.0

    def layer_ns(self) -> Dict[str, float]:
        """Time attributed to each layer (every layer present, ns)."""
        out = {layer: 0.0 for layer in LAYERS}
        for seg in self.segments:
            out[seg.layer] += seg.duration_ns
        return out

    def layer_shares(self) -> Dict[str, float]:
        """Fraction of the end-to-end time owned by each layer."""
        total = self.total_ns or 1.0
        return {layer: ns / total for layer, ns in self.layer_ns().items()}

    def table(self, title: str = "Critical path") -> str:
        """The hop-by-hop path as a text table."""
        rows = [
            (seg.layer, seg.name, round(seg.start_ns / 1000, 2),
             round(seg.duration_us, 2))
            for seg in self.segments
        ]
        return _format_table(["layer", "hop", "start us", "us"], rows,
                            title=f"{title} (pkt {self.packet_id}, "
                                  f"{self.total_us:.1f} us)")


def _first_span(spans: Sequence[Dict[str, Any]], *, scope: Optional[str] = None,
                scope_prefix: Optional[str] = None, name: Optional[str] = None,
                after_ns: Optional[float] = None,
                **attrs: Any) -> Optional[Dict[str, Any]]:
    for s in spans:
        if scope is not None and s["scope"] != scope:
            continue
        if scope_prefix is not None and not s["scope"].startswith(scope_prefix):
            continue
        if name is not None and s["name"] != name:
            continue
        if after_ns is not None and s["start_ns"] < after_ns:
            continue
        if attrs and not all((s.get("attrs") or {}).get(k) == v for k, v in attrs.items()):
            continue
        return s
    return None


def _first_record(records: Sequence[Dict[str, Any]], event: str, *,
                  source_prefix: Optional[str] = None,
                  after_ns: Optional[float] = None,
                  **detail: Any) -> Optional[Dict[str, Any]]:
    for r in records:
        if r["event"] != event:
            continue
        if source_prefix is not None and not r["source"].startswith(source_prefix):
            continue
        if after_ns is not None and r["time"] < after_ns:
            continue
        if detail and not all((r.get("detail") or {}).get(k) == v for k, v in detail.items()):
            continue
        return r
    return None


def critical_path(spans: Sequence[Dict[str, Any]], records: Sequence[Dict[str, Any]],
                  packet_id: int, sender: str, receiver: str) -> CriticalPath:
    """Extract one packet's layer-labeled critical path (stock rx path).

    ``spans``/``records`` are the export-dict forms (e.g. the ``spans``
    and ``records`` of a :class:`~repro.obs.RunArtifact`); ``sender``
    and ``receiver`` are node-name prefixes (``node0``, ``node1``).
    The chain ends at the receiver's wake — the same window Figure 7
    plots — so :func:`fig7_stage_durations` regroups it losslessly.

    Raises :class:`ValueError` when the trace does not contain the full
    stock pipeline for ``packet_id`` (e.g. direct-dispatch runs, which
    have no bottom-half hop).
    """
    sys_span = _first_span(spans, scope=f"{sender}.kernel", name="syscall",
                           label="clic_send")
    clic_tx = _first_span(spans, scope=f"{sender}.clic", name="clic_send")
    drv_tx = _first_record(records, "driver_tx", pkt=packet_id)
    drv_rx = _first_record(records, "driver_rx", pkt=packet_id)
    clic_rx = _first_span(spans, scope=f"{receiver}.clic", name="clic_rx",
                          pkt=packet_id)
    missing = [label for label, found in [
        ("sender syscall span", sys_span), ("clic_send span", clic_tx),
        ("driver_tx", drv_tx), ("driver_rx", drv_rx), ("clic_rx span", clic_rx),
    ] if found is None]
    if missing:
        raise ValueError(f"trace incomplete for packet {packet_id}: missing {missing}")

    nic_tx = _first_span(spans, scope_prefix=f"{sender}.nic", name="nic_tx",
                         after_ns=sys_span["start_ns"])
    nic_rx = _first_span(spans, scope_prefix=f"{receiver}.nic", name="nic_rx",
                         after_ns=drv_tx["time"])
    # The interrupt that drained this frame: the latest receiver irq span
    # opening at or before the frame's driver_rx (coalescing may batch).
    irq_candidates = [
        s for s in spans
        if s["name"] == "irq" and s["scope"].startswith(receiver)
        and s["start_ns"] <= drv_rx["time"]
    ]
    if nic_tx is None or nic_rx is None or not irq_candidates:
        raise ValueError(
            f"trace incomplete for packet {packet_id}: missing NIC/irq spans")
    irq = max(irq_candidates, key=lambda s: s["start_ns"])
    rx_frame = _first_span(spans, scope=irq["scope"], name="rx_frame",
                           after_ns=irq["start_ns"], pkt=packet_id)
    wake = _first_record(records, "wake", source_prefix=receiver,
                         after_ns=clic_rx["start_ns"])
    if wake is None:
        raise ValueError(f"trace incomplete for packet {packet_id}: missing wake")

    segments = [
        PathSegment("syscall entry", "kernel",
                    sys_span["start_ns"], clic_tx["start_ns"]),
        PathSegment("CLIC_MODULE tx + copy", "clic",
                    clic_tx["start_ns"], clic_tx["end_ns"]),
        PathSegment("driver tx call", "driver", clic_tx["end_ns"], drv_tx["time"]),
        PathSegment("NIC DMA + serialize", "nic", drv_tx["time"], nic_tx["end_ns"]),
        PathSegment("flight + switch", "wire", nic_tx["end_ns"], nic_rx["start_ns"]),
        PathSegment("NIC rx buffer", "nic", nic_rx["start_ns"], nic_rx["end_ns"]),
        PathSegment("interrupt coalescing", "nic", nic_rx["end_ns"], irq["start_ns"]),
        PathSegment("irq entry", "driver", irq["start_ns"],
                    rx_frame["start_ns"] if rx_frame is not None else drv_rx["time"]),
        PathSegment("NIC->system copy", "driver",
                    rx_frame["start_ns"] if rx_frame is not None else drv_rx["time"],
                    drv_rx["time"]),
        PathSegment("bottom halves", "kernel", drv_rx["time"], clic_rx["start_ns"]),
        PathSegment("CLIC_MODULE rx + copy to user", "clic",
                    clic_rx["start_ns"], clic_rx["end_ns"]),
        PathSegment("wake + reschedule", "kernel", clic_rx["end_ns"], wake["time"]),
    ]
    # Zero-length hops (e.g. a driver_tx instant coinciding with the span
    # edge) carry no information; out-of-order edges mean the trace was
    # not the single-packet exchange this extraction is defined for.
    for seg in segments:
        if seg.duration_ns < 0:
            raise ValueError(
                f"non-causal hop {seg.name!r} for packet {packet_id} "
                f"({seg.start_ns} -> {seg.end_ns})")
    return CriticalPath(packet_id, [s for s in segments if s.duration_ns > 0.0]
                        or segments[:1])


def layer_attribution(path: CriticalPath) -> Dict[str, float]:
    """Per-layer time (ns) of a critical path; alias of ``layer_ns``."""
    return path.layer_ns()


def attribution_table(layers_ns: Dict[str, float],
                      title: str = "Per-layer attribution") -> str:
    """Render a layer -> ns mapping as a table with share percentages."""
    total = sum(layers_ns.values()) or 1.0
    rows = [
        (layer, round(layers_ns.get(layer, 0.0) / 1000, 2),
         round(layers_ns.get(layer, 0.0) / total * 100, 1))
        for layer in LAYERS
    ]
    rows.append(("TOTAL", round(total / 1000, 2), 100.0))
    return _format_table(["layer", "us", "%"], rows, title=title)


#: critical-path hop name -> classic Figure-7 stage title
_HOP_TO_STAGE = {
    "syscall entry": "sender: syscall + CLIC_MODULE + driver",
    "CLIC_MODULE tx + copy": "sender: syscall + CLIC_MODULE + driver",
    "driver tx call": "sender: syscall + CLIC_MODULE + driver",
    "NIC DMA + serialize": "NIC DMA + flight",
    "flight + switch": "NIC DMA + flight",
    "NIC rx buffer": "NIC DMA + flight",
    "interrupt coalescing": "NIC DMA + flight",
    "irq entry": "receiver: driver interrupt (NIC->system copy)",
    "NIC->system copy": "receiver: driver interrupt (NIC->system copy)",
    "bottom halves": "receiver: post-DMA software path",
    "CLIC_MODULE rx + copy to user": "receiver: post-DMA software path",
    "wake + reschedule": "receiver: post-DMA software path",
}


def fig7_stage_durations(path: CriticalPath) -> Dict[str, float]:
    """Regroup a critical path into Figure-7 stage durations (ns).

    The receiver's two software stages (bottom halves and the module
    copy/wake) are merged into one ``post-DMA software path`` bucket:
    the span boundaries (the ``clic_rx`` span begin) sit slightly
    earlier than the legacy ``module_rx`` instant the flat-trace
    extractor anchors on, so only the *merged* stage is well-defined
    from spans alone.  Cross-check accordingly.
    """
    out: Dict[str, float] = {}
    for seg in path.segments:
        stage = _HOP_TO_STAGE.get(seg.name)
        if stage is None:
            raise KeyError(f"hop {seg.name!r} has no Figure-7 stage mapping")
        out[stage] = out.get(stage, 0.0) + seg.duration_ns
    return out


# ---------------------------------------------------------------------------
# message journeys: waterfalls, latency summaries, outlier explanation
# ---------------------------------------------------------------------------

def _exact_percentile(sorted_vals: Sequence[float], p: float) -> float:
    """Exact (nearest-rank) percentile of an ascending-sorted sequence."""
    if not sorted_vals:
        return 0.0
    rank = math.ceil(p / 100.0 * len(sorted_vals))
    rank = min(max(rank, 1), len(sorted_vals))
    return sorted_vals[rank - 1]


def journey_waterfall(journey: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-hop latency segments of a delivered journey.

    Follows the *delivering fragment* — the packet whose reassembly
    completed the message — through :data:`~repro.obs.journey.HOP_CHAIN`,
    anchoring each hop at its last matching event at or before delivery
    (so for a retransmitted fragment, the copy that actually arrived).
    Segment durations telescope between consecutive anchors; because
    ``send`` anchors at ``start_ns`` and ``deliver`` at ``end_ns``, they
    sum *exactly* to the end-to-end latency.  A duplicate arrival can
    make an individual segment negative; the sum still telescopes.
    """
    if not journey.get("delivered"):
        raise ValueError(f"journey {journey.get('id')} not delivered")
    events = journey["events"]
    deliver_ev = None
    for ev in events:
        if ev["hop"] == "deliver":
            deliver_ev = ev
    if deliver_ev is None:
        raise ValueError(f"journey {journey.get('id')} has no deliver event")
    pkt = deliver_ev.get("pkt")
    end_ns = journey["end_ns"]
    segments: List[Dict[str, Any]] = []
    prev = journey["start_ns"]
    for hop in HOP_CHAIN:
        anchor = None
        for ev in events:
            if ev["hop"] != hop or ev["t"] > end_ns:
                continue
            ev_pkt = ev.get("pkt")
            if ev_pkt is not None and pkt is not None and ev_pkt != pkt:
                continue
            anchor = ev
        if anchor is None:
            continue  # hop not instrumented / skipped on this path
        segments.append({
            "hop": hop,
            "scope": anchor["scope"],
            "t_ns": anchor["t"],
            "dur_ns": anchor["t"] - prev,
        })
        prev = anchor["t"]
    return segments


def journey_latency_summary(journeys: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """p50/p99/p99.9 (exact, nearest-rank) latency summary of a run's
    journeys, plus delivery and retransmission counts."""
    journeys = list(journeys)
    delivered = [j for j in journeys if j.get("delivered")]
    lats = sorted(j["end_ns"] - j["start_ns"] for j in delivered)
    return {
        "messages": len(journeys),
        "delivered": len(delivered),
        "retransmitted": sum(1 for j in delivered if j.get("retransmits")),
        "p50_us": _exact_percentile(lats, 50.0) / 1000.0,
        "p99_us": _exact_percentile(lats, 99.0) / 1000.0,
        "p999_us": _exact_percentile(lats, 99.9) / 1000.0,
        "min_us": (lats[0] / 1000.0) if lats else 0.0,
        "max_us": (lats[-1] / 1000.0) if lats else 0.0,
        "mean_us": (sum(lats) / len(lats) / 1000.0) if lats else 0.0,
    }


def explain_outliers(journeys: Sequence[Dict[str, Any]],
                     top: int = 5) -> List[Dict[str, Any]]:
    """Explain the ``top`` slowest delivered journeys of a run.

    Each explanation names the dominant hop (the largest waterfall
    segment), its share of the end-to-end latency, the percentile band
    the journey sits in (``p99.9`` / ``p99`` / ``p<99``, exact
    nearest-rank thresholds over the whole run), and whether loss drove
    it there (retransmit count + kinds).  Ties break on journey id, so
    the report is deterministic under a fixed seed.
    """
    delivered = [j for j in journeys if j.get("delivered")]
    lats = sorted(j["end_ns"] - j["start_ns"] for j in delivered)
    p99 = _exact_percentile(lats, 99.0)
    p999 = _exact_percentile(lats, 99.9)
    ranked = sorted(delivered,
                    key=lambda j: (-(j["end_ns"] - j["start_ns"]), j["id"]))
    out: List[Dict[str, Any]] = []
    for j in ranked[:top]:
        lat = j["end_ns"] - j["start_ns"]
        segments = journey_waterfall(j)
        dominant = max(segments, key=lambda s: s["dur_ns"]) if segments else None
        kinds = sorted({r["kind"] for r in j.get("retransmits", ())})
        out.append({
            "id": j["id"],
            "key": j["key"],
            "latency_us": lat / 1000.0,
            "band": "p99.9" if lat >= p999 else ("p99" if lat >= p99 else "p<99"),
            "dominant_hop": dominant["hop"] if dominant else None,
            "dominant_us": (dominant["dur_ns"] / 1000.0) if dominant else 0.0,
            "dominant_share": (dominant["dur_ns"] / lat) if dominant and lat else 0.0,
            "retransmits": len(j.get("retransmits", ())),
            "retransmit_kinds": kinds,
            "fragments": j.get("fragments", 0),
        })
    return out


def waterfall_table(journey: Dict[str, Any]) -> str:
    """Render one journey's waterfall as a human-readable table."""
    segments = journey_waterfall(journey)
    total = journey["end_ns"] - journey["start_ns"]
    rows = [
        (seg["hop"], seg["scope"], round(seg["t_ns"] / 1000.0, 3),
         round(seg["dur_ns"] / 1000.0, 3),
         round(seg["dur_ns"] / total * 100.0, 1) if total else 0.0)
        for seg in segments
    ]
    rows.append(("TOTAL", "", round(journey["end_ns"] / 1000.0, 3),
                 round(total / 1000.0, 3), 100.0))
    title = (f"Journey #{journey['id']} {journey['key']} "
             f"({journey['nbytes']} B, {journey.get('fragments', 0)} fragments, "
             f"{len(journey.get('retransmits', ()))} retransmits)")
    return _format_table(["hop", "scope", "t us", "dur us", "%"], rows,
                         title=title)


def outlier_report(journeys: Sequence[Dict[str, Any]], top: int = 5) -> str:
    """Render :func:`explain_outliers` as a human-readable table."""
    rows = [
        (o["id"], o["key"], round(o["latency_us"], 3), o["band"],
         o["dominant_hop"] or "-", round(o["dominant_us"], 3),
         f"{o['dominant_share'] * 100.0:.1f}%",
         o["retransmits"], ",".join(o["retransmit_kinds"]) or "-")
        for o in explain_outliers(journeys, top=top)
    ]
    return _format_table(
        ["journey", "key", "us", "band", "dominant hop", "hop us", "share",
         "retx", "kinds"],
        rows, title=f"Top {len(rows)} slowest journeys")
