"""Typed metric instruments and the registry that names them.

Three instrument kinds, mirroring what the experiments actually report:

* :class:`Counter` — monotonically increasing tallies (interrupts,
  packets, retransmissions, copied bytes);
* :class:`Gauge` — a sampled level with high/low water marks (bottom-half
  queue depth, NIC rx-buffer occupancy);
* :class:`Histogram` — log-bucketed value distribution with streaming
  p50/p95/p99/p99.9 (syscall latency, message sizes).  Bucket boundaries
  grow geometrically by ``growth``, so every percentile estimate carries
  a bounded *relative* error of at most ``growth - 1`` (5% by default);
* :class:`TimeSeries` — a level sampled over *simulated time* (NIC
  rx-buffer depth, tx queue length, in-flight window bytes, switch
  occupancy), exported as Chrome counter events so chrome://tracing
  renders the queue graphs natively.  :class:`TimeSeriesSampler` drives
  a set of series on a configurable cadence from the event loop.

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
dotted names (``node1.kernel.syscall_ns``); one registry is shared by a
whole cluster so a run's metrics snapshot is a single dict.  Time
series are kept out of :meth:`MetricsRegistry.snapshot` (they are bulk
data, exported through the artifact's dedicated ``timeseries`` field).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "TimeSeriesSampler",
]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must not be negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self.value += amount

    def as_dict(self) -> float:
        """Snapshot form: counters export as their bare value."""
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A sampled level that remembers its extremes."""

    __slots__ = ("name", "value", "high_water", "low_water", "samples")

    kind = "gauge"

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0
        self.high_water: float = float("-inf")
        self.low_water: float = float("inf")
        self.samples: int = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        self.samples += 1
        if value > self.high_water:
            self.high_water = value
        if value < self.low_water:
            self.low_water = value

    def inc(self, delta: float = 1.0) -> None:
        """Raise the level by ``delta``."""
        self.set(self.value + delta)

    def dec(self, delta: float = 1.0) -> None:
        """Lower the level by ``delta``."""
        self.set(self.value - delta)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot form: level plus extremes."""
        return {
            "value": self.value,
            "high_water": self.high_water if self.samples else 0.0,
            "low_water": self.low_water if self.samples else 0.0,
            "samples": self.samples,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value!r}, high={self.high_water!r})"


class Histogram:
    """Log-bucketed distribution with streaming percentiles.

    Positive samples land in geometric buckets ``[growth^i, growth^(i+1))``;
    zero and negative samples are kept in a dedicated underflow bucket so
    ``count``/``min``/``max`` stay exact.  A percentile query walks the
    buckets and answers with the geometric midpoint of the bucket holding
    the requested rank, clamped into ``[min, max]`` — so the estimate is
    within a factor ``growth`` of the sorted-list oracle.
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_underflow",
                 "count", "total", "minimum", "maximum")

    kind = "histogram"

    def __init__(self, name: str = "", growth: float = 1.05):
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1 (got {growth!r})")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0  # samples <= 0
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    # -- recording -------------------------------------------------------
    def record(self, value: float) -> None:
        """Fold one sample into the distribution."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0:
            self._underflow += 1
            return
        idx = int(math.floor(math.log(value) / self._log_growth))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    #: alias kept for IntervalStats-style call sites
    observe = record

    # -- queries ---------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0 <= p <= 100).

        Defined edge cases (exact, not bucket-approximated):

        * empty histogram -> ``0.0`` (there is no distribution to ask);
        * ``p == 0`` -> the exact minimum, ``p == 100`` -> the exact
          maximum (a histogram tracks both precisely);
        * a single-sample histogram returns that sample for every ``p``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of [0, 100]")
        if self.count == 0:
            return 0.0
        if p == 0 or self.count == 1:
            return self.minimum
        if p == 100:
            return self.maximum
        rank = max(1, math.ceil(p / 100.0 * self.count))
        if rank <= self._underflow:
            return min(self.minimum, 0.0)
        seen = self._underflow
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                mid = math.exp((idx + 0.5) * self._log_growth)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """The 99.9th percentile (the tail the resilience work gates on)."""
        return self.percentile(99.9)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot form: exact moments plus streaming percentiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, p50={self.p50:.3g})"


class TimeSeries:
    """A level sampled over simulated time: ``(t_ns, value)`` points.

    The instrument itself is passive — something (normally a
    :class:`TimeSeriesSampler`) calls :meth:`sample` on a cadence.
    Points are kept in sample order, which for a single-threaded
    discrete-event simulation is time order.
    """

    __slots__ = ("name", "unit", "points")

    kind = "timeseries"

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        self.unit = unit
        self.points: List[Tuple[float, float]] = []

    def sample(self, t_ns: float, value: float) -> None:
        """Append one ``(time, level)`` observation."""
        self.points.append((t_ns, value))

    def __len__(self) -> int:
        return len(self.points)

    def as_dict(self) -> Dict[str, object]:
        """Export form: unit plus the raw point list."""
        return {
            "unit": self.unit,
            "count": len(self.points),
            "points": [[t, v] for t, v in self.points],
        }

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self.points)})"


class TimeSeriesSampler:
    """Samples a set of gauges into :class:`TimeSeries` on a cadence.

    ``env`` is duck-typed: only ``.now`` and ``.call_later(delay, fn)``
    are used, so the sampler works with any event loop exposing timer
    callbacks.  Probe callables read simulation state and must not
    mutate it — the sampler's timer events interleave with (but never
    reorder or perturb) the simulated workload, so a sampled run's
    simulated results are identical to an unsampled one.

    The sampler re-arms itself until :meth:`stop` is called (do that
    after ``env.run(...)`` returns) or ``max_samples`` ticks have
    fired — the cap keeps an accidentally-leaked sampler from pinning
    an until-queue-empty run alive forever.
    """

    def __init__(self, env: Any, interval_ns: float = 50_000.0,
                 max_samples: int = 100_000):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive (got {interval_ns!r})")
        self.env = env
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []
        self._ticks = 0
        self._stopped = False
        self._started = False

    def add(self, series: TimeSeries, probe: Callable[[], float]) -> TimeSeries:
        """Register ``probe`` to feed ``series`` each tick."""
        self._probes.append((series, probe))
        return series

    def start(self) -> None:
        """Take the first sample now and re-arm every ``interval_ns``."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._sample_all()
        self._arm()

    def stop(self) -> None:
        """Stop sampling; a pending timer becomes a no-op."""
        self._stopped = True

    @property
    def ticks(self) -> int:
        """Number of sampling rounds taken so far."""
        return self._ticks

    def _sample_all(self) -> None:
        now = self.env.now
        for series, probe in self._probes:
            series.sample(now, float(probe()))
        self._ticks += 1

    def _arm(self) -> None:
        self.env.call_later(self.interval_ns, self._tick)

    def _tick(self) -> None:
        if self._stopped or self._ticks >= self.max_samples:
            return
        self._sample_all()
        self._arm()


class MetricsRegistry:
    """A flat, typed namespace of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind is a programming error and
    raises immediately.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    # -- get-or-create ---------------------------------------------------
    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} is a {inst.kind}, not a {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, growth: float = 1.05) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram, growth)

    def timeseries(self, name: str, unit: str = "") -> TimeSeries:
        """Get or create the time series called ``name``."""
        return self._get(name, TimeSeries, unit)

    # -- introspection ---------------------------------------------------
    def peek(self, name: str):
        """The instrument called ``name``, or ``None`` (never creates)."""
        return self._instruments.get(name)

    def discard(self, name: str) -> None:
        """Remove an instrument (no error when absent)."""
        self._instruments.pop(name, None)

    def items(self) -> Iterator[Tuple[str, object]]:
        """(name, instrument) pairs sorted by name."""
        return iter(sorted(self._instruments.items()))

    def snapshot(self) -> Dict[str, object]:
        """name -> plain value (counters) or stats dict, sorted by name.

        Time series are excluded: they are bulk data, exported through
        the artifact's dedicated ``timeseries`` field (see
        :func:`repro.obs.export.timeseries_of`).
        """
        return {name: inst.as_dict() for name, inst in self.items()
                if not isinstance(inst, TimeSeries)}

    def reset(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._instruments)} instruments>"
