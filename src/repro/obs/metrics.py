"""Typed metric instruments and the registry that names them.

Three instrument kinds, mirroring what the experiments actually report:

* :class:`Counter` — monotonically increasing tallies (interrupts,
  packets, retransmissions, copied bytes);
* :class:`Gauge` — a sampled level with high/low water marks (bottom-half
  queue depth, NIC rx-buffer occupancy);
* :class:`Histogram` — log-bucketed value distribution with streaming
  p50/p95/p99/p99.9 (syscall latency, message sizes).  Bucket boundaries
  grow geometrically by ``growth``, so every percentile estimate carries
  a bounded *relative* error of at most ``growth - 1`` (5% by default);
* :class:`TimeSeries` — a level sampled over *simulated time* (NIC
  rx-buffer depth, tx queue length, in-flight window bytes, switch
  occupancy), exported as Chrome counter events so chrome://tracing
  renders the queue graphs natively.  :class:`TimeSeriesSampler` drives
  a set of series on a configurable cadence from the event loop.

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
dotted names (``node1.kernel.syscall_ns``); one registry is shared by a
whole cluster so a run's metrics snapshot is a single dict.  Time
series are kept out of :meth:`MetricsRegistry.snapshot` (they are bulk
data, exported through the artifact's dedicated ``timeseries`` field).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "TimeSeriesSampler",
]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must not be negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self.value += amount

    def as_dict(self) -> float:
        """Snapshot form: counters export as their bare value."""
        return self.value

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's tally into this one (sum)."""
        if isinstance(other, dict):
            other = Counter.from_dict(other)
        self.value += other.value
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Full-fidelity digest form (see :meth:`MetricsRegistry.digest`)."""
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: str = "") -> "Counter":
        c = cls(name)
        c.value = float(data["value"])
        return c

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A sampled level that remembers its extremes."""

    __slots__ = ("name", "value", "high_water", "low_water", "samples")

    kind = "gauge"

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0
        self.high_water: float = float("-inf")
        self.low_water: float = float("inf")
        self.samples: int = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        self.samples += 1
        if value > self.high_water:
            self.high_water = value
        if value < self.low_water:
            self.low_water = value

    def inc(self, delta: float = 1.0) -> None:
        """Raise the level by ``delta``."""
        self.set(self.value + delta)

    def dec(self, delta: float = 1.0) -> None:
        """Lower the level by ``delta``."""
        self.set(self.value - delta)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot form: level plus extremes."""
        return {
            "value": self.value,
            "high_water": self.high_water if self.samples else 0.0,
            "low_water": self.low_water if self.samples else 0.0,
            "samples": self.samples,
        }

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another gauge in: extremes combine, sample counts add,
        and the merged level is the *other* side's (fold order is the
        shard order, so the last-folded shard's level wins — a level has
        no meaningful cross-shard sum)."""
        if isinstance(other, dict):
            other = Gauge.from_dict(other)
        if other.samples:
            self.value = other.value
            self.samples += other.samples
            if other.high_water > self.high_water:
                self.high_water = other.high_water
            if other.low_water < self.low_water:
                self.low_water = other.low_water
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Full-fidelity digest form (see :meth:`MetricsRegistry.digest`)."""
        d = self.as_dict()
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: str = "") -> "Gauge":
        g = cls(name)
        g.samples = int(data["samples"])
        g.value = float(data["value"])
        if g.samples:
            g.high_water = float(data["high_water"])
            g.low_water = float(data["low_water"])
        return g

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value!r}, high={self.high_water!r})"


class Histogram:
    """Log-bucketed distribution with streaming percentiles.

    Positive samples land in geometric buckets ``[growth^i, growth^(i+1))``;
    zero and negative samples are kept in a dedicated underflow bucket so
    ``count``/``min``/``max`` stay exact.  A percentile query walks the
    buckets and answers with the geometric midpoint of the bucket holding
    the requested rank, clamped into ``[min, max]`` — so the estimate is
    within a factor ``growth`` of the sorted-list oracle.
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_underflow",
                 "count", "total", "minimum", "maximum")

    kind = "histogram"

    def __init__(self, name: str = "", growth: float = 1.05):
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1 (got {growth!r})")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0  # samples <= 0
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    # -- recording -------------------------------------------------------
    def record(self, value: float) -> None:
        """Fold one sample into the distribution."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0:
            self._underflow += 1
            return
        idx = int(math.floor(math.log(value) / self._log_growth))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    #: alias kept for IntervalStats-style call sites
    observe = record

    # -- merging ---------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram (or its :meth:`to_dict` form) into this
        one — **losslessly**.

        Log buckets are exact under merge: the merged bucket counts (and
        underflow, count, total, min, max) are identical to recording the
        concatenated sample streams into a single histogram, so every
        percentile of the merged digest equals the single-pass answer.
        Both sides must share the same ``growth`` (bucket boundaries are
        a function of it); merging mismatched digests raises.
        """
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with different growth "
                f"({self.growth!r} vs {other.growth!r})")
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self._underflow += other._underflow
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Full-fidelity digest: everything needed to rebuild the
        histogram exactly (JSON-able — bucket indexes become string
        keys, sorted for deterministic serialization)."""
        return {
            "kind": self.kind,
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "underflow": self._underflow,
            "buckets": {str(idx): self._buckets[idx]
                        for idx in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: str = "") -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` digest form."""
        hist = cls(name, growth=data.get("growth", 1.05))
        hist.count = int(data["count"])
        hist.total = float(data.get("total", 0.0))
        if hist.count:
            hist.minimum = float(data["min"])
            hist.maximum = float(data["max"])
        hist._underflow = int(data.get("underflow", 0))
        hist._buckets = {int(idx): int(n)
                         for idx, n in data.get("buckets", {}).items()}
        return hist

    # -- queries ---------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0 <= p <= 100).

        Defined edge cases (exact, not bucket-approximated):

        * empty histogram -> ``0.0`` (there is no distribution to ask);
        * ``p == 0`` -> the exact minimum, ``p == 100`` -> the exact
          maximum (a histogram tracks both precisely);
        * a single-sample histogram returns that sample for every ``p``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of [0, 100]")
        if self.count == 0:
            return 0.0
        if p == 0 or self.count == 1:
            return self.minimum
        if p == 100:
            return self.maximum
        rank = max(1, math.ceil(p / 100.0 * self.count))
        if rank <= self._underflow:
            return min(self.minimum, 0.0)
        seen = self._underflow
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                mid = math.exp((idx + 0.5) * self._log_growth)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """The 99.9th percentile (the tail the resilience work gates on)."""
        return self.percentile(99.9)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot form: exact moments plus streaming percentiles.

        ``total`` and ``underflow`` ride along so artifact consumers can
        compute means across *merged* snapshots (sum of totals over sum
        of counts) without re-deriving them from ``count * mean``.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "underflow": self._underflow,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, p50={self.p50:.3g})"


class TimeSeries:
    """A level sampled over simulated time: ``(t_ns, value)`` points.

    The instrument itself is passive — something (normally a
    :class:`TimeSeriesSampler`) calls :meth:`sample` on a cadence.
    Points are kept in sample order, which for a single-threaded
    discrete-event simulation is time order.
    """

    __slots__ = ("name", "unit", "points")

    kind = "timeseries"

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        self.unit = unit
        self.points: List[Tuple[float, float]] = []

    def sample(self, t_ns: float, value: float) -> None:
        """Append one ``(time, level)`` observation."""
        self.points.append((t_ns, value))

    def __len__(self) -> int:
        return len(self.points)

    def as_dict(self) -> Dict[str, object]:
        """Export form: unit plus the raw point list."""
        return {
            "unit": self.unit,
            "count": len(self.points),
            "points": [[t, v] for t, v in self.points],
        }

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Append another series' points (shard fold order; points stay
        timestamped, so consumers can re-sort across shards if needed)."""
        if isinstance(other, dict):
            other = TimeSeries.from_dict(other)
        if other.unit and self.unit and other.unit != self.unit:
            raise ValueError(
                f"cannot merge series with units {self.unit!r} vs {other.unit!r}")
        if other.unit and not self.unit:
            self.unit = other.unit
        self.points.extend(other.points)
        return self

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity digest form (see :meth:`MetricsRegistry.digest`)."""
        d = self.as_dict()
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: str = "") -> "TimeSeries":
        ts = cls(name, unit=data.get("unit", ""))
        ts.points = [(float(t), float(v)) for t, v in data.get("points", ())]
        return ts

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self.points)})"


class TimeSeriesSampler:
    """Samples a set of gauges into :class:`TimeSeries` on a cadence.

    ``env`` is duck-typed: only ``.now`` and ``.call_later(delay, fn)``
    are used, so the sampler works with any event loop exposing timer
    callbacks.  Probe callables read simulation state and must not
    mutate it — the sampler's timer events interleave with (but never
    reorder or perturb) the simulated workload, so a sampled run's
    simulated results are identical to an unsampled one.

    The sampler re-arms itself until :meth:`stop` is called (do that
    after ``env.run(...)`` returns) or ``max_samples`` ticks have
    fired — the cap keeps an accidentally-leaked sampler from pinning
    an until-queue-empty run alive forever.
    """

    def __init__(self, env: Any, interval_ns: float = 50_000.0,
                 max_samples: int = 100_000):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive (got {interval_ns!r})")
        self.env = env
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []
        self._observers: List[Callable[[], None]] = []
        self._ticks = 0
        self._stopped = False
        self._started = False
        self._handle: Any = None

    def add(self, series: TimeSeries, probe: Callable[[], float]) -> TimeSeries:
        """Register ``probe`` to feed ``series`` each tick."""
        self._probes.append((series, probe))
        return series

    def on_tick(self, observer: Callable[[], None]) -> None:
        """Register a callback run after each sampling round.

        Observers fire in registration order, *after* every probe of the
        round has sampled — so an observer (e.g. the
        :class:`~repro.obs.health.HealthWatchdog`) sees a consistent
        snapshot of the tick.  Observers must not mutate simulation
        state: they ride the sampler's timer, which interleaves with but
        never perturbs the simulated workload.
        """
        self._observers.append(observer)

    def start(self) -> None:
        """Take the first sample now and re-arm every ``interval_ns``."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._sample_all()
        self._arm()

    def stop(self) -> None:
        """Stop sampling and cancel the pending timer.

        ``call_later`` returns a cancellable handle on the real event
        loop (:class:`repro.sim.TimerHandle`); cancelling it removes the
        live event so a stopped sampler cannot pin an until-queue-empty
        run alive.  Duck-typed envs without handles fall back to the
        no-op-on-fire behavior.
        """
        self._stopped = True
        handle = self._handle
        self._handle = None
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()

    @property
    def ticks(self) -> int:
        """Number of sampling rounds taken so far."""
        return self._ticks

    def _sample_all(self) -> None:
        now = self.env.now
        for series, probe in self._probes:
            series.sample(now, float(probe()))
        self._ticks += 1
        for observer in self._observers:
            observer()

    def _arm(self) -> None:
        self._handle = self.env.call_later(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self._handle = None
        if self._stopped or self._ticks >= self.max_samples:
            return
        self._sample_all()
        self._arm()


class MetricsRegistry:
    """A flat, typed namespace of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind is a programming error and
    raises immediately.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    # -- get-or-create ---------------------------------------------------
    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} is a {inst.kind}, not a {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, growth: float = 1.05) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram, growth)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge by name, without creating it.

        The read-only twin of the get-or-create accessors, for pure
        observers (e.g. health-watchdog probes) that must not perturb
        the registry: a lazily-created counter that never fires must
        stay absent from the snapshot whether or not it was watched.
        """
        inst = self._instruments.get(name)
        return default if inst is None else float(inst.value)

    def timeseries(self, name: str, unit: str = "") -> TimeSeries:
        """Get or create the time series called ``name``.

        Asking for an existing series with a *different* unit raises —
        the same contract as the kind check: silently handing back the
        old unit would let two call sites disagree about what the points
        mean.  An empty ``unit`` on either side is a wildcard (the
        default-argument lookup idiom); a concrete unit fills in a
        previously unit-less series.
        """
        series = self._get(name, TimeSeries, unit)
        if unit and series.unit and series.unit != unit:
            raise ValueError(
                f"timeseries {name!r} has unit {series.unit!r}, not {unit!r}")
        if unit and not series.unit:
            series.unit = unit
        return series

    # -- merging ---------------------------------------------------------
    #: digest ``kind`` tag -> instrument class (rebuild side of
    #: :meth:`digest`/:meth:`merge_from`)
    _KINDS = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram, "timeseries": TimeSeries}

    def digest(self) -> Dict[str, Dict[str, Any]]:
        """Full-fidelity, JSON-able dump of every instrument, sorted by
        name: ``{name: instrument.to_dict()}`` with a ``kind`` tag per
        entry.

        Unlike :meth:`snapshot` (percentile *estimates* for humans and
        artifacts), a digest preserves the raw bucket counts, so
        registries can be shipped across process boundaries and folded
        back together losslessly — the :mod:`repro.parallel` fold-back
        path.
        """
        return {name: inst.to_dict() for name, inst in self.items()}

    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry — or a :meth:`digest` dict — into this one.

        Per-name semantics: counters add, gauges combine extremes (the
        folded-last level wins), histograms merge **exactly** (bucket
        counts add — merged percentiles equal a single-registry run over
        the concatenated samples), and time series concatenate their
        timestamped points.  A name present on both sides with different
        kinds raises, mirroring the get-or-create kind check.  Folding
        shards in submission order is deterministic, so a ``--jobs N``
        fleet fold is byte-identical to the serial one.
        """
        items = other.items() if isinstance(other, MetricsRegistry) \
            else sorted(other.items())
        for name, entry in items:
            if isinstance(entry, dict):
                cls = self._KINDS.get(entry.get("kind"))
                if cls is None:
                    raise ValueError(
                        f"digest entry {name!r} has unknown kind "
                        f"{entry.get('kind')!r}")
                entry = cls.from_dict(entry, name)
            cls = type(entry)
            mine = self._instruments.get(name)
            if mine is None:
                args = (entry.growth,) if cls is Histogram else ()
                mine = self._instruments[name] = cls(name, *args)
            elif type(mine) is not cls:
                raise TypeError(f"metric {name!r} is a {mine.kind}, not a {cls.kind}")
            mine.merge(entry)
        return self

    # -- introspection ---------------------------------------------------
    def peek(self, name: str):
        """The instrument called ``name``, or ``None`` (never creates)."""
        return self._instruments.get(name)

    def discard(self, name: str) -> None:
        """Remove an instrument (no error when absent)."""
        self._instruments.pop(name, None)

    def items(self) -> Iterator[Tuple[str, object]]:
        """(name, instrument) pairs sorted by name."""
        return iter(sorted(self._instruments.items()))

    def snapshot(self) -> Dict[str, object]:
        """name -> plain value (counters) or stats dict, sorted by name.

        Time series are excluded: they are bulk data, exported through
        the artifact's dedicated ``timeseries`` field (see
        :func:`repro.obs.export.timeseries_of`).
        """
        return {name: inst.as_dict() for name, inst in self.items()
                if not isinstance(inst, TimeSeries)}

    def reset(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._instruments)} instruments>"
