"""Declarative SLOs: pure-data objectives evaluated into scorecards.

Production systems gate on *service-level objectives* — "p99 latency
under 2 ms", "loss budget 0", "burn no more than X of the pause budget
per second" — declared as data, not buried in assert statements.  This
module gives the reproduction that layer:

* an :class:`Objective` is one bound on one metric: a ``ceiling`` or
  ``floor`` on a scalar, a ``budget`` (a ceiling that reads as an error
  budget on a counter), or a ``burn_rate`` — the maximum windowed rate
  of increase of a :class:`~repro.obs.metrics.TimeSeries`, in units per
  simulated second;
* an :class:`SLOSpec` is a named bundle of objectives.  Both are frozen
  dataclasses with exact ``to_dict``/``from_dict`` round-trips, so specs
  live in JSON documents, bench baselines and CI configuration rather
  than in code;
* :func:`evaluate` scores a spec against any artifact-shaped document
  (``result`` / ``metrics`` / ``timeseries`` sections, or a bench
  document) and returns a structured scorecard — the thing dashboards
  render and CI fails on.

Metric paths are dotted (``result.latency.p99_us``,
``metrics.switch.pause_time_ns``) and resolve with longest-key-first
matching, so flat registry names containing dots
(``node0.kernel.syscall_ns``) resolve the same way nested dicts do.

Like the rest of :mod:`repro.obs`, nothing here imports
:mod:`repro.sim`: evaluation is a pure function of plain dicts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "OBJECTIVE_KINDS",
    "SCORECARD_SCHEMA",
    "SLO_SCHEMA",
    "Objective",
    "SLOSpec",
    "evaluate",
    "resolve_metric",
    "scorecard_table",
]

SLO_SCHEMA = "repro.slo/1"
SCORECARD_SCHEMA = "repro.slo-scorecard/1"

#: ``ceiling``/``budget`` pass when value <= threshold (a budget is a
#: ceiling that reads as an allowance: loss budget, pause budget);
#: ``floor`` passes when value >= threshold; ``burn_rate`` bounds the
#: max windowed increase rate of a time series (units per second).
OBJECTIVE_KINDS = ("ceiling", "floor", "budget", "burn_rate")

_MISSING = object()


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declared bound on one metric."""

    name: str
    metric: str
    kind: str
    threshold: float
    #: sliding-window width for ``burn_rate`` objectives (ignored
    #: otherwise); 0 means "over the whole series"
    window_ns: float = 0.0
    description: str = ""

    def __post_init__(self):
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"objective {self.name!r}: kind must be one of "
                f"{OBJECTIVE_KINDS}, got {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (drops defaulted fields for compact specs)."""
        d: Dict[str, Any] = {
            "name": self.name, "metric": self.metric,
            "kind": self.kind, "threshold": self.threshold,
        }
        if self.window_ns:
            d["window_ns"] = self.window_ns
        if self.description:
            d["description"] = self.description
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Objective":
        return cls(
            name=data["name"], metric=data["metric"], kind=data["kind"],
            threshold=float(data["threshold"]),
            window_ns=float(data.get("window_ns", 0.0)),
            description=data.get("description", ""),
        )


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """A named bundle of objectives — the declared contract of a run."""

    name: str
    objectives: Tuple[Objective, ...] = ()
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "objectives", tuple(self.objectives))
        seen = set()
        for obj in self.objectives:
            if obj.name in seen:
                raise ValueError(f"duplicate objective name {obj.name!r}")
            seen.add(obj.name)

    def to_dict(self) -> Dict[str, Any]:
        """Schema-tagged plain-dict form (exact round-trip)."""
        return {
            "schema": SLO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "objectives": [o.to_dict() for o in self.objectives],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as deterministic JSON (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLOSpec":
        schema = data.get("schema", SLO_SCHEMA)
        if schema != SLO_SCHEMA:
            raise ValueError(f"unknown SLO schema {schema!r} (want {SLO_SCHEMA!r})")
        return cls(
            name=data["name"],
            objectives=tuple(Objective.from_dict(o)
                             for o in data.get("objectives", ())),
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.objectives)


def resolve_metric(doc: Dict[str, Any], path: str) -> Any:
    """Resolve a dotted metric path against a nested/flat document.

    At every dict level the *longest* matching key wins, so
    ``metrics.node0.kernel.syscall_ns.p99`` finds the flat registry key
    ``node0.kernel.syscall_ns`` inside the ``metrics`` section and then
    the ``p99`` field of its snapshot.  Returns ``None`` when nothing
    matches (a declared objective over absent telemetry scores as
    ``missing``, which is a violation — silence must not pass an SLO).
    """
    found = _walk(doc, path.split("."))
    return None if found is _MISSING else found


def _walk(node: Any, parts: List[str]) -> Any:
    if not parts:
        return node
    if not isinstance(node, dict):
        return _MISSING
    for i in range(len(parts), 0, -1):
        key = ".".join(parts[:i])
        if key in node:
            found = _walk(node[key], parts[i:])
            if found is not _MISSING:
                return found
    return _MISSING


def burn_rate(points: Iterable, window_ns: float = 0.0) -> float:
    """Max windowed increase rate of a sampled series, in units/second.

    ``points`` are ``[t_ns, value]`` pairs in time order.  With a window
    the rate is the largest rise between any two samples no farther
    apart than ``window_ns``, divided by the window; without one it is
    the total rise over the whole series divided by its span.  Only
    *increases* burn budget — a draining queue burns nothing.
    """
    pts = [(float(t), float(v)) for t, v in points]
    if len(pts) < 2:
        return 0.0
    if window_ns <= 0.0:
        span = pts[-1][0] - pts[0][0]
        rise = max(0.0, pts[-1][1] - pts[0][1])
        return rise * 1e9 / span if span > 0 else 0.0
    best = 0.0
    lo = 0
    for hi in range(len(pts)):
        while pts[hi][0] - pts[lo][0] > window_ns:
            lo += 1
        # farthest in-window sample back from hi: the window minimum
        # time is pts[lo]; every lo..hi pair is in-window, and the max
        # rise to hi comes from the in-window minimum value.
        for j in range(lo, hi):
            rise = pts[hi][1] - pts[j][1]
            if rise > best:
                best = rise
    return best * 1e9 / window_ns


def _score(obj: Objective, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Score one objective; returns its scorecard row."""
    raw = resolve_metric(doc, obj.metric)
    row: Dict[str, Any] = {
        "name": obj.name, "metric": obj.metric, "kind": obj.kind,
        "threshold": obj.threshold,
    }
    if obj.window_ns:
        row["window_ns"] = obj.window_ns
    if raw is None:
        row.update(value=None, ok=False, status="missing", margin=None)
        return row
    if obj.kind == "burn_rate":
        points = raw.get("points", raw) if isinstance(raw, dict) else raw
        value = burn_rate(points, obj.window_ns)
    else:
        if isinstance(raw, dict) or not isinstance(raw, (int, float)) \
                or isinstance(raw, bool):
            row.update(value=None, ok=False, status="missing", margin=None)
            return row
        value = float(raw)
    if obj.kind == "floor":
        ok = value >= obj.threshold
        margin = value - obj.threshold
    else:  # ceiling / budget / burn_rate all bound from above
        ok = value <= obj.threshold
        margin = obj.threshold - value
    row.update(value=value, ok=ok,
               status="ok" if ok else "violated", margin=margin)
    return row


def evaluate(spec: SLOSpec, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Score every objective of ``spec`` against ``doc``.

    Returns the structured scorecard: schema-tagged, JSON-able, with one
    row per objective in declaration order and an overall verdict.  A
    missing metric is a violation — an SLO over telemetry that never
    arrived has not been met.
    """
    rows = [_score(obj, doc) for obj in spec.objectives]
    violations = [r["name"] for r in rows if not r["ok"]]
    return {
        "schema": SCORECARD_SCHEMA,
        "slo": spec.name,
        "description": spec.description,
        "ok": not violations,
        "objectives": rows,
        "violations": violations,
    }


def scorecard_table(card: Dict[str, Any]) -> str:
    """Render a scorecard as a human-readable table (violations first)."""
    from ..analysis.tables import format_table

    def fmt(v: Any) -> str:
        return "-" if v is None else f"{v:g}"

    rows = [
        (r["name"], r["metric"], r["kind"], fmt(r["threshold"]),
         fmt(r["value"]), fmt(r["margin"]),
         r["status"].upper() if r["status"] != "ok" else "ok")
        for r in sorted(card["objectives"], key=lambda r: (r["ok"], r["name"]))
    ]
    verdict = "PASS" if card["ok"] else f"FAIL ({len(card['violations'])} violated)"
    table = format_table(
        ["objective", "metric", "kind", "threshold", "value", "margin", "status"],
        rows, title=f"SLO {card['slo']}: {verdict}")
    if card.get("description"):
        table += f"\n  {card['description']}"
    return table
