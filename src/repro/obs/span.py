"""Span-based structured tracing layered on the simulation event loop.

A :class:`Span` is a named interval of simulated time inside a *scope*
(``node0.kernel``, ``node1.eth0``, ``node1.clic`` — node + subsystem).
Spans carry parent links: the parent of a new span is the innermost
span still open *in the same simulated process*, which matches how the
generator-based components actually nest (a syscall span opened by a
user process never becomes the parent of an interrupt handler that
merely fires while the process sleeps — the handler runs in its own
sim process and gets its own stack).

The :class:`Tracer` also emits every begin/end into the flat
:class:`repro.sim.Trace` (events ``span_begin``/``span_end``) so the
classic record stream stays a superset of the old format, and it keeps
an index of *instant* (point) events so Figure-7 stage extraction is a
lookup, not a linear scan over the whole trace.

Everything is cheap when tracing is disabled: one attribute check and a
shared :data:`NULL_SPAN` singleton on the hot paths.

This module intentionally imports nothing from :mod:`repro.sim` — the
``env`` argument is duck-typed (``.now`` and ``.active_process``), and
the ``trace`` argument only needs a ``.record`` method and an
``.enabled`` flag.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["Span", "Instant", "Tracer", "NULL_SPAN"]


class Instant(NamedTuple):
    """A point event kept in the tracer's by-name index."""

    time: float
    scope: str
    name: str
    detail: Dict[str, Any]


class Span:
    """One begin/end interval; also usable as a context manager."""

    __slots__ = ("span_id", "scope", "name", "start_ns", "end_ns",
                 "parent_id", "attrs", "_tracer", "_key")

    def __init__(self, tracer: "Tracer", span_id: int, scope: str, name: str,
                 start_ns: float, parent_id: Optional[int], attrs: Dict[str, Any],
                 key: Any):
        self._tracer = tracer
        self.span_id = span_id
        self.scope = scope
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[float] = None
        self.parent_id = parent_id
        self.attrs = attrs
        self._key = key

    # -- lifecycle -------------------------------------------------------
    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes discovered after begin (e.g. the packet id)."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> "Span":
        """Close the span at the current simulation time."""
        if attrs:
            self.attrs.update(attrs)
        self._tracer._end(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()

    # -- queries ---------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1000.0

    def contains(self, t: float) -> bool:
        """True when ``t`` falls inside the (closed) span."""
        return self.end_ns is not None and self.start_ns <= t <= self.end_ns

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by exporters and artifacts."""
        return {
            "id": self.span_id,
            "scope": self.scope,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "parent": self.parent_id,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        end = f"{self.end_ns:,.0f}" if self.end_ns is not None else "open"
        return f"<Span #{self.span_id} {self.scope}/{self.name} [{self.start_ns:,.0f}..{end}] ns>"


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    span_id = 0
    scope = ""
    name = ""
    start_ns = 0.0
    end_ns = 0.0
    parent_id = None
    attrs: Dict[str, Any] = {}
    complete = True
    duration_ns = 0.0
    duration_us = 0.0

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> "_NullSpan":
        return self

    def contains(self, t: float) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and index for spans/instants of one simulation run."""

    def __init__(self, env: Any, trace: Any = None, enabled: Optional[bool] = None):
        self.env = env
        self.trace = trace
        #: explicit override; when None, follows ``trace.enabled``
        self._enabled = enabled
        #: optional :class:`repro.obs.journey.JourneyRecorder`; ``None``
        #: (the default) disables journey capture — instrumented hop
        #: sites check this attribute inline, independent of span
        #: tracing, so journeys can be on while spans are off
        self.journeys = None
        self._seq = 0
        #: every span ever begun, in begin order (deterministic ids)
        self.spans: List[Span] = []
        self._stacks: Dict[Any, List[Span]] = {}
        self._by_name: Dict[Tuple[str, str], List[Span]] = {}
        self._instants: Dict[str, List[Instant]] = {}

    # -- state -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        if self._enabled is not None:
            return self._enabled
        return bool(self.trace is not None and self.trace.enabled)

    # -- span lifecycle --------------------------------------------------
    def begin(self, scope: str, name: str, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a span; the parent defaults to the innermost open span of
        the same simulated process."""
        if not self.enabled:
            return NULL_SPAN
        now = self.env.now
        key = getattr(self.env, "active_process", None)
        stack = self._stacks.get(key)
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
        elif stack:
            parent_id = stack[-1].span_id
        else:
            parent_id = None
        self._seq += 1
        span = Span(self, self._seq, scope, name, now, parent_id, dict(attrs), key)
        self.spans.append(span)
        self._by_name.setdefault((scope, name), []).append(span)
        if stack is None:
            self._stacks[key] = [span]
        else:
            stack.append(span)
        if self.trace is not None:
            self.trace.record(now, scope, "span_begin",
                              span=span.span_id, name=name, parent=parent_id)
        return span

    def _end(self, span: Span) -> None:
        if span.end_ns is not None:
            raise ValueError(f"span {span.name!r} ended twice")
        now = self.env.now
        span.end_ns = now
        stack = self._stacks.get(span._key)
        if stack is not None:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break
            if not stack:
                del self._stacks[span._key]
        if self.trace is not None:
            self.trace.record(now, span.scope, "span_end",
                              span=span.span_id, name=span.name,
                              dur_ns=now - span.start_ns, **span.attrs)

    # -- instants --------------------------------------------------------
    def instant(self, scope: str, name: str, **detail: Any) -> None:
        """Record a point event (also mirrored into the flat trace under
        the same event name, so legacy record consumers see no change)."""
        if not self.enabled:
            return
        now = self.env.now
        self._instants.setdefault(name, []).append(Instant(now, scope, name, detail))
        if self.trace is not None:
            self.trace.record(now, scope, name, **detail)

    # -- lookups ---------------------------------------------------------
    def find(self, scope: Optional[str] = None, name: Optional[str] = None,
             scope_prefix: Optional[str] = None, **attrs: Any) -> List[Span]:
        """Spans matching scope (exact or prefix), name, and attributes."""
        if scope is not None and name is not None and not attrs:
            return list(self._by_name.get((scope, name), []))
        out = []
        for span in self.spans:
            if scope is not None and span.scope != scope:
                continue
            if scope_prefix is not None and not span.scope.startswith(scope_prefix):
                continue
            if name is not None and span.name != name:
                continue
            if attrs and not all(span.attrs.get(k) == v for k, v in attrs.items()):
                continue
            out.append(span)
        return out

    def first(self, scope: Optional[str] = None, name: Optional[str] = None,
              scope_prefix: Optional[str] = None, **attrs: Any) -> Optional[Span]:
        """First span matching the :meth:`find` filters, or ``None``."""
        found = self.find(scope=scope, name=name, scope_prefix=scope_prefix, **attrs)
        return found[0] if found else None

    def containing(self, t: float, name: Optional[str] = None,
                   scope_prefix: Optional[str] = None) -> Optional[Span]:
        """The latest-starting closed span that contains time ``t``."""
        best: Optional[Span] = None
        for span in self.find(name=name, scope_prefix=scope_prefix):
            if span.contains(t) and (best is None or span.start_ns >= best.start_ns):
                best = span
        return best

    def instants(self, name: str, scope_prefix: Optional[str] = None,
                 **detail: Any) -> List[Instant]:
        """Indexed lookup of point events by name (+ scope/detail filter)."""
        out = self._instants.get(name, [])
        if scope_prefix is not None:
            out = [i for i in out if i.scope.startswith(scope_prefix)]
        if detail:
            out = [i for i in out
                   if all(i.detail.get(k) == v for k, v in detail.items())]
        return list(out)

    def first_instant(self, name: str, scope_prefix: Optional[str] = None,
                      **detail: Any) -> Optional[Instant]:
        """First instant matching the :meth:`instants` filters, or ``None``."""
        found = self.instants(name, scope_prefix=scope_prefix, **detail)
        return found[0] if found else None

    # -- maintenance -----------------------------------------------------
    @property
    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (normally empty after a run)."""
        return [s for s in self.spans if s.end_ns is None]

    def clear(self) -> None:
        """Drop all spans and instants (the id sequence keeps counting)."""
        self.spans.clear()
        self._stacks.clear()
        self._by_name.clear()
        self._instants.clear()

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)} enabled={self.enabled}>"
