"""Exporters: Chrome ``trace_event`` JSON and the per-run artifact.

* :func:`chrome_trace_events` converts spans + trace records — and,
  when present, message journeys and time series — into the
  Chrome/Perfetto ``trace_event`` format (load the file at
  ``chrome://tracing`` or https://ui.perfetto.dev).  Scopes such as
  ``node1.eth0`` map to process ``node1`` / thread ``eth0``; pid/tid
  integers are assigned deterministically (sorted first-appearance), so
  two runs with the same seed produce byte-identical exports.  Journeys
  export as flow events (``ph: "s"/"t"/"f"`` — the viewer draws message
  arrows hop to hop) with the journey id as the flow id; time series
  export as counter events (``ph: "C"`` — rendered as filled queue
  graphs), ordered by series name then sample time.
* :class:`RunArtifact` is the machine-readable JSON every experiment in
  the registry can write (``python -m repro.experiments fig7 --json``):
  schema-tagged, with the result dict, metrics snapshot, optional
  profiler snapshot, and (when tracing was on) the spans and records.

All functions here operate on *plain dicts* (the ``to_dict`` forms), so
an artifact loaded from disk can be re-exported without live objects.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "RUN_SCHEMA",
    "RUN_SCHEMA_V1",
    "RUN_SCHEMA_V2",
    "RUN_SCHEMA_V3",
    "RunArtifact",
    "chrome_trace_events",
    "chrome_trace_json",
    "jsonable",
    "records_of",
    "spans_of",
    "timeseries_of",
]

#: current artifact schema: v4 adds the SLO scorecard (``slo``) and
#: structured health events (``health``); v3 added message journeys
#: (``journeys``) and sampled time series (``timeseries``); v2 added the
#: aggregated EnvProfiler snapshot (``profile``).  Loading accepts
#: v1/v2/v3 documents and upgrades them in place (the new fields just
#: stay empty).
RUN_SCHEMA = "repro.run/4"
RUN_SCHEMA_V3 = "repro.run/3"
RUN_SCHEMA_V2 = "repro.run/2"
RUN_SCHEMA_V1 = "repro.run/1"
BATCH_SCHEMA = "repro.run-batch/1"

#: trace-record event names that carry span bookkeeping (already
#: represented as complete "X" events, so not re-exported as instants)
_SPAN_MARKERS = ("span_begin", "span_end")


def spans_of(tracer) -> List[Dict[str, Any]]:
    """Completed spans of a tracer as export dicts (begin order)."""
    return [s.to_dict() for s in tracer.spans if s.end_ns is not None]


def records_of(trace) -> List[Dict[str, Any]]:
    """Flat trace records as export dicts (append order)."""
    return [
        {"time": r.time, "source": r.source, "event": r.event, "detail": dict(r.detail)}
        for r in trace.records
    ]


def timeseries_of(metrics) -> Dict[str, Any]:
    """All :class:`~repro.obs.metrics.TimeSeries` of a registry as export
    dicts keyed by series name (sorted — deterministic)."""
    out: Dict[str, Any] = {}
    for name, metric in sorted(metrics.items()):
        if getattr(metric, "kind", None) == "timeseries":
            out[name] = metric.as_dict()
    return out


def _split_scope(scope: str) -> Tuple[str, str]:
    """``node0.kernel`` -> (process ``node0``, thread ``kernel``)."""
    if "." in scope:
        pid, tid = scope.split(".", 1)
        return pid, tid
    return scope, "main"


def _split_series(name: str) -> Tuple[str, str]:
    """``node0.nic0.rx_buffer_depth`` -> (scope ``node0.nic0``,
    counter ``rx_buffer_depth``) — the scope half then feeds
    :func:`_split_scope` like any span scope."""
    if "." in name:
        scope, counter = name.rsplit(".", 1)
        return scope, counter
    return "metrics", name


def _scope_ids(scopes: Iterable[str]) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Deterministic pid/tid integer assignment (sorted names, from 1)."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for scope in sorted(set(scopes)):
        pname, tname = _split_scope(scope)
        if pname not in pids:
            pids[pname] = len(pids) + 1
        key = (pname, tname)
        if key not in tids:
            tids[key] = len(tids) + 1
    return pids, tids


def chrome_trace_events(
    spans: Iterable[Dict[str, Any]] = (),
    records: Iterable[Dict[str, Any]] = (),
    journeys: Iterable[Dict[str, Any]] = (),
    timeseries: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from span/record export dicts.

    Spans become complete ("X") events with microsecond timestamps;
    records (except span bookkeeping) become instant ("i") events;
    journeys become flow-event chains ("s"/"t"/"f", flow id = journey
    id); time series become counter events ("C").  Output order is
    fixed — metadata, spans, records, flows (journey order), counters
    (sorted series name) — so exports are byte-identical across runs.
    """
    spans = list(spans)
    records = [r for r in records if r["event"] not in _SPAN_MARKERS]
    journeys = list(journeys)
    timeseries = dict(timeseries or {})
    scopes = [s["scope"] for s in spans] + [r["source"] for r in records]
    for j in journeys:
        scopes.extend(e["scope"] for e in j.get("events", ()))
    scopes.extend(_split_series(name)[0] for name in timeseries)
    pids, tids = _scope_ids(scopes)

    events: List[Dict[str, Any]] = []
    for pname, pid in sorted(pids.items()):
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": pname},
        })
    for (pname, tname), tid in sorted(tids.items()):
        events.append({
            "ph": "M", "pid": pids[pname], "tid": tid, "name": "thread_name",
            "args": {"name": tname},
        })
    for s in spans:
        pname, tname = _split_scope(s["scope"])
        args = dict(s.get("attrs") or {})
        args["span"] = s["id"]
        if s.get("parent") is not None:
            args["parent"] = s["parent"]
        events.append({
            "ph": "X",
            "pid": pids[pname],
            "tid": tids[(pname, tname)],
            "name": s["name"],
            "cat": s["scope"],
            "ts": round(s["start_ns"] / 1000.0, 6),
            "dur": round((s["end_ns"] - s["start_ns"]) / 1000.0, 6),
            "args": args,
        })
    for r in records:
        pname, tname = _split_scope(r["source"])
        events.append({
            "ph": "i",
            "s": "t",
            "pid": pids[pname],
            "tid": tids[(pname, tname)],
            "name": r["event"],
            "cat": r["source"],
            "ts": round(r["time"] / 1000.0, 6),
            "args": dict(r.get("detail") or {}),
        })
    for j in journeys:
        hops = list(j.get("events", ()))
        for idx, ev in enumerate(hops):
            pname, tname = _split_scope(ev["scope"])
            ph = "s" if idx == 0 else ("f" if idx == len(hops) - 1 else "t")
            args = {k: v for k, v in ev.items() if k not in ("t", "scope")}
            args["journey"] = j["key"]
            flow = {
                "ph": ph,
                "id": j["id"],
                "pid": pids[pname],
                "tid": tids[(pname, tname)],
                "name": "journey",
                "cat": "journey," + ev["hop"],
                "ts": round(ev["t"] / 1000.0, 6),
                "args": args,
            }
            if ph == "f":
                flow["bp"] = "e"  # bind the flow end to the enclosing slice
            events.append(flow)
    for name in sorted(timeseries):
        series = timeseries[name]
        scope, counter = _split_series(name)
        pname, tname = _split_scope(scope)
        for t_ns, value in series.get("points", ()):
            events.append({
                "ph": "C",
                "pid": pids[pname],
                "tid": tids[(pname, tname)],
                "name": counter,
                "cat": scope,
                "ts": round(t_ns / 1000.0, 6),
                "args": {"value": value},
            })
    return events


def chrome_trace_json(
    spans: Iterable[Dict[str, Any]] = (),
    records: Iterable[Dict[str, Any]] = (),
    journeys: Iterable[Dict[str, Any]] = (),
    timeseries: Optional[Dict[str, Any]] = None,
    indent: Optional[int] = None,
) -> str:
    """The full Chrome trace document as a JSON string (deterministic)."""
    doc = {
        "displayTimeUnit": "ns",
        "traceEvents": chrome_trace_events(spans, records, journeys, timeseries),
    }
    return json.dumps(jsonable(doc), indent=indent, sort_keys=True)


def jsonable(obj: Any) -> Any:
    """Recursively coerce ``obj`` into JSON-serializable builtins.

    Tuples become lists, dataclasses become dicts, dict keys become
    strings, non-finite floats become ``None``, and anything else falls
    back to ``repr`` — so an arbitrary experiment result dict can always
    be written to disk.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [jsonable(v) for v in seq]
    if hasattr(obj, "as_dict"):
        return jsonable(obj.as_dict())
    return repr(obj)


@dataclasses.dataclass
class RunArtifact:
    """The machine-readable output of one experiment run."""

    experiment: str
    quick: bool = True
    result: Dict[str, Any] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    profile: Dict[str, Any] = dataclasses.field(default_factory=dict)
    spans: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    records: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    journeys: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    timeseries: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: SLO scorecard (see :func:`repro.obs.slo.evaluate`) — empty when
    #: the run declared no SLO spec
    slo: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: structured health events (see :mod:`repro.obs.health`), simulated
    #: time order
    health: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    schema: str = RUN_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form of the artifact."""
        return jsonable(dataclasses.asdict(self))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the artifact (sorted keys, deterministic)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the artifact JSON to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def chrome_json(self, indent: Optional[int] = None) -> str:
        """Chrome trace document for this artifact's spans/records/
        journeys/time series."""
        return chrome_trace_json(self.spans, self.records, self.journeys,
                                 self.timeseries, indent=indent)

    # -- loading ---------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunArtifact":
        """Validate + rebuild an artifact from its JSON dict form."""
        if not isinstance(data, dict):
            raise ValueError(f"artifact must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema")
        if schema not in (RUN_SCHEMA, RUN_SCHEMA_V3, RUN_SCHEMA_V2, RUN_SCHEMA_V1):
            raise ValueError(f"unknown artifact schema {schema!r} (want {RUN_SCHEMA!r})")
        if not data.get("experiment"):
            raise ValueError("artifact missing 'experiment'")
        fields = {f.name for f in dataclasses.fields(cls)}
        loaded = cls(**{k: v for k, v in data.items() if k in fields})
        # v1/v2/v3 documents upgrade in place: same fields, the newer
        # ones (profile / journeys / timeseries / slo / health) just
        # stay empty.
        loaded.schema = RUN_SCHEMA
        return loaded

    @classmethod
    def load(cls, path: str) -> "RunArtifact":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
