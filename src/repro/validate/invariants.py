"""Machine-checkable protocol invariants over a finished run.

:func:`check_run` consumes a **run record** — the JSON-able summary a
:mod:`runner <repro.validate.runner>` assembles from the channel probe
logs, app-level traffic journals, and the frame counters of every layer
— and returns the list of :class:`Violation`\\ s found.  An empty list
is the pass verdict the fuzzer aggregates.

The catalog (stable ids, referenced by tests and docs):

``delivery.exactly_once_in_order``
    Per (src, dst) channel the receiver observed *exactly* the message
    sequence the sender submitted — no loss, duplication or reordering.
    A channel whose sender legitimately failed (permanent fault) must
    deliver a strict prefix.
``delivery.exactly_once``
    Channel-sequence level: no sequence number was handed to the
    application twice, however many copies the wire delivered
    (duplicate suppression held).
``delivery.in_order``
    Channel-sequence level: the application-delivery order of sequence
    numbers is strictly increasing, whatever reordering the wire
    applied (the reassembly stash held).
``delivery.bytes_conserved``
    Per-node CLIC module counters agree with the app-level journals:
    every byte counted sent was submitted, every byte counted received
    was delivered (user -> CLIC accounting).
``frames.conserved``
    Frame conservation across NIC -> wire -> switch -> wire -> NIC:
    per-channel ``offered + duplicated == delivered + lost`` (byte
    conservation net of counted duplicates) and the cluster-wide chain
    sums match hop by hop (nothing vanishes outside a counted drop).
    Checked only for converged runs — a livelocked run has frames
    legitimately in flight at teardown.
``memory.bounded``
    No buffer outgrew its configured bound: receiver reorder stashes
    stayed within ``stash_limit``, switch egress queues within their
    capacity, NIC rx buffers within the ring — adversarial reordering /
    duplication / overload cannot grow memory without bound.
``acks.monotone``
    Cumulative acks never move backwards: the receiver's emitted acks
    are non-decreasing, every ack the sender applies advances the base
    contiguously, and the sender's base never overtakes the receiver.
``channel.bookkeeping``
    ``next_seq == base + in_flight`` and registration counts match —
    the sliding-window ledger balances.
``rto.karn``
    Karn's rule: no RTT sample was ever taken from a sequence number
    that had been retransmitted (its RTT is ambiguous).
``rto.bounds``
    Backoff monotonicity per timeout (the armed RTO never shrinks on
    timeout and never exceeds the estimator's cap).
``window.respected``
    In-flight occupancy never exceeded the advertised window at
    registration time.
``peer_death.convergence``
    Channels fail (and peers are declared dead) *iff* the scenario
    contains a permanent fault cutting them off; transient faults must
    always be survived within the retry budget.
``sim.convergence``
    By the horizon every sender has drained or failed and every
    workload process finished (unless cut off by a failed channel) —
    no livelock, no deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from .scenario import Scenario

__all__ = ["Violation", "check_run", "INVARIANTS"]

#: stable invariant ids (the catalog above)
INVARIANTS = (
    "delivery.exactly_once_in_order",
    "delivery.exactly_once",
    "delivery.in_order",
    "delivery.bytes_conserved",
    "frames.conserved",
    "memory.bounded",
    "acks.monotone",
    "channel.bookkeeping",
    "rto.karn",
    "rto.bounds",
    "window.respected",
    "peer_death.convergence",
    "sim.convergence",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which rule, where, and what was seen."""

    invariant: str
    subject: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-safe form (the replay-artifact payload)."""
        return {"invariant": self.invariant, "subject": self.subject, "detail": self.detail}

    @classmethod
    def from_dict(cls, doc: Dict[str, str]) -> "Violation":
        return cls(doc["invariant"], doc["subject"], doc["detail"])


def _channel_nodes(key: str) -> tuple:
    src, dst = key.split("->")
    return int(src), int(dst)


def _is_prefix(shorter: List[Any], longer: List[Any]) -> bool:
    return len(shorter) <= len(longer) and longer[: len(shorter)] == shorter


def _check_delivery(record: Dict[str, Any], out: List[Violation]) -> None:
    for key, ch in record["channels"].items():
        attempted = ch.get("attempted", [])
        sent = ch.get("sent", [])
        received = ch.get("received", [])
        failed = bool(ch.get("sender") and ch["sender"]["failed"])
        if not _is_prefix(sent, attempted):
            out.append(Violation(
                "delivery.exactly_once_in_order", key,
                f"completed sends {sent} are not a prefix of attempted {attempted}",
            ))
            continue
        if failed:
            if not _is_prefix(received, sent):
                out.append(Violation(
                    "delivery.exactly_once_in_order", key,
                    f"failed channel delivered {received}, not a prefix of sent {sent}",
                ))
        elif received != sent or sent != attempted:
            out.append(Violation(
                "delivery.exactly_once_in_order", key,
                f"attempted {attempted}, completed {sent}, delivered {received}",
            ))


def _check_bytes(record: Dict[str, Any], out: List[Violation]) -> None:
    scenario = record["scenario"]
    if scenario["protocol"] != "clic":
        return
    for node_key, counters in record.get("modules", {}).items():
        node = int(node_key)
        sent = [m for key, ch in record["channels"].items()
                for m in ch.get("sent", []) if _channel_nodes(key)[0] == node]
        received = [m for key, ch in record["channels"].items()
                    for m in ch.get("received", []) if _channel_nodes(key)[1] == node]
        expect = {
            "msgs_sent": len(sent),
            "bytes_sent": sum(m[1] for m in sent),
            "msgs_rx": len(received),
            "bytes_rx": sum(m[1] for m in received),
        }
        for name, want in expect.items():
            got = counters.get(name, 0)
            if got != want:
                out.append(Violation(
                    "delivery.bytes_conserved", f"node{node}",
                    f"{name}: module counted {got}, app journal says {want}",
                ))


def _check_sender_log(key: str, sender: Dict[str, Any], out: List[Violation]) -> None:
    # -- acks.monotone: contiguous, strictly-advancing cumulative acks
    cum = 0
    for event in sender["events"]:
        if event[0] != "ack":
            continue
        _, base_before, new_cum = event
        if base_before != cum or new_cum <= base_before:
            out.append(Violation(
                "acks.monotone", key,
                f"ack advanced base {base_before} -> {new_cum} but previous base was {cum}",
            ))
        cum = new_cum
    if sender["base"] != cum:
        out.append(Violation(
            "acks.monotone", key,
            f"final base {sender['base']} does not match last applied ack {cum}",
        ))

    # -- channel.bookkeeping: the window ledger balances
    if sender["next_seq"] != sender["base"] + sender["in_flight"]:
        out.append(Violation(
            "channel.bookkeeping", key,
            f"next_seq {sender['next_seq']} != base {sender['base']}"
            f" + in_flight {sender['in_flight']}",
        ))
    if sender["registered"] != sender["next_seq"]:
        out.append(Violation(
            "channel.bookkeeping", key,
            f"registered {sender['registered']} packets but next_seq is {sender['next_seq']}",
        ))

    # -- rto.karn: no RTT sample from a retransmitted sequence
    retransmitted = set()
    for event in sender["events"]:
        if event[0] == "retx":
            retransmitted.update(event[2])
        elif event[0] == "rtt" and event[1] in retransmitted:
            out.append(Violation(
                "rto.karn", key,
                f"RTT sampled from seq {event[1]} after it was retransmitted",
            ))

    # -- rto.bounds: backoff never shrinks the timer nor exceeds the cap
    for event in sender["events"]:
        if event[0] != "timeout":
            continue
        _, before, after, max_ns = event
        if after < before:
            out.append(Violation(
                "rto.bounds", key, f"RTO shrank on timeout: {before} -> {after}"
            ))
        if after > max_ns:
            out.append(Violation(
                "rto.bounds", key, f"RTO {after} exceeds cap {max_ns}"
            ))

    # -- window.respected
    for in_flight, window in sender.get("window_violations", []):
        out.append(Violation(
            "window.respected", key, f"{in_flight} packets in flight with window {window}"
        ))


def _check_receiver_log(key: str, ch: Dict[str, Any], out: List[Violation]) -> None:
    receiver = ch["receiver"]
    seqs = receiver.get("delivered_seqs")
    if seqs is not None:
        repeats = sorted({s for i, s in enumerate(seqs) if s in seqs[:i]})
        if repeats:
            out.append(Violation(
                "delivery.exactly_once", key,
                f"seqs delivered to the application twice: {repeats[:16]}",
            ))
        disorder = [(a, b) for a, b in zip(seqs, seqs[1:]) if b <= a]
        if disorder:
            out.append(Violation(
                "delivery.in_order", key,
                f"application-delivery order regressed at {disorder[:16]}",
            ))
    if "max_stash" in receiver and "stash_limit" in receiver:
        if receiver["max_stash"] > receiver["stash_limit"]:
            out.append(Violation(
                "memory.bounded", key,
                f"reorder stash reached {receiver['max_stash']} entries"
                f" (limit {receiver['stash_limit']})",
            ))
    acks = receiver["acks_emitted"]
    if any(b < a for a, b in zip(acks, acks[1:])):
        out.append(Violation(
            "acks.monotone", key, f"receiver acks went backwards: {acks}"
        ))
    if acks and acks[-1] > receiver["expected"]:
        out.append(Violation(
            "acks.monotone", key,
            f"acked {acks[-1]} beyond delivered frontier {receiver['expected']}",
        ))
    sender = ch.get("sender")
    if sender is not None and sender["base"] > receiver["expected"]:
        out.append(Violation(
            "acks.monotone", key,
            f"sender base {sender['base']} overtook receiver frontier {receiver['expected']}",
        ))


def _check_peer_death(record: Dict[str, Any], out: List[Violation]) -> None:
    scenario = Scenario.from_dict(record["scenario"])
    permanent = scenario.permanent_fault
    fault_node = int(scenario.fault_args.get("node", -1))
    dead = {int(n): {int(p) for p in peers} for n, peers in record["dead_peers"].items()}

    for key, ch in record["channels"].items():
        sender = ch.get("sender")
        if sender is None or not sender["failed"]:
            continue
        src, dst = _channel_nodes(key)
        if not permanent:
            out.append(Violation(
                "peer_death.convergence", key,
                f"channel failed under a transient '{scenario.fault_kind}' fault",
            ))
        elif src != fault_node and dst != fault_node:
            out.append(Violation(
                "peer_death.convergence", key,
                f"channel failed but does not cross fault node {fault_node}",
            ))
        if scenario.protocol == "clic" and dst not in dead.get(src, set()):
            out.append(Violation(
                "peer_death.convergence", key,
                f"sender failed but node{src} never declared peer {dst} dead",
            ))

    for node, peers in dead.items():
        for peer in peers:
            if not permanent:
                out.append(Violation(
                    "peer_death.convergence", f"node{node}",
                    f"declared peer {peer} dead under a transient "
                    f"'{scenario.fault_kind}' fault",
                ))
            elif node != fault_node and peer != fault_node:
                out.append(Violation(
                    "peer_death.convergence", f"node{node}",
                    f"declared peer {peer} dead; neither is fault node {fault_node}",
                ))


def _check_convergence(record: Dict[str, Any], out: List[Violation]) -> None:
    failed_into = set()
    for key, ch in record["channels"].items():
        sender = ch.get("sender")
        if sender is None:
            continue
        src, dst = _channel_nodes(key)
        if sender["failed"]:
            failed_into.add(dst)
        elif sender["in_flight"] > 0:
            out.append(Violation(
                "sim.convergence", key,
                f"sender still has {sender['in_flight']} packets in flight at the "
                "horizon without having failed",
            ))
    for proc in record.get("procs_unfinished", []):
        node = int(proc.get("node", -1))
        if proc.get("role") == "rx" and node in failed_into:
            continue  # cut off by a failed channel: expected to block
        out.append(Violation(
            "sim.convergence", f"node{node}",
            f"process {proc.get('name')} never finished",
        ))


def _check_frames(record: Dict[str, Any], out: List[Violation]) -> None:
    frames = record.get("frames")
    if not frames:
        return
    links = frames["links"]
    for name, c in links.items():
        duplicated = c.get("frames_duplicated", 0)
        if c["frames_offered"] + duplicated != c["frames"] + c["frames_lost"]:
            out.append(Violation(
                "frames.conserved", name,
                f"offered {c['frames_offered']} + duplicated {duplicated}"
                f" != delivered {c['frames']} + lost {c['frames_lost']}",
            ))

    def link_sum(direction: str, counter: str) -> float:
        return sum(c[counter] for name, c in links.items()
                   if name.endswith("." + direction))

    def trunk_sum(counter: str) -> float:
        # Switch-to-switch links (multi-switch fabrics); zero on the
        # legacy star, keeping its equations — and artifacts — intact.
        return sum(c[counter] for name, c in links.items()
                   if name.startswith("trunk."))

    nic, switch = frames["nic"], frames["switch"]
    chain = [
        ("NIC tx -> wire", nic["tx_frames"], link_sum("up", "frames_offered")),
        # ``forwarded`` sums over every switch, so a frame crossing a
        # trunk is forwarded once per hop — the trunk terms balance it.
        ("wire -> switch",
         link_sum("up", "frames") + trunk_sum("frames"),
         switch["forwarded"]),
        ("switch -> wire",
         switch["forwarded"],
         link_sum("down", "frames_offered") + trunk_sum("frames_offered")
         + switch["drops"] + switch["blackout_drops"] + switch["unknown_dst"]
         + switch["hairpin_dropped"]),
        ("wire -> NIC rx", link_sum("down", "frames"), nic["rx_frames"]),
    ]
    for hop, left, right in chain:
        if left != right:
            out.append(Violation(
                "frames.conserved", hop, f"{left} frames in, {right} accounted"
            ))
    for counter in ("unknown_dst", "hairpin_dropped"):
        if switch[counter]:
            out.append(Violation(
                "frames.conserved", "switch",
                f"{switch[counter]} frames hit {counter} (wiring bug)",
            ))


def _check_memory(record: Dict[str, Any], out: List[Violation]) -> None:
    # High-water marks are valid whether or not the run converged
    # (receiver stashes are audited per channel in _check_receiver_log).
    frames = record.get("frames")
    if not frames:
        return
    switch = frames.get("switch", {})
    if "max_queue_depth" in switch and "queue_capacity" in switch:
        if switch["max_queue_depth"] > switch["queue_capacity"]:
            out.append(Violation(
                "memory.bounded", "switch",
                f"egress queue reached {switch['max_queue_depth']} frames"
                f" (capacity {switch['queue_capacity']})",
            ))
    nic = frames.get("nic", {})
    if "rx_buffer_peak" in nic and "rx_ring_slots" in nic:
        if nic["rx_buffer_peak"] > nic["rx_ring_slots"]:
            out.append(Violation(
                "memory.bounded", "nic",
                f"rx buffer reached {nic['rx_buffer_peak']} frames"
                f" (ring has {nic['rx_ring_slots']} slots)",
            ))


def check_run(record: Dict[str, Any]) -> List[Violation]:
    """Evaluate the full invariant catalog over one run record."""
    out: List[Violation] = []
    _check_delivery(record, out)
    _check_bytes(record, out)
    _check_memory(record, out)
    for key, ch in record["channels"].items():
        if ch.get("sender") is not None:
            _check_sender_log(key, ch["sender"], out)
        if ch.get("receiver") is not None:
            _check_receiver_log(key, ch, out)
    _check_peer_death(record, out)
    before = len(out)
    _check_convergence(record, out)
    converged = len(out) == before
    if converged:
        # Frame counters are only settled once everything drained.
        _check_frames(record, out)
    return out
