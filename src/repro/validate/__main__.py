"""CLI: ``python -m repro.validate {fuzz,replay}``.

``fuzz`` runs a seeded campaign of generated scenarios (fanned out via
:mod:`repro.parallel`), shrinks every failure to a minimal reproducer,
and writes one ``REPLAY_<seed>_<index>.json`` artifact per failing
scenario.  ``replay`` re-runs such an artifact and verifies the
recorded violations reproduce bit-identically.  Exit status is 0 only
for a clean campaign / an exact reproduction.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from ..parallel import run_tasks
from .invariants import Violation
from .runner import run_scenario
from .scenario import SCHEMA, Scenario, generate_scenario
from .shrink import shrink

__all__ = ["main"]


def _run_violations(scenario: Scenario) -> List[Violation]:
    report = run_scenario(scenario.to_dict())
    return [Violation.from_dict(v) for v in report["violations"]]


def _fuzz(args: argparse.Namespace) -> int:
    scenarios = [generate_scenario(args.seed, i) for i in range(args.budget)]
    if args.flow_mode != "scenario":
        # Force the engine on every case (the CI flow-mode campaign re-
        # runs the whole catalog under "auto"); the default keeps the
        # per-scenario drawn axis.
        from dataclasses import replace

        scenarios = [replace(s, flow_mode=args.flow_mode) for s in scenarios]
    if args.topology != "scenario":
        # Same idea for the fabric: CI re-runs the catalog on every
        # multi-switch layout without touching the other axes.
        from dataclasses import replace

        scenarios = [replace(s, topology=args.topology) for s in scenarios]
    specs = [s.to_dict() for s in scenarios]
    reports = run_tasks(run_scenario, specs, jobs=args.jobs)
    failures = [(i, r) for i, r in enumerate(reports) if r["violations"]]
    frames = sum(r["stats"]["frames_offered"] for r in reports)
    lost = sum(r["stats"]["frames_lost"] for r in reports)
    print(
        f"fuzz: {args.budget} scenarios, seed {args.seed} — "
        f"{len(failures)} failing, {frames:.0f} frames offered ({lost:.0f} lost)"
    )
    if not failures:
        return 0

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for index, report in failures:
        scenario = Scenario.from_dict(report["scenario"])
        violations = [Violation.from_dict(v) for v in report["violations"]]
        for v in violations:
            print(f"  [{index}] {v.invariant} @ {v.subject}: {v.detail}")
        if args.shrink:
            result = shrink(scenario, violations, _run_violations)
            scenario, violations = result.scenario, result.violations
            print(
                f"  [{index}] shrunk to {len(scenario.messages)} message(s) "
                f"in {result.runs} runs"
            )
        artifact = {
            "schema": SCHEMA,
            "master_seed": args.seed,
            "index": index,
            "scenario": scenario.to_dict(),
            "violations": [v.to_dict() for v in violations],
        }
        path = out_dir / f"REPLAY_{args.seed}_{index}.json"
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
        print(f"  [{index}] wrote {path}")
    return 1


def _replay(args: argparse.Namespace) -> int:
    artifact = json.loads(Path(args.artifact).read_text())
    if artifact.get("schema") != SCHEMA:
        print(f"replay: unsupported schema {artifact.get('schema')!r}", file=sys.stderr)
        return 2
    report = run_scenario(artifact["scenario"])
    expected = artifact["violations"]
    got = report["violations"]
    if got == expected:
        print(
            f"replay: reproduced {len(got)} violation(s) bit-identically "
            f"(seed {artifact.get('master_seed')}, index {artifact.get('index')})"
        )
        for v in got:
            print(f"  {v['invariant']} @ {v['subject']}: {v['detail']}")
        return 0
    print("replay: MISMATCH — the artifact did not reproduce")
    print(f"  expected: {json.dumps(expected, indent=2)}")
    print(f"  got:      {json.dumps(got, indent=2)}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="protocol invariant harness: seeded fuzzing and replay",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run a seeded fuzz campaign")
    fuzz.add_argument("--budget", type=int, default=25,
                      help="number of scenarios to generate (default 25)")
    fuzz.add_argument("--seed", type=int, default=7, help="campaign master seed")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker processes (0 = all cores)")
    fuzz.add_argument("--out", default=".",
                      help="directory for REPLAY_*.json artifacts")
    fuzz.add_argument("--flow-mode", choices=("scenario", "off", "auto"),
                      default="scenario",
                      help="override the drawn flow_mode axis on every "
                           "scenario (default: keep the per-scenario draw)")
    fuzz.add_argument("--topology", choices=("scenario", "star", "fat-tree", "chain"),
                      default="scenario",
                      help="override the drawn topology axis on every "
                           "scenario (default: keep the per-scenario draw)")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="write failing scenarios unshrunk")
    fuzz.set_defaults(func=_fuzz)

    replay = sub.add_parser("replay", help="re-run a REPLAY_*.json artifact")
    replay.add_argument("artifact", help="path to the artifact")
    replay.set_defaults(func=_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
