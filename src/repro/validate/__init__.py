"""``repro.validate`` — the protocol invariant harness.

FoundationDB-style simulation fuzzing for the CLIC reproduction: a
seeded generator composes random fault plans x traffic patterns x
config axes into pure-data :class:`Scenario` specs; each runs in a
fully instrumented cluster whose reliability channels report to a
:class:`ProbeRecorder`; the :mod:`invariant catalog
<repro.validate.invariants>` then judges the run.  Failing scenarios
are :mod:`shrunk <repro.validate.shrink>` to minimal reproducers and
written as ``REPLAY_<seed>.json`` artifacts that re-run bit-identically
(``python -m repro.validate replay``).

CLI::

    python -m repro.validate fuzz --budget 25 --seed 7 --jobs 2
    python -m repro.validate replay REPLAY_7.json
"""

from .invariants import INVARIANTS, Violation, check_run
from .probes import ProbeRecorder
from .runner import execute, run_scenario
from .scenario import Message, Scenario, generate_scenario
from .shrink import shrink

__all__ = [
    "INVARIANTS",
    "Message",
    "ProbeRecorder",
    "Scenario",
    "Violation",
    "check_run",
    "execute",
    "generate_scenario",
    "run_scenario",
    "shrink",
]
