"""Pure-data fuzz scenarios: config axes x fault plans x traffic.

A :class:`Scenario` is everything needed to rebuild one randomized run
bit-identically: protocol, cluster knobs (MTU, 0-copy, coalescing,
window, ack cadence), a declarative fault plan and a traffic matrix.
Scenarios are JSON round-trippable — the shrinker mutates them as data
and the replay CLI re-runs them from a ``REPLAY_<seed>.json`` artifact.

The generator draws every axis from one named RNG stream per scenario
(derived from the master seed), so scenario ``i`` of seed ``s`` is the
same forever, regardless of how many scenarios were generated before it
or which worker process generates it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..config import MTU_JUMBO, MTU_STANDARD
from ..faults import FaultPlan, OutageWindow, SwitchBlackout
from ..sim import RngStreams

__all__ = ["Message", "Scenario", "generate_scenario", "SCHEMA"]

#: artifact schema tag (bump on incompatible Scenario changes)
SCHEMA = "repro.validate/1"

#: a "permanent" outage end: far beyond any sim horizon
FOREVER_NS = 1e18

#: hard ceiling on simulated time per scenario; exceeding it (the event
#: queue still busy at the horizon) is itself reported as a violation.
HORIZON_NS = 120e9


@dataclass(frozen=True)
class Message:
    """One application message of the traffic matrix."""

    src: int
    dst: int
    nbytes: int
    tag: int

    def to_list(self) -> List[int]:
        """Compact JSON form: ``[src, dst, nbytes, tag]``."""
        return [self.src, self.dst, self.nbytes, self.tag]


@dataclass(frozen=True)
class Scenario:
    """One self-contained fuzz case (pure data, JSON round-trippable)."""

    seed: int
    protocol: str = "clic"  # "clic" | "tcp"
    num_nodes: int = 2
    mtu: int = MTU_STANDARD
    zero_copy: bool = True
    coalescing: bool = True
    window_frames: int = 64
    ack_every: int = 16
    dupack_threshold: int = 3
    adaptive_rto: bool = True
    #: fault axis: none | uniform | burst | outage | flaps | blackout |
    #: reorder | duplicate | congestion
    fault_kind: str = "none"
    #: loss probability (uniform), long-run average rate (burst), or
    #: per-frame jitter/duplication probability (reorder/duplicate)
    fault_rate: float = 0.0
    #: extra fault parameters (outage timing, flap counts, burstiness,
    #: jitter bound, copy count, congestion shape)
    fault_args: Dict[str, float] = field(default_factory=dict)
    #: switch egress-exhaustion policy ("drop" | "pause")
    backpressure: str = "drop"
    messages: Tuple[Message, ...] = ()
    #: simulator engine: "off" (packet-exact) | "auto" (hybrid flow
    #: fast path) — a fuzz axis so every fault family also exercises
    #: the flow engine's mid-flow fallback to exact simulation
    flow_mode: str = "off"
    #: fabric axis: "star" (the legacy single switch) | "fat-tree" |
    #: "chain" — multi-switch layouts route every fault family across
    #: trunk links (and force flow_mode="auto" onto its
    #: unknown-topology fallback)
    topology: str = "star"

    # -- derived ---------------------------------------------------------
    @property
    def permanent_fault(self) -> bool:
        """True when the plan makes some delivery impossible forever
        (an outage/blackout that never ends) — the peer-death case."""
        return (
            self.fault_kind in ("outage", "blackout")
            and self.fault_args.get("duration_ns", 0.0) >= FOREVER_NS
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        """Compile the fault axis into a :class:`FaultPlan` (or None)."""
        if self.fault_kind == "none":
            return None
        if self.fault_kind == "uniform":
            return FaultPlan.uniform(self.fault_rate)
        if self.fault_kind == "burst":
            return FaultPlan.bursty(
                self.fault_rate,
                mean_burst_frames=self.fault_args.get("mean_burst_frames", 8.0),
            )
        if self.fault_kind == "reorder":
            return FaultPlan.reordering(
                self.fault_rate,
                max_delay_ns=self.fault_args.get("max_delay_ns", 200_000.0),
            )
        if self.fault_kind == "duplicate":
            return FaultPlan.duplication(
                self.fault_rate,
                max_copies=int(self.fault_args.get("max_copies", 1)),
            )
        if self.fault_kind == "congestion":
            start = self.fault_args["start_ns"]
            return FaultPlan.congestion_spike(
                start,
                start + self.fault_args["duration_ns"],
                bandwidth_factor=self.fault_args.get("factor", 1.0),
                extra_latency_ns=self.fault_args.get("extra_latency_ns", 0.0),
            )
        start = self.fault_args["start_ns"]
        window = OutageWindow(start, start + self.fault_args["duration_ns"])
        node = int(self.fault_args.get("node", 0))
        if self.fault_kind == "outage":
            return FaultPlan(links={
                (node, 0, "up"): replace(FaultPlan().default_link, outages=(window,)),
                (node, 0, "down"): replace(FaultPlan().default_link, outages=(window,)),
            })
        if self.fault_kind == "flaps":
            from ..faults import flap_timeline

            windows = flap_timeline(
                start,
                self.fault_args["duration_ns"],
                self.fault_args["up_ns"],
                int(self.fault_args["flaps"]),
            )
            return FaultPlan(links={
                (node, 0, "up"): replace(FaultPlan().default_link, outages=windows),
                (node, 0, "down"): replace(FaultPlan().default_link, outages=windows),
            })
        if self.fault_kind == "blackout":
            return FaultPlan(switch_blackouts=(SwitchBlackout(window=window, node=node),))
        raise ValueError(f"unknown fault kind {self.fault_kind!r}")

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (the replay artifact payload)."""
        doc = asdict(self)
        doc["messages"] = [m.to_list() for m in self.messages]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        doc = dict(doc)
        doc["messages"] = tuple(Message(*entry) for entry in doc.get("messages", ()))
        doc["fault_args"] = dict(doc.get("fault_args", {}))
        return cls(**doc)


def _traffic(rng, num_nodes: int, protocol: str) -> Tuple[Message, ...]:
    """A random traffic matrix: unique tags per (src, dst) channel, no
    self-sends (the same-node path has its own tests), no broadcasts
    (frame conservation stays exact without fan-out accounting)."""
    count = int(rng.integers(1, 9))
    messages: List[Message] = []
    tags: Dict[Tuple[int, int], int] = {}
    for _ in range(count):
        if protocol == "tcp":
            src, dst = 0, 1  # one connected socket pair
        else:
            src = int(rng.integers(0, num_nodes))
            dst = int(rng.integers(0, num_nodes - 1))
            if dst >= src:
                dst += 1  # uniform over peers, never self
        nbytes = int(rng.choice([0, 1, 64, 1024, 1480, 1500, 9000, 20_000, 40_000]))
        if protocol == "tcp" and nbytes == 0:
            nbytes = 1  # a TCP stream has no zero-length message concept
        key = (src, dst)
        tag = tags.get(key, 0)
        tags[key] = tag + 1
        messages.append(Message(src, dst, nbytes, tag))
    return tuple(messages)


def _faults(rng, protocol: str, num_nodes: int) -> Tuple[str, float, Dict[str, float]]:
    """Draw the fault axis.  TCP scenarios skip permanent faults: the
    era-faithful 200 ms minimum RTO puts TCP's retry-exhaustion horizon
    (~minutes of simulated backoff) beyond the harness budget."""
    kinds = ["none", "uniform", "uniform", "burst", "outage", "flaps", "blackout",
             "reorder", "duplicate", "congestion"]
    if protocol == "clic":
        kinds.append("dead")  # permanent outage -> peer death expected
    kind = str(rng.choice(kinds))
    if kind == "none":
        return "none", 0.0, {}
    if kind == "uniform":
        return "uniform", round(float(rng.uniform(0.005, 0.15)), 4), {}
    if kind == "burst":
        return "burst", round(float(rng.uniform(0.01, 0.08)), 4), {
            "mean_burst_frames": float(rng.choice([4.0, 8.0, 16.0])),
        }
    if kind == "reorder":
        return "reorder", round(float(rng.uniform(0.05, 0.5)), 4), {
            "max_delay_ns": float(rng.choice([50_000.0, 200_000.0, 1_000_000.0])),
        }
    if kind == "duplicate":
        return "duplicate", round(float(rng.uniform(0.05, 0.4)), 4), {
            "max_copies": float(int(rng.integers(1, 4))),
        }
    if kind == "congestion":
        return "congestion", 0.0, {
            "start_ns": round(float(rng.uniform(50_000.0, 2_000_000.0)), 1),
            "duration_ns": round(float(rng.uniform(200_000.0, 20_000_000.0)), 1),
            "factor": float(rng.choice([2.0, 4.0, 8.0])),
            "extra_latency_ns": float(rng.choice([0.0, 100_000.0, 500_000.0])),
        }
    node = int(rng.integers(0, num_nodes))
    start = round(float(rng.uniform(50_000.0, 2_000_000.0)), 1)
    if kind == "dead":
        return "outage", 0.0, {"start_ns": start, "duration_ns": FOREVER_NS, "node": node}
    duration = round(float(rng.uniform(200_000.0, 20_000_000.0)), 1)
    args: Dict[str, float] = {"start_ns": start, "duration_ns": duration, "node": node}
    if kind == "flaps":
        args["duration_ns"] = round(float(rng.uniform(100_000.0, 2_000_000.0)), 1)
        args["up_ns"] = round(float(rng.uniform(200_000.0, 5_000_000.0)), 1)
        args["flaps"] = float(int(rng.integers(2, 5)))
    return kind, 0.0, args


def generate_scenario(master_seed: int, index: int) -> Scenario:
    """Scenario ``index`` of the fuzz campaign seeded by ``master_seed``.

    Stable: depends only on ``(master_seed, index)``, so a campaign can
    be fanned out over any number of workers (or re-run one index) and
    always produce the same cases.
    """
    rng = RngStreams(master_seed).stream(f"scenario.{index}")
    protocol = "tcp" if rng.random() < 0.25 else "clic"
    num_nodes = 2 if protocol == "tcp" else int(rng.choice([2, 2, 3, 4]))
    fault_kind, fault_rate, fault_args = _faults(rng, protocol, num_nodes)
    return Scenario(
        seed=int(rng.integers(0, 2**31 - 1)),
        protocol=protocol,
        num_nodes=num_nodes,
        mtu=int(rng.choice([MTU_STANDARD, MTU_JUMBO])),
        zero_copy=bool(rng.random() < 0.75),
        coalescing=bool(rng.random() < 0.75),
        window_frames=int(rng.choice([4, 8, 16, 64])),
        ack_every=int(rng.choice([1, 2, 8, 16])),
        dupack_threshold=int(rng.choice([0, 3, 3])),
        adaptive_rto=bool(rng.random() < 0.75),
        fault_kind=fault_kind,
        fault_rate=fault_rate,
        fault_args=fault_args,
        backpressure=str(rng.choice(["drop", "drop", "pause"])),
        messages=_traffic(rng, num_nodes, protocol),
        # Drawn last so every scenario of a given (seed, index) keeps
        # its pre-flow-mode identity on all other axes.
        flow_mode=str(rng.choice(["off", "auto"])),
        # Newest axis draws after flow_mode for the same reason: all
        # earlier axes of a (seed, index) scenario are stable forever.
        topology=str(rng.choice(["star", "star", "fat-tree", "chain"])),
    )
