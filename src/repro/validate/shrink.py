"""Greedy deterministic shrinking of failing scenarios.

Given a scenario that violates an invariant, :func:`shrink` searches for
a *smaller* scenario that still violates the same invariant (same
catalog id), by repeatedly applying reduction passes — delta-debugging
the message list, zeroing message sizes, collapsing the cluster to two
nodes, and resetting config/fault axes to their defaults — and keeping
every candidate that still fails.  The search is purely a function of
the input scenario and the (deterministic) runner, so shrinking the
same failure twice yields the same minimal reproducer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Set, Tuple

from .invariants import Violation
from .scenario import Message, Scenario

__all__ = ["shrink", "ShrinkResult"]

#: safety valve on candidate executions per shrink
MAX_RUNS = 200


class ShrinkResult:
    """Outcome of a shrink: the minimal scenario plus its violations."""

    def __init__(self, scenario: Scenario, violations: List[Violation], runs: int):
        self.scenario = scenario
        self.violations = violations
        self.runs = runs


def _cost(s: Scenario) -> Tuple[int, int, int, int]:
    """Lexicographic size measure the shrinker drives down."""
    axes_off_default = sum([
        s.mtu != 1500,
        not s.zero_copy,
        not s.coalescing,
        s.window_frames != 64,
        s.ack_every != 16,
        s.dupack_threshold != 3,
        not s.adaptive_rto,
        s.fault_kind != "none",
        s.backpressure != "drop",
    ])
    return (
        len(s.messages),
        sum(m.nbytes for m in s.messages),
        s.num_nodes,
        axes_off_default,
    )


def _message_subsets(messages: Tuple[Message, ...]) -> Iterator[Tuple[Message, ...]]:
    """Delta-debugging order: drop halves first, then single messages."""
    n = len(messages)
    if n > 1:
        half = n // 2
        yield messages[half:]
        yield messages[:half]
    for i in range(n):
        if n > 1:
            yield messages[:i] + messages[i + 1:]


def _candidates(s: Scenario) -> Iterator[Scenario]:
    """All one-step reductions of ``s``, most aggressive first."""
    # 1. fewer messages
    for subset in _message_subsets(s.messages):
        yield replace(s, messages=subset)
    # 2. smaller messages
    floor = 1 if s.protocol == "tcp" else 0
    for i, m in enumerate(s.messages):
        for smaller in (floor, 1024):
            if m.nbytes > smaller:
                msgs = list(s.messages)
                msgs[i] = replace(m, nbytes=smaller)
                yield replace(s, messages=tuple(msgs))
    # 3. fewer nodes (only when all traffic and the fault already fit)
    if s.num_nodes > 2:
        used: Set[int] = {m.src for m in s.messages} | {m.dst for m in s.messages}
        used.add(int(s.fault_args.get("node", 0)))
        if used <= {0, 1}:
            yield replace(s, num_nodes=2)
    # 4. config axes back to defaults
    for field, default in (("mtu", 1500), ("zero_copy", True), ("coalescing", True),
                           ("window_frames", 64), ("ack_every", 16),
                           ("dupack_threshold", 3), ("adaptive_rto", True),
                           ("backpressure", "drop")):
        if getattr(s, field) != default:
            yield replace(s, **{field: default})
    # 5. drop or tame the fault axis
    if s.fault_kind != "none":
        yield replace(s, fault_kind="none", fault_rate=0.0, fault_args={})
        if s.fault_rate > 0.01:
            yield replace(s, fault_rate=round(s.fault_rate / 2, 4))


def shrink(
    scenario: Scenario,
    violations: List[Violation],
    run_fn: Callable[[Scenario], List[Violation]],
    max_runs: int = MAX_RUNS,
) -> ShrinkResult:
    """Reduce ``scenario`` while it keeps violating the same invariants.

    ``run_fn`` executes a candidate and returns its violations (injected
    so unit tests can shrink against synthetic failure predicates).  A
    candidate is accepted when it is strictly cheaper (:func:`_cost`)
    and still triggers at least one of the original invariant ids.
    """
    target_ids = {v.invariant for v in violations}
    if not target_ids:
        raise ValueError("nothing to shrink: no violations")
    best, best_violations = scenario, violations
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _candidates(best):
            if runs >= max_runs:
                break
            if _cost(candidate) >= _cost(best):
                continue
            runs += 1
            got = run_fn(candidate)
            if any(v.invariant in target_ids for v in got):
                best, best_violations = candidate, got
                improved = True
                break  # restart the pass ladder from the smaller scenario
    return ShrinkResult(best, best_violations, runs)
