"""Coverage floor enforcement over a Cobertura XML report.

CI runs the test suite under ``pytest --cov=repro --cov-report=xml``
and then ``python -m repro.validate.coverage_gate coverage.xml``.  The
gate recomputes line coverage from the per-line hit counts (robust
against producers that round the summary ``line-rate`` attribute) and
fails the build when either floor is violated:

* **total**: line coverage of everything measured (default 70%);
* **validate**: line coverage of the ``repro/validate`` package itself
  (default 90%) — the invariant harness must not be the least-tested
  code in the repository.

Pure stdlib (``xml.etree``), so the gate itself needs no coverage
tooling installed.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, Tuple

__all__ = ["coverage_by_file", "rate", "main"]

#: committed coverage floors, percent
TOTAL_FLOOR = 70.0
VALIDATE_FLOOR = 90.0


def coverage_by_file(xml_path: str) -> Dict[str, Tuple[int, int]]:
    """Parse a Cobertura report into ``{filename: (covered, total)}``
    line tallies (condition/branch data is ignored)."""
    root = ET.parse(xml_path).getroot()
    out: Dict[str, Tuple[int, int]] = {}
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        covered, total = out.get(filename, (0, 0))
        for line in cls.iter("line"):
            total += 1
            if int(line.get("hits", "0")) > 0:
                covered += 1
        out[filename] = (covered, total)
    return out


def rate(files: Dict[str, Tuple[int, int]], prefix: str = "") -> float:
    """Percent line coverage of files whose path contains ``prefix``."""
    covered = total = 0
    for filename, (c, t) in files.items():
        if prefix in filename:
            covered += c
            total += t
    if total == 0:
        return 0.0
    return 100.0 * covered / total


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate.coverage_gate",
        description="enforce committed coverage floors on a Cobertura XML report",
    )
    parser.add_argument("report", help="path to coverage.xml")
    parser.add_argument("--total-floor", type=float, default=TOTAL_FLOOR,
                        help=f"overall line-coverage floor, percent (default {TOTAL_FLOOR})")
    parser.add_argument("--validate-floor", type=float, default=VALIDATE_FLOOR,
                        help="repro/validate package floor, percent "
                             f"(default {VALIDATE_FLOOR})")
    args = parser.parse_args(argv)

    if not Path(args.report).is_file():
        print(f"coverage_gate: report {args.report!r} not found", file=sys.stderr)
        return 2
    files = coverage_by_file(args.report)
    total = rate(files)
    validate = rate(files, prefix="validate/")
    print(f"coverage: total {total:.1f}% (floor {args.total_floor:.1f}%), "
          f"repro/validate {validate:.1f}% (floor {args.validate_floor:.1f}%)")
    failed = False
    if total < args.total_floor:
        print(f"coverage_gate: TOTAL below floor ({total:.1f}% < {args.total_floor:.1f}%)")
        failed = True
    if validate < args.validate_floor:
        print("coverage_gate: repro/validate below floor "
              f"({validate:.1f}% < {args.validate_floor:.1f}%)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
