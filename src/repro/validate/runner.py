"""Execute one fuzz scenario and reduce it to a checked run record.

:func:`run_scenario` is the module-level, pure-data worker the fuzzer
fans out via :func:`repro.parallel.run_tasks`: build the cluster the
scenario describes, install a :class:`~repro.validate.probes.ProbeRecorder`
over every reliability channel, drive the scenario's traffic matrix
through real user processes, run to quiescence (or the horizon), and
return ``{scenario, violations, stats}`` with the full invariant
catalog evaluated.

Everything in the report is a deterministic function of the scenario —
no wall-clock, no process ids — so identical scenarios give
byte-identical reports in any worker ordering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Generator, List, Tuple

from ..cluster import Cluster
from ..config import ClusterConfig, NodeConfig, SimParams, Topology
from ..oskernel import UserProcess
from ..protocols.clic import ClicEndpoint
from ..protocols.reliability import DeliveryFailed, install_channel_probe
from .invariants import check_run
from .probes import ProbeRecorder
from .scenario import HORIZON_NS, Scenario

__all__ = ["run_scenario", "execute"]

#: CLIC port all fuzz traffic rides on
PORT = 1


def _topology_spec(scenario: Scenario):
    """Compile the scenario's topology axis into a :class:`Topology`.

    ``"star"`` maps to ``None`` — the exact legacy single-switch build,
    so pre-topology campaigns replay byte-identically.  The multi-switch
    kinds use ``leaf_fan=1`` so even a 2-node fuzz case genuinely
    crosses trunk links.
    """
    if scenario.topology == "star":
        return None
    if scenario.topology == "fat-tree":
        return Topology("fat-tree", leaf_fan=1, uplink_fan=2)
    if scenario.topology == "chain":
        return Topology("chain", leaf_fan=1)
    raise ValueError(f"unknown topology axis {scenario.topology!r}")


def _node_config(scenario: Scenario) -> NodeConfig:
    node = (
        NodeConfig()
        .with_mtu(scenario.mtu)
        .with_zero_copy(scenario.zero_copy)
        .with_coalescing(scenario.coalescing)
    )
    return replace(node, clic=replace(
        node.clic,
        window_frames=scenario.window_frames,
        ack_every=scenario.ack_every,
        dupack_threshold=scenario.dupack_threshold,
        adaptive_rto=scenario.adaptive_rto,
    ))


class _Journal:
    """App-level traffic log: what each process submitted and observed."""

    def __init__(self) -> None:
        self.attempted: Dict[Tuple[int, int], List[List[int]]] = {}
        self.sent: Dict[Tuple[int, int], List[List[int]]] = {}
        self.received: Dict[Tuple[int, int], List[List[int]]] = {}
        #: ``(name, node_id, role, Process)`` for completion accounting
        self.procs: List[Tuple[str, int, str, Any]] = []

    def log(self, book: Dict, src: int, dst: int, tag: int, nbytes: int) -> None:
        book.setdefault((src, dst), []).append([tag, nbytes])


def _spawn_clic(cluster: Cluster, scenario: Scenario, journal: _Journal) -> None:
    by_src: Dict[int, list] = {}
    expected: Dict[int, int] = {}
    for m in scenario.messages:
        by_src.setdefault(m.src, []).append(m)
        expected[m.dst] = expected.get(m.dst, 0) + 1

    for node in cluster.nodes:
        nid = node.node_id
        to_send = by_src.get(nid, [])
        if to_send:
            proc = UserProcess(node, name=f"fuzz-tx{nid}")

            def tx_body(proc: UserProcess, msgs=to_send) -> Generator:
                ep = ClicEndpoint(proc, PORT)
                for m in msgs:
                    journal.log(journal.attempted, m.src, m.dst, m.tag, m.nbytes)
                    try:
                        yield from ep.send(m.dst, m.nbytes, tag=m.tag)
                    except DeliveryFailed:
                        continue  # channel death is judged from sender state
                    journal.log(journal.sent, m.src, m.dst, m.tag, m.nbytes)

            journal.procs.append((f"fuzz-tx{nid}", nid, "tx", proc.run(tx_body)))
        if expected.get(nid):
            proc = UserProcess(node, name=f"fuzz-rx{nid}")

            def rx_body(proc: UserProcess, count=expected[nid], nid=nid) -> Generator:
                ep = ClicEndpoint(proc, PORT)
                for _ in range(count):
                    msg = yield from ep.recv()
                    journal.log(journal.received, msg.src_node, nid, msg.tag, msg.nbytes)

            journal.procs.append((f"fuzz-rx{nid}", nid, "rx", proc.run(rx_body)))


def _spawn_tcp(cluster: Cluster, scenario: Scenario, journal: _Journal):
    from ..protocols.tcpip import TcpIpStack

    proc_a = UserProcess(cluster.node(0), name="fuzz-tx0")
    proc_b = UserProcess(cluster.node(1), name="fuzz-rx1")
    sock_a, sock_b = TcpIpStack.connect_pair(proc_a, proc_b)
    msgs = list(scenario.messages)

    def tx_body(proc: UserProcess) -> Generator:
        for m in msgs:
            journal.log(journal.attempted, 0, 1, m.tag, m.nbytes)
            try:
                yield from sock_a.send(m.nbytes)
            except DeliveryFailed:
                continue
            journal.log(journal.sent, 0, 1, m.tag, m.nbytes)

    def rx_body(proc: UserProcess) -> Generator:
        for m in msgs:
            got = yield from sock_b.recv(m.nbytes)
            journal.log(journal.received, 0, 1, m.tag, got)

    journal.procs.append(("fuzz-tx0", 0, "tx", proc_a.run(tx_body)))
    journal.procs.append(("fuzz-rx1", 1, "rx", proc_b.run(rx_body)))
    return sock_a, sock_b


def _assemble(
    cluster: Cluster,
    scenario: Scenario,
    recorder: ProbeRecorder,
    journal: _Journal,
    tcp_socks,
) -> Dict[str, Any]:
    channels: Dict[str, Dict[str, Any]] = {}

    def ch(key: str) -> Dict[str, Any]:
        return channels.setdefault(
            key, {"sender": None, "receiver": None,
                  "attempted": [], "sent": [], "received": []}
        )

    if scenario.protocol == "clic":
        for node in cluster.nodes:
            for dst, sender in node.clic._senders.items():
                log = recorder.for_sender(sender)
                if log is not None:
                    ch(f"{node.node_id}->{dst}")["sender"] = log.final_state()
            for src, receiver in node.clic._receivers.items():
                log = recorder.for_receiver(receiver)
                if log is not None:
                    ch(f"{src}->{node.node_id}")["receiver"] = log.final_state()
    else:
        sock_a, sock_b = tcp_socks
        pairs = [("0->1", sock_a.conn.sender, sock_b.conn.receiver),
                 ("1->0", sock_b.conn.sender, sock_a.conn.receiver)]
        for key, sender, receiver in pairs:
            slog = recorder.for_sender(sender)
            rlog = recorder.for_receiver(receiver)
            if slog is not None:
                ch(key)["sender"] = slog.final_state()
            if rlog is not None:
                ch(key)["receiver"] = rlog.final_state()

    for book, field in ((journal.attempted, "attempted"),
                        (journal.sent, "sent"),
                        (journal.received, "received")):
        for (src, dst), entries in book.items():
            ch(f"{src}->{dst}")[field] = entries

    links = {
        name: {c: chan.counters.get(c) for c in
               ("frames_offered", "frames", "frames_lost", "frames_corrupted",
                "frames_duplicated")}
        for name, chan in cluster.channels
    }
    nic_totals = {c: 0.0 for c in
                  ("tx_frames", "rx_frames", "rx_crc_drops",
                   "rx_oversize_drops", "rx_drops")}
    rx_buffer_peak = 0
    for node in cluster.nodes:
        for nic in node.nics:
            for c in nic_totals:
                nic_totals[c] += nic.counters.get(c)
            rx_buffer_peak = max(rx_buffer_peak, nic.rx_buffer_peak)
    nic_totals["rx_buffer_peak"] = rx_buffer_peak
    nic_totals["rx_ring_slots"] = cluster.cfg.node.nic.rx_ring_slots
    # Aggregated across the whole fabric: for the star topology this is
    # the single legacy switch, so existing artifacts stay byte-identical.
    switch = {c: cluster.fabric.counter_sum(c) for c in
              ("forwarded", "drops", "blackout_drops", "unknown_dst",
               "hairpin_dropped", "pause_events", "pause_time_ns")}
    switch["max_queue_depth"] = cluster.fabric.max_queue_depth
    switch["queue_capacity"] = cluster.switch.queue_frames

    record: Dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "channels": channels,
        "frames": {"links": links, "nic": nic_totals, "switch": switch},
        "final_now": cluster.env.now,
        "procs_unfinished": [
            {"name": name, "node": node_id, "role": role}
            for name, node_id, role, process in journal.procs
            if process.is_alive
        ],
        "dead_peers": {},
        "modules": {},
    }
    if scenario.protocol == "clic":
        record["dead_peers"] = {
            str(node.node_id): {str(p): r for p, r in node.clic.dead_peers.items()}
            for node in cluster.nodes if node.clic.dead_peers
        }
        record["modules"] = {
            str(node.node_id): {c: node.clic.counters.get(c) for c in
                                ("msgs_sent", "bytes_sent", "msgs_rx", "bytes_rx")}
            for node in cluster.nodes
        }
    return record


def execute(scenario: Scenario) -> Dict[str, Any]:
    """Run ``scenario`` under the probe and return its raw run record."""
    cfg = ClusterConfig(
        node=_node_config(scenario),
        num_nodes=scenario.num_nodes,
        seed=scenario.seed,
        switch_backpressure=scenario.backpressure,
        sim=SimParams(flow_mode=scenario.flow_mode),
        topology=_topology_spec(scenario),
    )
    recorder = ProbeRecorder()
    previous = install_channel_probe(recorder)
    try:
        cluster = Cluster(
            cfg, protocols=(scenario.protocol,), faults=scenario.fault_plan()
        )
        journal = _Journal()
        tcp_socks = None
        if scenario.protocol == "tcp":
            tcp_socks = _spawn_tcp(cluster, scenario, journal)
        else:
            _spawn_clic(cluster, scenario, journal)
        cluster.env.run(until=HORIZON_NS)
    finally:
        install_channel_probe(previous)
    return _assemble(cluster, scenario, recorder, journal, tcp_socks)


def run_scenario(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Pool-safe worker: scenario dict in, checked report dict out."""
    scenario = Scenario.from_dict(spec)
    record = execute(scenario)
    violations = check_run(record)
    frames = record["frames"]
    return {
        "scenario": spec,
        "violations": [v.to_dict() for v in violations],
        "stats": {
            "final_now_ns": record["final_now"],
            "messages": len(scenario.messages),
            "frames_offered": sum(
                c["frames_offered"] for c in frames["links"].values()
            ),
            "frames_lost": sum(c["frames_lost"] for c in frames["links"].values()),
            "channels": len(record["channels"]),
            "unfinished_procs": len(record["procs_unfinished"]),
        },
    }
