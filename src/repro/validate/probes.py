"""Channel-event recording for the invariant harness.

:class:`ProbeRecorder` implements the
:class:`~repro.protocols.reliability.ChannelProbe` observer interface
and keeps, per sender/receiver channel, an *ordered* event log plus the
compact aggregates the invariant checker consumes.  The recorder never
touches channel or simulation state — a run with and without it is
bit-identical (the probe contract).

Logs are plain lists of plain tuples so a finished run can be reduced
to a JSON-able :mod:`record <repro.validate.invariants>` and so unit
tests can fabricate logs directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..protocols.reliability import ChannelProbe, OrderedReceiver, WindowedSender

__all__ = ["ProbeRecorder", "SenderLog", "ReceiverLog"]


class SenderLog:
    """Ordered event log of one :class:`WindowedSender`."""

    def __init__(self, sender: WindowedSender):
        self.sender = sender
        self.name = sender.name
        #: ordered events, each a tuple whose head is the event kind:
        #: ("register", seq) / ("ack", base_before, cum) / ("rtt", seq,
        #: rtt_ns) / ("retx", kind, [seqs]) / ("timeout", before_ns,
        #: after_ns, max_ns) / ("fail", reason)
        self.events: List[Tuple[Any, ...]] = []
        self.registered = 0
        #: highest concurrent occupancy vs. the window bound at that time
        self.max_in_flight = 0
        #: ``(in_flight, window)`` snapshots where occupancy exceeded the
        #: window — must stay empty
        self.window_violations: List[Tuple[int, int]] = []

    def on_register(self, seq: int) -> None:
        """Log one packet registration and audit window occupancy."""
        self.events.append(("register", seq))
        self.registered += 1
        in_flight = self.sender.in_flight
        self.max_in_flight = max(self.max_in_flight, in_flight)
        if in_flight > self.sender.window:
            self.window_violations.append((in_flight, self.sender.window))

    def final_state(self) -> Dict[str, Any]:
        """JSON-able end-of-run snapshot of the live sender."""
        s = self.sender
        return {
            "name": self.name,
            "next_seq": s.next_seq,
            "base": s.base,
            "in_flight": s.in_flight,
            "failed": s.failed,
            "registered": self.registered,
            "max_in_flight": self.max_in_flight,
            "window_violations": [list(v) for v in self.window_violations],
            "events": [list(e) for e in self.events],
        }


class ReceiverLog:
    """Ordered event log of one :class:`OrderedReceiver`."""

    def __init__(self, receiver: OrderedReceiver):
        self.receiver = receiver
        self.name = receiver.name
        self.delivered = 0
        #: sequence numbers in application-delivery order — the
        #: exactly-once / in-order invariants audit this directly
        self.delivered_seqs: List[int] = []
        #: cumulative-ack values in emission order
        self.acks_emitted: List[int] = []

    def final_state(self) -> Dict[str, Any]:
        """JSON-able end-of-run snapshot of the live receiver."""
        return {
            "name": self.name,
            "expected": self.receiver.expected,
            "delivered": self.delivered,
            "delivered_seqs": list(self.delivered_seqs),
            "max_stash": self.receiver.max_stash,
            "stash_limit": self.receiver.stash_limit,
            "acks_emitted": list(self.acks_emitted),
        }


class ProbeRecorder(ChannelProbe):
    """Record every channel event of every sender/receiver built while
    this probe is installed (see
    :func:`~repro.protocols.reliability.install_channel_probe`)."""

    def __init__(self) -> None:
        self.sender_logs: Dict[int, SenderLog] = {}
        self.receiver_logs: Dict[int, ReceiverLog] = {}

    # -- lookup ----------------------------------------------------------
    def for_sender(self, sender: WindowedSender) -> Optional[SenderLog]:
        """The log recorded for ``sender``, or None if unobserved."""
        return self.sender_logs.get(id(sender))

    def for_receiver(self, receiver: OrderedReceiver) -> Optional[ReceiverLog]:
        """The log recorded for ``receiver``, or None if unobserved."""
        return self.receiver_logs.get(id(receiver))

    # -- ChannelProbe ----------------------------------------------------
    def on_sender(self, sender: WindowedSender) -> None:
        """Open a log for a newly constructed sender."""
        self.sender_logs[id(sender)] = SenderLog(sender)

    def on_receiver(self, receiver: OrderedReceiver) -> None:
        """Open a log for a newly constructed receiver."""
        self.receiver_logs[id(receiver)] = ReceiverLog(receiver)

    def on_register(self, sender: WindowedSender, seq: int) -> None:
        """Record ``("register", seq)``."""
        self.sender_logs[id(sender)].on_register(seq)

    def on_ack_applied(self, sender: WindowedSender, base_before: int, cum: int) -> None:
        """Record ``("ack", base_before, cum)``."""
        self.sender_logs[id(sender)].events.append(("ack", base_before, cum))

    def on_rtt_sample(self, sender: WindowedSender, seq: int, rtt_ns: float) -> None:
        """Record ``("rtt", seq, rtt_ns)``."""
        self.sender_logs[id(sender)].events.append(("rtt", seq, rtt_ns))

    def on_retransmit(self, sender: WindowedSender, seqs: List[int], kind: str) -> None:
        """Record ``("retx", kind, seqs)`` — kind is "fast" or "rto"."""
        self.sender_logs[id(sender)].events.append(("retx", kind, list(seqs)))

    def on_timeout(self, sender: WindowedSender, rto_before_ns: float,
                   rto_after_ns: float) -> None:
        """Record ``("timeout", before, after, cap)`` with the estimator cap."""
        max_ns = sender.rto.max_ns if sender.rto is not None else rto_before_ns
        self.sender_logs[id(sender)].events.append(
            ("timeout", rto_before_ns, rto_after_ns, max_ns)
        )

    def on_fail(self, sender: WindowedSender, reason: str) -> None:
        """Record ``("fail", reason)`` — the channel gave up."""
        self.sender_logs[id(sender)].events.append(("fail", reason))

    def on_deliver(self, receiver: OrderedReceiver, seq: int) -> None:
        """Record one delivery (and its sequence) to the upper layer."""
        log = self.receiver_logs[id(receiver)]
        log.delivered += 1
        log.delivered_seqs.append(seq)

    def on_ack_emitted(self, receiver: OrderedReceiver, cum: int) -> None:
        """Record the cumulative-ack value the receiver emitted."""
        self.receiver_logs[id(receiver)].acks_emitted.append(cum)
