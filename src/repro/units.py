"""Unit helpers.

All simulated time is in **nanoseconds**; all sizes in **bytes**.  These
helpers keep magic numbers out of the models and make the experiment code
read like the paper ("36 microseconds", "600 Mbits/s", "MTU 9000").
"""

from __future__ import annotations

__all__ = [
    "ns",
    "us",
    "ms",
    "seconds",
    "KiB",
    "MiB",
    "kilobytes",
    "megabytes",
    "to_us",
    "to_ms",
    "to_seconds",
    "mbps",
    "bandwidth_mbps",
    "transfer_time_ns",
]


# -- time ---------------------------------------------------------------
def ns(x: float) -> float:
    """Nanoseconds (identity; for symmetry/readability)."""
    return float(x)


def us(x: float) -> float:
    """Microseconds -> ns."""
    return float(x) * 1_000.0


def ms(x: float) -> float:
    """Milliseconds -> ns."""
    return float(x) * 1_000_000.0


def seconds(x: float) -> float:
    """Seconds -> ns."""
    return float(x) * 1_000_000_000.0


def to_us(t_ns: float) -> float:
    """ns -> microseconds."""
    return t_ns / 1_000.0


def to_ms(t_ns: float) -> float:
    """ns -> milliseconds."""
    return t_ns / 1_000_000.0


def to_seconds(t_ns: float) -> float:
    """ns -> seconds."""
    return t_ns / 1_000_000_000.0


# -- sizes ---------------------------------------------------------------
KiB = 1024
MiB = 1024 * 1024


def kilobytes(x: float) -> int:
    """Decimal kilobytes -> bytes."""
    return int(x * 1000)


def megabytes(x: float) -> int:
    """Decimal megabytes -> bytes."""
    return int(x * 1_000_000)


# -- rates ---------------------------------------------------------------
def mbps(x: float) -> float:
    """Megabits/second -> bytes per nanosecond."""
    return x * 1e6 / 8 / 1e9


def bandwidth_mbps(nbytes: float, t_ns: float) -> float:
    """Achieved bandwidth in Mbit/s for ``nbytes`` moved in ``t_ns``."""
    if t_ns <= 0:
        return 0.0
    return (nbytes * 8) / (t_ns / 1e9) / 1e6


def transfer_time_ns(nbytes: float, bytes_per_second: float) -> float:
    """Time to move ``nbytes`` at ``bytes_per_second``."""
    if bytes_per_second <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / bytes_per_second * 1e9
