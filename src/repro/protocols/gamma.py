"""GAMMA-style active ports (comparator, §3.2 / §5).

GAMMA (Genoa Active Message MAchine) is the closest rival in the paper's
conclusions: slightly better latency (9.5–32 µs) and bandwidth
(768–824 Mb/s) than CLIC, bought by *modifying the NIC driver*:

* **lightweight traps** instead of full syscalls — and crucially, no
  scheduler pass on the way back to user mode (§3.2(a));
* receive handled **entirely in the interrupt handler** of the patched
  driver, which lands data straight in the destination user buffer —
  no ``sk_buff`` staging, no bottom-half hop, no extra copy;
* no kernel-level retransmission machinery (the original relied on the
  LAN being loss-free; our model does the same and counts any overflow
  drops as message loss — see the fault-injection tests).

The cost of this speed is exactly what the paper says CLIC refuses to
pay: the stack is tied to specific NICs/drivers.  In the simulator this
shows up as the NIC running in ``push`` receive mode, which a stock
driver does not support.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..config import GammaParams
from ..hw.cpu import PRIO_IRQ, PRIO_KERNEL
from ..hw.nic import EtherType, RxFrame, TxDescriptor
from ..oskernel import SkBuff, UserProcess
from ..sim import Counters, Event
from .headers import GammaPacket, fragment_plan

__all__ = ["GammaLayer", "GammaPort", "GammaMessage"]

_msg_ids = itertools.count(1)


@dataclass
class GammaMessage:
    src_node: int
    port: int
    nbytes: int
    msg_id: int
    payload: Any = None
    completed_at: float = 0.0


@dataclass
class _Assembling:
    msg_bytes: int
    received: int = 0
    payload: Any = None


class GammaPort:
    """An active port: arrival state + at most one blocked receiver."""

    def __init__(self) -> None:
        self.ready: List[GammaMessage] = []
        self.waiters: List[Event] = []


class GammaLayer:
    """GAMMA engine for one node (requires push-mode NICs)."""

    def __init__(self, node):
        self.node = node
        self.env = node.env
        self.params: GammaParams = node.cfg.gamma
        self.kernel = node.kernel
        self.counters = Counters()
        self._ports: Dict[int, GammaPort] = {}
        self._assembling: Dict[Tuple[int, int], _Assembling] = {}
        nic = node.nics[0]
        if nic.rx_deliver != "push":
            raise RuntimeError(
                "GAMMA needs its modified driver (build the cluster with "
                "protocols=('gamma',) so NICs run in push mode)"
            )
        nic.push_callback = self._on_push

    def port(self, number: int) -> GammaPort:
        """The active port's state record (created on first use)."""
        state = self._ports.get(number)
        if state is None:
            state = self._ports[number] = GammaPort()
        return state

    def max_fragment(self) -> int:
        """User bytes per frame: MTU minus the GAMMA header."""
        return self.node.mtu() - self.params.header_bytes

    # -- send -------------------------------------------------------------
    def send(self, dst_node: int, port: int, nbytes: int, payload: Any = None) -> Generator:
        """Lightweight-trap send; fragments pulled 0-copy from user memory."""

        def body() -> Generator:
            msg_id = next(_msg_ids)
            frag_max = self.max_fragment()
            nic = self.node.nics[0]
            for offset, frag in fragment_plan(nbytes, frag_max):
                yield from self.kernel.cpu.execute(
                    self.params.port_tx_ns, PRIO_KERNEL, label="gamma_tx"
                )
                pkt = GammaPacket(
                    src_node=self.node.node_id,
                    dst_node=dst_node,
                    port=port,
                    msg_id=msg_id,
                    frag_offset=offset,
                    frag_bytes=frag,
                    msg_bytes=nbytes,
                    payload=payload,
                )
                desc = TxDescriptor(
                    dst=self.node.mac_of(dst_node, 0),
                    ethertype=EtherType.GAMMA,
                    payload_bytes=self.params.header_bytes + frag,
                    payload=pkt,
                    from_user_memory=True,
                )
                yield nic.post_tx(desc)  # blocking on ring space
            self.counters.add("msgs_sent")
            self.counters.add("bytes_sent", nbytes)
            return msg_id

        result = yield from self.kernel.lightweight_call(body(), label="gamma_send")
        return result

    # -- receive (interrupt context, modified driver) -------------------------
    def _on_push(self, rx: RxFrame) -> None:
        self.kernel.irq.raise_irq(lambda rx=rx: self._rx_handler(rx), label="gamma.rx")

    def _rx_handler(self, rx: RxFrame) -> Generator:
        pkt: GammaPacket = rx.frame.payload
        yield from self.kernel.cpu.execute(self.params.port_rx_ns, PRIO_IRQ, label="gamma_rx")
        # Data was DMA'd directly into the destination user buffer by the
        # patched driver: no further copy.
        key = (pkt.src_node, pkt.msg_id)
        acc = self._assembling.get(key)
        if acc is None:
            acc = self._assembling[key] = _Assembling(msg_bytes=pkt.msg_bytes, payload=pkt.payload)
        acc.received += pkt.frag_bytes
        if acc.received < acc.msg_bytes or (acc.msg_bytes == 0 and not pkt.is_last_fragment):
            return
        del self._assembling[key]
        msg = GammaMessage(
            src_node=pkt.src_node,
            port=pkt.port,
            nbytes=pkt.msg_bytes,
            msg_id=pkt.msg_id,
            payload=acc.payload,
            completed_at=self.env.now,
        )
        self.counters.add("msgs_rx")
        state = self.port(pkt.port)
        if state.waiters:
            state.waiters.pop(0).succeed(msg)
        else:
            state.ready.append(msg)

    # -- recv -------------------------------------------------------------
    def recv(self, port: int) -> Generator:
        """Blocking receive on an active port (lightweight trap + wait)."""

        def body() -> Generator:
            state = self.port(port)
            if state.ready:
                return state.ready.pop(0)
            event = self.env.event()
            state.waiters.append(event)
            msg = yield event  # GAMMA wake path skips the full scheduler
            return msg

        msg = yield from self.kernel.lightweight_call(body(), label="gamma_recv")
        return msg
