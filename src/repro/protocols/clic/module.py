"""CLIC_MODULE — the in-kernel protocol engine.

This is the paper's contribution (§3.1).  The module lives inside the
kernel; user processes reach it through one system call per operation.
On **send** it composes the 14 B Ethernet + 12 B CLIC headers, fills an
``SK_BUFF`` (scatter/gather over the *user* pages when the NIC supports
it — the Gigabit 0-copy path), and calls the unmodified driver.  If the
driver reports the NIC busy, the data is copied once into system memory
(that copy overlaps other traffic) and a backlog pump retries.  On
**receive** the module runs from the bottom halves (or directly from the
IRQ handler when the Figure 8(b) improvement is enabled), decodes the
packet type, and either copies the data straight into the memory of a
waiting process / remote-write region or parks it in system memory until
a ``recv`` arrives.

Reliability (sliding window, cumulative acks, retransmission) is per
peer-node channel; §5's extra features — same-node delivery, Ethernet
broadcast, send-with-confirmation, kernel-function packets, channel
bonding over several NICs — are all here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ...config import ClicParams
from ...hw.cpu import PRIO_KERNEL, PRIO_SOFTIRQ
from ...hw.nic import BROADCAST, EtherType, MacAddress
from ...oskernel import SkBuff
from ...sim import Counters, Environment, Event, Store
from ..headers import ClicAck, ClicPacket, ClicPacketType, ClicTrain, fragment_plan
from ..reliability import OrderedReceiver, RtoEstimator, WindowedSender

__all__ = ["ClicModule", "ClicMessage", "RemoteRegion"]

ETH_HEADER = 14


@dataclass
class ClicMessage:
    """A complete message as handed to the application."""

    src_node: int
    port: int
    tag: int
    nbytes: int
    msg_id: int
    payload: Any = None
    remote_write: bool = False
    completed_at: float = 0.0
    #: True once the payload sits in the receiving process's memory
    in_user_memory: bool = False


@dataclass
class RemoteRegion:
    """A user-memory window registered for asynchronous remote writes."""

    port: int
    size: int
    bytes_written: int = 0
    #: events to succeed as messages complete
    waiters: List[Event] = field(default_factory=list)
    completed_messages: int = 0
    #: completions not yet observed by a waiter (so notifications are
    #: never lost when writes finish while nobody is waiting)
    unclaimed: List["ClicMessage"] = field(default_factory=list)


@dataclass
class _Partial:
    """A message being reassembled from fragments."""

    src_node: int
    port: int
    tag: int
    msg_id: int
    msg_bytes: int
    received: int = 0
    #: receiver already bound: fragments are copied to user memory on arrival
    bound_waiter: Optional[Event] = None
    remote_write: bool = False
    payload: Any = None


class _PortState:
    def __init__(self) -> None:
        self.ready: List[ClicMessage] = []
        self.waiters: List[Tuple[Callable[[ClicMessage], bool], Event]] = []
        self.region: Optional[RemoteRegion] = None


class ClicModule:
    """One node's CLIC kernel module."""

    def __init__(self, node):
        self.node = node
        self.env: Environment = node.env
        self.params: ClicParams = node.cfg.clic
        self.kernel = node.kernel
        #: tracing scope of this module, e.g. ``node0.clic``
        self.scope = f"{node.name}.clic"
        self.tracer = self.kernel.tracer
        self.counters = Counters(registry=self.kernel.metrics, prefix=f"{self.scope}.")
        self._msg_ids = itertools.count(1)

        self._senders: Dict[int, WindowedSender] = {}
        self._receivers: Dict[int, OrderedReceiver] = {}
        self._ports: Dict[int, _PortState] = {}
        self._partials: Dict[Tuple[int, int], _Partial] = {}
        self._rx_ready: List[ClicPacket] = []  # fragments released in-order
        self._kernel_fns: Dict[int, Callable] = {}
        self._bond_rr = 0  # round-robin channel-bonding cursor

        #: peers declared unreachable — by retry exhaustion on a data
        #: channel or by the control layer's aliveness pings; both paths
        #: converge here so the module has ONE opinion per peer.
        self.dead_peers: Dict[int, str] = {}
        #: callbacks ``(peer: int, reason: str)`` fired once per death
        self.peer_death_listeners: List[Callable[[int, str], None]] = []

        #: staged (system-memory) sends waiting for NIC ring space
        self._backlog: Store = Store(self.env, name=f"{node.name}.clic.backlog")
        self.env.process(self._backlog_pump(), name=f"{node.name}.clic.pump")

        self.kernel.register_protocol(EtherType.CLIC, self._rx_entry)

    # ------------------------------------------------------------------
    # configuration helpers
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    #: descriptor size handed to a fragmentation-offload NIC (§2 / future
    #: work): the module sends super-packets and the firmware splits them
    OFFLOAD_CHUNK = 64 * 1024

    def max_fragment(self) -> int:
        """User bytes per software fragment.

        Normally MTU minus the CLIC header; with on-NIC fragmentation
        (the paper's declined-for-portability optimisation, modeled as
        ABL-FRAG) the module posts much larger descriptors and the NIC
        firmware does the MTU split/reassembly, saving per-fragment
        module + driver + interrupt work.
        """
        if self.node.nics[0].params.supports_fragmentation:
            return self.OFFLOAD_CHUNK - self.params.header_bytes
        return self.node.mtu() - self.params.header_bytes

    def port(self, number: int) -> _PortState:
        """The port's state record (created on first use)."""
        state = self._ports.get(number)
        if state is None:
            state = self._ports[number] = _PortState()
        return state

    def _sender(self, dst_node: int) -> WindowedSender:
        sender = self._senders.get(dst_node)
        if sender is None:
            rto = None
            if self.params.adaptive_rto:
                rto = RtoEstimator(
                    initial_ns=self.params.retransmit_timeout_ns,
                    min_ns=self.params.min_rto_ns,
                    max_ns=self.params.max_rto_ns,
                )
            sender = WindowedSender(
                self.env,
                window=self.params.window_frames,
                retransmit_timeout_ns=self.params.retransmit_timeout_ns,
                max_retries=self.params.max_retries,
                retransmit=lambda packets, d=dst_node: self._retransmit(d, packets),
                name=f"{self.node.name}.clic.tx->{dst_node}",
                rto=rto,
                counters=Counters(
                    registry=self.kernel.metrics, prefix=f"{self.scope}.tx{dst_node}."
                ),
                fail_listener=lambda reason, d=dst_node: self._on_peer_failed(d, reason),
            )
            sender.dupack_threshold = self.params.dupack_threshold
            self._senders[dst_node] = sender
        return sender

    def _receiver(self, src_node: int) -> OrderedReceiver:
        receiver = self._receivers.get(src_node)
        if receiver is None:
            receiver = OrderedReceiver(
                self.env,
                deliver=self._rx_ready.append,
                send_ack=lambda cum, s=src_node: self._emit_ack(s, cum),
                ack_every=self.params.ack_every,
                ack_delay_ns=self.params.ack_delay_ns,
                stash_limit=self.params.reorder_stash_frames,
                name=f"{self.node.name}.clic.rx<-{src_node}",
                counters=Counters(
                    registry=self.kernel.metrics, prefix=f"{self.scope}.rx{src_node}."
                ),
            )
            self._receivers[src_node] = receiver
        return receiver

    def reorder_stash_depth(self, src_node: int) -> int:
        """Out-of-order stash occupancy for the channel from ``src_node``
        (0 when the channel does not exist yet) — flow-mode eligibility
        consults this through :attr:`FlowRoute.stash_depth`."""
        receiver = self._receivers.get(src_node)
        return receiver.stash_depth if receiver is not None else 0

    # -- peer aliveness -------------------------------------------------------
    def peer_is_dead(self, peer: int) -> bool:
        """True once ``peer`` has been declared unreachable."""
        return peer in self.dead_peers

    def declare_peer_dead(self, peer: int, reason: str) -> None:
        """Record ``peer`` as unreachable and notify listeners (idempotent).

        Any live sender channel to the peer is aborted, so blocked
        ``send``/``flush`` callers observe :class:`DeliveryFailed` — the
        retry-exhaustion path and the proactive-ping path (see
        :class:`~repro.protocols.clic.control.ClicControl`) thereby agree.
        """
        if peer in self.dead_peers:
            return
        self.dead_peers[peer] = reason
        self.counters.add("peers_dead")
        self.tracer.instant(self.scope, "peer_dead", peer=peer, reason=reason)
        sender = self._senders.get(peer)
        if sender is not None and not sender.failed:
            sender.abort(f"peer {peer} declared dead: {reason}")
        for listener in list(self.peer_death_listeners):
            listener(peer, reason)

    def _on_peer_failed(self, peer: int, reason: str) -> None:
        """A sender channel exhausted its retry budget."""
        self.declare_peer_dead(peer, reason)

    # ------------------------------------------------------------------
    # send path (runs in kernel context, inside the caller's syscall)
    # ------------------------------------------------------------------
    def send(
        self,
        dst_node: int,
        port: int,
        nbytes: int,
        tag: int = 0,
        ptype: ClicPacketType = ClicPacketType.DATA,
        payload: Any = None,
        remote_write: bool = False,
    ) -> Generator:
        """Reliable message send; returns (msg_id) once all fragments are
        handed off to the NIC or staged in system memory."""
        if nbytes < 0:
            raise ValueError("negative message size")
        if dst_node == self.node_id:
            result = yield from self._send_local(port, nbytes, tag, payload)
            return result
        msg_id = next(self._msg_ids)
        span = self.tracer.begin(self.scope, "clic_send",
                                 dst=dst_node, nbytes=nbytes, msg=msg_id)
        journeys = self.tracer.journeys
        if journeys is not None:
            journeys.begin(self.node_id, msg_id, dst_node, port, nbytes, self.scope)
        sender = self._sender(dst_node)
        if remote_write:
            ptype = ClicPacketType.REMOTE_WRITE
        frag_max = self.max_fragment()
        plan = list(fragment_plan(nbytes, frag_max))
        # Hybrid fast path (flow mode): with the controller installed,
        # module-level preconditions met, and the controller's
        # eligibility oracle agreeing, a run of full-size fragments
        # advances as one analytic train instead of per-fragment.
        flow = self.env.flow
        trainable = (
            flow is not None
            and journeys is None
            and len(self.node.drivers) == 1
            and ptype in (ClicPacketType.DATA, ClicPacketType.MPI,
                          ClicPacketType.REMOTE_WRITE)
        )
        index = 0
        while index < len(plan):
            offset, frag = plan[index]
            yield from sender.reserve()
            k = 0
            if trainable and frag == frag_max and not self._backlog.items:
                # The tail fragment (the last entry, full-size or not)
                # never rides a train — batched delivery stays strictly
                # mid-stream, so message completion is always exact.
                remaining_full = len(plan) - 1 - index
                k = flow.plan_train(self.node_id, dst_node, sender,
                                    remaining_full, self.env.now)
            if k >= 2:
                packets = []
                for train_offset, train_frag in plan[index:index + k]:
                    packets.append(ClicPacket(
                        ptype=ptype,
                        src_node=self.node_id,
                        dst_node=dst_node,
                        port=port,
                        msg_id=msg_id,
                        seq=0,  # assigned at register
                        frag_offset=train_offset,
                        frag_bytes=train_frag,
                        msg_bytes=nbytes,
                        tag=tag,
                        payload=payload,
                    ))
                for pkt, seq in zip(packets, sender.register_train(packets)):
                    pkt.seq = seq
                train = ClicTrain(packets=tuple(packets), frag_bytes=frag_max)
                yield from self._tx_train(train, dst_node)
                index += k
                continue
            pkt = ClicPacket(
                ptype=ptype,
                src_node=self.node_id,
                dst_node=dst_node,
                port=port,
                msg_id=msg_id,
                seq=0,  # assigned at register
                frag_offset=offset,
                frag_bytes=frag,
                msg_bytes=nbytes,
                tag=tag,
                payload=payload,
            )
            pkt.seq = sender.register(pkt)
            if journeys is not None:
                journeys.fragment(pkt, self.scope)
            yield from self._tx_packet(pkt)
            index += 1
        self.counters.add("msgs_sent")
        self.counters.add("bytes_sent", nbytes)
        span.end()
        return msg_id

    def flush(self, dst_node: int) -> Generator:
        """Wait until every packet sent to ``dst_node`` is acknowledged
        (the §5 "send with confirmation of reception" primitive)."""
        if dst_node == self.node_id:
            return
        yield from self._sender(dst_node).drain()

    def broadcast(self, port: int, nbytes: int, tag: int = 0, payload: Any = None) -> Generator:
        """Ethernet data-link broadcast (unreliable, §5)."""
        msg_id = next(self._msg_ids)
        frag_max = self.max_fragment()
        for offset, frag in fragment_plan(nbytes, frag_max):
            pkt = ClicPacket(
                ptype=ClicPacketType.BCAST,
                src_node=self.node_id,
                dst_node=-1,
                port=port,
                msg_id=msg_id,
                seq=0,
                frag_offset=offset,
                frag_bytes=frag,
                msg_bytes=nbytes,
                tag=tag,
                payload=payload,
            )
            yield from self._tx_packet(pkt, dst_mac=BROADCAST)
        self.counters.add("bcasts_sent")
        return msg_id

    def send_kernel_fn(self, dst_node: int, fn_id: int, nbytes: int = 0) -> Generator:
        """Invoke a registered kernel function on ``dst_node`` (§3.1's
        "kernel function packet" class)."""
        yield from self.send(
            dst_node, port=0, nbytes=nbytes, tag=fn_id, ptype=ClicPacketType.KERNEL_FN
        )

    def register_kernel_fn(self, fn_id: int, handler: Callable[[ClicPacket], Generator]) -> None:
        """Install a kernel-function handler for ``fn_id``."""
        if fn_id in self._kernel_fns:
            raise ValueError(f"kernel fn {fn_id} already registered")
        self._kernel_fns[fn_id] = handler

    # -- transmission mechanics ----------------------------------------------
    def _wire_bytes(self, pkt: ClicPacket) -> int:
        return self.params.header_bytes + pkt.frag_bytes

    def _tx_packet(self, pkt: ClicPacket, dst_mac: Optional[MacAddress] = None) -> Generator:
        """Compose headers + SK_BUFF, call the driver; stage on refusal."""
        cpu = self.kernel.cpu
        span = self.tracer.begin(self.scope, "clic_tx",
                                 pkt=pkt.packet_id, nbytes=pkt.frag_bytes)
        yield from cpu.execute(self.params.module_tx_ns, PRIO_KERNEL, label="clic_tx")
        zero_copy = self.params.zero_copy and self.node.nic_supports_sg()
        driver, mac = self._route(pkt, dst_mac)
        if zero_copy:
            skb = SkBuff.for_user_payload(pkt.frag_bytes, payload=pkt)
        else:
            # Fast Ethernet-era path: one copy user -> system memory first.
            yield from self.kernel.copy_user_to_system(pkt.frag_bytes)
            skb = SkBuff.for_system_payload(pkt.frag_bytes, payload=pkt)
        skb.push_header("clic", self.params.header_bytes)
        accepted = yield from driver.transmit(skb, mac, EtherType.CLIC)
        journeys = self.tracer.journeys
        if journeys is not None:
            journeys.tx(pkt, self.scope, accepted)
        if accepted:
            self.counters.add("pkts_tx")
            span.end(accepted=True)
            return
        # NIC busy: stage in system memory (the copy overlaps other
        # traffic; §3.1) and let the pump retry.
        if skb.is_zero_copy:
            yield from self.kernel.copy_user_to_system(pkt.frag_bytes)
            skb.relocate("system")
            self.counters.add("staged_copies")
        self.counters.add("pkts_staged")
        self._backlog.put((skb, mac))
        span.end(accepted=False)

    def _tx_train(self, train: ClicTrain, dst_node: int) -> Generator:
        """Batched transmit of a flow-mode train (see :mod:`repro.sim.flowmode`).

        Closed-form over the batch: ``k`` module-entry costs in one CPU
        slice, one SK_BUFF spanning the ``k`` fragments (``k`` staging
        copy setups when not zero-copy), one driver call posting a
        ``k``-wide descriptor.  Every modeled cost equals the sum of the
        ``k`` per-packet passes it replaces.
        """
        cpu = self.kernel.cpu
        k = len(train.packets)
        total_user = train.frag_bytes * k
        span = self.tracer.begin(self.scope, "clic_tx_train",
                                 frames=k, nbytes=total_user)
        yield from cpu.execute(self.params.module_tx_ns * k, PRIO_KERNEL,
                               label="clic_tx")
        zero_copy = self.params.zero_copy and self.node.nic_supports_sg()
        driver, mac = self.node.drivers[0], self.node.mac_of(dst_node, 0)
        if zero_copy:
            skb = SkBuff.for_user_payload(total_user, payload=train)
        else:
            yield from self.kernel.copy_user_to_system(total_user, setups=k)
            skb = SkBuff.for_system_payload(total_user, payload=train)
        skb.push_header("clic", self.params.header_bytes * k)
        accepted = yield from driver.transmit(skb, mac, EtherType.CLIC)
        if accepted:
            self.counters.add("pkts_tx", k)
            span.end(accepted=True, frames=k)
            return
        # NIC busy mid-train: stage the whole batch (one copy, k setups)
        # and let the pump retry — the train stays intact in the backlog.
        if skb.is_zero_copy:
            yield from self.kernel.copy_user_to_system(total_user, setups=k)
            skb.relocate("system")
            self.counters.add("staged_copies", k)
        self.counters.add("pkts_staged", k)
        self._backlog.put((skb, mac))
        span.end(accepted=False, frames=k)

    def _route(self, pkt: ClicPacket, dst_mac: Optional[MacAddress]):
        """Pick (driver, dst MAC) — round-robin across bonded channels."""
        drivers = self.node.drivers
        if dst_mac is not None and dst_mac.is_broadcast:
            return drivers[0], dst_mac
        channel = self._bond_rr % len(drivers)
        self._bond_rr += 1
        mac = self.node.mac_of(pkt.dst_node, channel)
        return drivers[channel], mac

    def _backlog_pump(self) -> Generator:
        """Retry staged packets as NIC ring space frees up."""
        while True:
            skb, mac = yield self._backlog.get()
            while True:
                driver = self.node.drivers[self._bond_rr % len(self.node.drivers)]
                accepted = yield from driver.transmit(skb, mac, EtherType.CLIC)
                if accepted:
                    self.counters.add("pkts_tx_from_backlog")
                    break
                yield self.env.timeout(5_000.0)  # ring still full; retry soon

    def _retransmit(self, dst_node: int, packets: List[ClicPacket]) -> None:
        """WindowedSender timeout callback: re-emit in a kernel process."""

        def _do() -> Generator:
            for pkt in packets:
                self.counters.add("pkts_retx")
                yield from self._tx_packet(pkt)

        self.env.process(_do(), name=f"{self.node.name}.clic.retx")

    def _emit_ack(self, dst_node: int, cumulative_seq: int) -> None:
        """OrderedReceiver callback: send a cumulative ack packet."""

        def _do() -> Generator:
            cpu = self.kernel.cpu
            flow = self.env.flow
            route = (flow.express_ack_route(self.node_id, dst_node, self.env.now)
                     if flow is not None and len(self.node.drivers) == 1
                     and self.tracer.journeys is None else None)
            if route is not None:
                # Flow-mode express lane: the whole reverse path is
                # provably quiet, so charge the same local CPU work in
                # one slice and advance the ack with one closed-form
                # timer.  Conservation counters along the path are
                # bumped by the route's delivery hook; cumulative-ack
                # semantics tolerate any reordering against exact-path
                # acks.
                driver = self.node.drivers[0]
                yield from cpu.execute(
                    self.params.module_tx_ns / 2 + driver.params.tx_call_ns,
                    PRIO_SOFTIRQ, label="clic_ack_tx",
                )
                ack_bytes = ClicAck.WIRE_BYTES + self.params.header_bytes
                nic = self.node.nics[0]
                nic.counters.add("tx_frames")
                nic.counters.add("tx_bytes", ack_bytes)
                driver.counters.add("tx_accepted")
                self.counters.add("acks_tx")
                deliver = route.deliver_ack
                cum = cumulative_seq
                self.env.call_later(route.ack_latency_ns,
                                    lambda: deliver(cum))
                return
            yield from cpu.execute(self.params.module_tx_ns / 2, PRIO_SOFTIRQ, label="clic_ack_tx")
            ack = ClicAck(src_node=self.node_id, dst_node=dst_node, cumulative_seq=cumulative_seq)
            skb = SkBuff.for_system_payload(ClicAck.WIRE_BYTES, payload=ack)
            skb.push_header("clic", self.params.header_bytes)
            driver, mac = self.node.drivers[0], self.node.mac_of(dst_node, 0)
            accepted = yield from driver.transmit(skb, mac, EtherType.CLIC)
            if not accepted:
                self._backlog.put((skb, mac))
            self.counters.add("acks_tx")

        self.env.process(_do(), name=f"{self.node.name}.clic.ack")

    def receive_ack_express(self, src_node: int, cumulative_seq: int) -> None:
        """Terminal hook of the flow-mode ack express lane.

        Invoked by :attr:`FlowRoute.deliver_ack` once the closed-form
        flight time has elapsed; applies the ack with the exact same
        sender-side semantics as the packet path.
        """
        self.counters.add("acks_rx")
        self._sender(src_node).on_ack(cumulative_seq)

    # ------------------------------------------------------------------
    # receive path (bottom-half or direct-IRQ context)
    # ------------------------------------------------------------------
    def _rx_entry(self, skb: SkBuff) -> Generator:
        cpu = self.kernel.cpu
        span = self.tracer.begin(self.scope, "clic_rx", direct=skb.direct_delivery)
        item = skb.payload
        if isinstance(item, ClicTrain):
            # Flow-mode train: k module entries charged in one CPU
            # slice, then per-packet receiver semantics as pure calls
            # (sequencing, duplicate suppression and ack cadence are
            # identical to k separate arrivals).
            k = len(item.packets)
            yield from cpu.execute(self.params.module_rx_ns * k, PRIO_SOFTIRQ,
                                   label="clic_rx")
            for pkt in item.packets:
                pkt._direct_delivery = skb.direct_delivery
            self._receiver(item.packets[0].src_node).on_train(
                (pkt.seq, pkt) for pkt in item.packets
            )
            if self._rx_ready:
                # Drain in place: the receiver holds a bound ``append`` of
                # this exact list object, so rebinding would orphan it.
                fragments = self._rx_ready[:]
                self._rx_ready.clear()
                yield from self._consume_released(fragments)
            span.end(kind="train", frames=k)
            return
        yield from cpu.execute(self.params.module_rx_ns, PRIO_SOFTIRQ, label="clic_rx")
        if isinstance(item, ClicAck):
            self._sender(item.src_node).on_ack(item.cumulative_seq)
            self.counters.add("acks_rx")
            span.end(kind="ack")
            return
        if not isinstance(item, ClicPacket):
            # Malformed frame on our ethertype (corrupted peer, fuzzing):
            # the module must survive it — protection is a design goal.
            self.counters.add("rx_malformed")
            span.end(kind="malformed")
            return
        pkt: ClicPacket = item
        self.tracer.instant(
            self.scope, "module_rx", pkt=pkt.packet_id, nbytes=pkt.frag_bytes,
        )
        journeys = self.tracer.journeys
        if journeys is not None:
            journeys.hop(pkt, "bh", self.scope, direct=skb.direct_delivery)
        pkt._direct_delivery = skb.direct_delivery  # Figure 8(b) path
        if pkt.ptype is ClicPacketType.BCAST:
            self._rx_ready.append(pkt)  # unreliable: no sequencing
        else:
            self._receiver(pkt.src_node).on_packet(pkt.seq, pkt)
        # Process fragments released in order by the receiver machinery.
        while self._rx_ready:
            fragment = self._rx_ready.pop(0)
            yield from self._consume_fragment(fragment)
        span.end(pkt=pkt.packet_id)

    def _consume_released(self, fragments: List[ClicPacket]) -> Generator:
        """Consume fragments a train's arrival released, batching copies.

        When the whole run is one message *strictly mid-stream* (the
        common steady-state case: trains never carry a message's tail),
        the per-fragment staging copies collapse into one CPU slice
        charging ``k`` copy setups.  Anything else — mixed messages, a
        run that completes a message via previously stashed successors —
        falls back to exact per-fragment consumption.
        """
        first = fragments[0]
        key = (first.src_node, first.msg_id)
        total = sum(pkt.frag_bytes for pkt in fragments)
        partial = self._partials.get(key)
        received = partial.received if partial is not None else 0
        homogeneous = all(
            (pkt.src_node, pkt.msg_id) == key
            and pkt.ptype not in (ClicPacketType.KERNEL_FN, ClicPacketType.BCAST)
            for pkt in fragments
        )
        if not homogeneous or received + total >= first.msg_bytes:
            for pkt in fragments:
                yield from self._consume_fragment(pkt)
            return
        k = len(fragments)
        self.counters.add("pkts_rx", k)
        if partial is None:
            partial = _Partial(
                src_node=first.src_node,
                port=first.port,
                tag=first.tag,
                msg_id=first.msg_id,
                msg_bytes=first.msg_bytes,
                remote_write=first.ptype is ClicPacketType.REMOTE_WRITE,
                payload=first.payload,
            )
            self._partials[key] = partial
            if not partial.remote_write:
                self._bind_waiter(partial)
        direct = getattr(first, "_direct_delivery", False)
        if partial.remote_write:
            if not direct:
                yield from self.kernel.copy_system_to_user(
                    total, PRIO_SOFTIRQ, setups=k
                )
            region = self.port(first.port).region
            if region is not None:
                region.bytes_written += total
        elif partial.bound_waiter is not None and direct:
            self.counters.add("direct_user_deliveries", k)
        elif partial.bound_waiter is not None:
            yield from self.kernel.copy_system_to_user(
                total, PRIO_SOFTIRQ, setups=k
            )
        partial.received += total

    def _consume_fragment(self, pkt: ClicPacket) -> Generator:
        self.counters.add("pkts_rx")
        key = (pkt.src_node, pkt.msg_id)
        partial = self._partials.get(key)
        if partial is None:
            partial = _Partial(
                src_node=pkt.src_node,
                port=pkt.port,
                tag=pkt.tag,
                msg_id=pkt.msg_id,
                msg_bytes=pkt.msg_bytes,
                remote_write=pkt.ptype is ClicPacketType.REMOTE_WRITE,
                payload=pkt.payload,
            )
            self._partials[key] = partial
            if not partial.remote_write and pkt.ptype is not ClicPacketType.KERNEL_FN:
                self._bind_waiter(partial)

        direct = getattr(pkt, "_direct_delivery", False)
        if partial.remote_write:
            # Asynchronous remote write: straight to the registered user
            # region, no receive call needed (§3.1 step 7).  On the
            # Figure 8(b) path the DMA already targeted the region.
            if not direct:
                yield from self.kernel.copy_system_to_user(pkt.frag_bytes, PRIO_SOFTIRQ)
            region = self.port(pkt.port).region
            if region is not None:
                region.bytes_written += pkt.frag_bytes
        elif partial.bound_waiter is not None and direct:
            # Figure 8(b): the module directed the DMA straight into the
            # waiting process's buffer — no staging copy at all.
            self.counters.add("direct_user_deliveries")
        elif partial.bound_waiter is not None:
            # A process is already waiting: move the fragment into its
            # memory right away.
            yield from self.kernel.copy_system_to_user(pkt.frag_bytes, PRIO_SOFTIRQ)

        partial.received += pkt.frag_bytes
        journeys = self.tracer.journeys
        if journeys is not None:
            journeys.hop(pkt, "reassembly", self.scope,
                         received=partial.received, total=partial.msg_bytes)
        if partial.received < partial.msg_bytes or (partial.msg_bytes == 0 and not pkt.is_last_fragment):
            return
        # Message complete.
        del self._partials[key]
        if journeys is not None:
            journeys.deliver(pkt, self.scope, nbytes=partial.msg_bytes)
        if pkt.ptype is ClicPacketType.KERNEL_FN:
            handler = self._kernel_fns.get(pkt.tag)
            if handler is None:
                self.counters.add("kernel_fn_unknown")
            else:
                yield from handler(pkt)
            return
        message = ClicMessage(
            src_node=partial.src_node,
            port=partial.port,
            tag=partial.tag,
            nbytes=partial.msg_bytes,
            msg_id=partial.msg_id,
            payload=partial.payload,
            remote_write=partial.remote_write,
            completed_at=self.env.now,
            in_user_memory=partial.bound_waiter is not None or partial.remote_write,
        )
        self.counters.add("msgs_rx")
        self.counters.add("bytes_rx", message.nbytes)
        if partial.remote_write:
            region = self.port(message.port).region
            if region is not None:
                region.completed_messages += 1
                if region.waiters:
                    region.waiters.pop(0).succeed(message)
                else:
                    region.unclaimed.append(message)
            return
        if partial.bound_waiter is not None:
            partial.bound_waiter.succeed(message)
            return
        # A receiver may have blocked *after* the first fragment arrived
        # (so no waiter was bound then): match again at completion.
        state = self.port(message.port)
        for idx, (match, event) in enumerate(state.waiters):
            if match(message):
                state.waiters.pop(idx)
                event.succeed(message)
                return
        state.ready.append(message)

    def _bind_waiter(self, partial: _Partial) -> None:
        """Attach the first matching blocked receiver to this message."""
        state = self.port(partial.port)
        probe = ClicMessage(
            src_node=partial.src_node,
            port=partial.port,
            tag=partial.tag,
            nbytes=partial.msg_bytes,
            msg_id=partial.msg_id,
        )
        for idx, (match, event) in enumerate(state.waiters):
            if match(probe):
                state.waiters.pop(idx)
                partial.bound_waiter = event
                return

    # ------------------------------------------------------------------
    # receive API (kernel context, inside the caller's syscall)
    # ------------------------------------------------------------------
    def recv(
        self,
        port: int,
        tag: Optional[int] = None,
        src: Optional[int] = None,
        block: bool = True,
    ) -> Generator:
        """Receive a message on ``port``; returns a :class:`ClicMessage`.

        Non-blocking flavour returns ``None`` immediately when nothing
        matches ("_MODULE does nothing and returns", §3.1).
        """

        def match(msg: ClicMessage) -> bool:
            return (tag is None or msg.tag == tag) and (src is None or msg.src_node == src)

        state = self.port(port)
        for idx, msg in enumerate(state.ready):
            if match(msg):
                state.ready.pop(idx)
                if not msg.in_user_memory:
                    yield from self.kernel.copy_system_to_user(msg.nbytes)
                    msg.in_user_memory = True
                self.counters.add("recv_immediate")
                return msg
        if not block:
            self.counters.add("recv_would_block")
            return None
        event = self.env.event()
        state.waiters.append((match, event))
        self.counters.add("recv_blocked")
        msg = yield from self.kernel.block_on(event, label=f"recv:{port}")
        if not msg.in_user_memory:
            # Bound only at completion: the data was parked in system
            # memory fragment by fragment; move it out now.
            yield from self.kernel.copy_system_to_user(msg.nbytes)
            msg.in_user_memory = True
        return msg

    def probe(
        self,
        port: int,
        tag: Optional[int] = None,
        src: Optional[int] = None,
    ) -> Optional[ClicMessage]:
        """Non-consuming match test: the first complete ready message
        matching (tag, src), or ``None``.  The message stays queued (the
        MPI_Iprobe building block)."""

        def match(msg: ClicMessage) -> bool:
            return (tag is None or msg.tag == tag) and (src is None or msg.src_node == src)

        for msg in self.port(port).ready:
            if match(msg):
                return msg
        return None

    # -- remote-write regions -------------------------------------------------
    def register_region(self, port: int, size: int) -> RemoteRegion:
        """Expose ``size`` bytes of the caller's memory for remote writes."""
        state = self.port(port)
        if state.region is not None:
            raise ValueError(f"port {port} already has a remote-write region")
        state.region = RemoteRegion(port=port, size=size)
        return state.region

    def wait_remote_write(self, port: int) -> Generator:
        """Block until the next remote-write message completes."""
        region = self.port(port).region
        if region is None:
            raise ValueError(f"port {port} has no remote-write region")
        if region.unclaimed:
            return region.unclaimed.pop(0)
        event = self.env.event()
        region.waiters.append(event)
        msg = yield from self.kernel.block_on(event, label=f"rwrite:{port}")
        return msg

    # ------------------------------------------------------------------
    # same-node delivery (§5: "communication between processes running
    # on the same processor", which many rival layers cannot do)
    # ------------------------------------------------------------------
    def _send_local(self, port: int, nbytes: int, tag: int, payload: Any) -> Generator:
        msg_id = next(self._msg_ids)
        span = self.tracer.begin(self.scope, "clic_local", nbytes=nbytes, msg=msg_id)
        yield from self.kernel.cpu.execute(self.params.module_tx_ns, PRIO_KERNEL, label="clic_local")
        message = ClicMessage(
            src_node=self.node_id,
            port=port,
            tag=tag,
            nbytes=nbytes,
            msg_id=msg_id,
            payload=payload,
            completed_at=self.env.now,
        )
        state = self.port(port)
        for idx, (match, event) in enumerate(state.waiters):
            if match(message):
                state.waiters.pop(idx)
                # Single kernel-mediated copy, sender memory -> receiver memory.
                yield from self.kernel.copy_user_to_user(nbytes)
                message.in_user_memory = True
                message.completed_at = self.env.now
                event.succeed(message)
                self.counters.add("local_direct")
                span.end(path="direct")
                return msg_id
        # Nobody waiting: stage in system memory; recv() will copy out.
        yield from self.kernel.copy_user_to_system(nbytes)
        # A receiver may have blocked *during* the staging copy — re-check
        # before parking the message, or its wakeup is lost.
        for idx, (match, event) in enumerate(state.waiters):
            if match(message):
                state.waiters.pop(idx)
                message.completed_at = self.env.now
                event.succeed(message)
                self.counters.add("local_direct")
                span.end(path="late-direct")
                return msg_id
        state.ready.append(message)
        self.counters.add("local_staged")
        span.end(path="staged")
        return msg_id
