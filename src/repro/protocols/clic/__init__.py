"""CLIC: the paper's lightweight kernel-level protocol."""

from .api import ClicEndpoint
from .control import ClicControl, EchoStats
from .module import ClicMessage, ClicModule, RemoteRegion

__all__ = [
    "ClicControl",
    "ClicEndpoint",
    "ClicMessage",
    "ClicModule",
    "EchoStats",
    "RemoteRegion",
]
