"""CLIC control protocol: kernel-level echo and node aliveness.

§3.1 gives the CLIC header a packet-class field distinguishing "an MPI
packet, an internal packet, a kernel function packet, etc.".  The kernel
-function class lets one node run a registered function inside another
node's kernel without any user process being scheduled — this module
builds the two obvious services on top of it:

* **kernel echo** — a kernel-level ping: the probe and its reply are
  handled entirely in bottom-half context on the remote side, so the
  measured RTT is the OS-path floor (no remote syscall, no wakeup, no
  copy to user).  Useful for isolating how much of CLIC's 36 µs latency
  is the *receiver process* machinery versus the transport itself.
* **aliveness tracking** — cluster membership by periodic kernel pings,
  the building block a real cluster layer needs for fault reporting.
  CLIC's reliability machinery detects a dead peer by retry exhaustion;
  :meth:`ClicControl.watch` detects it proactively — and both routes
  funnel into :meth:`ClicModule.declare_peer_dead`, so retry exhaustion
  and ping loss always *agree* on which peers are down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ...sim import Counters, Environment, Event
from ..reliability import DeliveryFailed

__all__ = ["ClicControl", "EchoStats"]

#: kernel-function ids used by the control protocol
FN_ECHO_REQUEST = 0xE0
FN_ECHO_REPLY = 0xE1

_echo_ids = itertools.count(1)


@dataclass
class EchoStats:
    """Accumulated kernel-echo results for one peer."""

    peer: int
    sent: int = 0
    received: int = 0
    last_rtt_ns: float = 0.0
    total_rtt_ns: float = 0.0

    @property
    def mean_rtt_ns(self) -> float:
        return self.total_rtt_ns / self.received if self.received else 0.0

    @property
    def lost(self) -> int:
        return self.sent - self.received


class ClicControl:
    """Kernel-level control services on top of one node's CLIC module."""

    def __init__(self, node):
        self.node = node
        self.env: Environment = node.env
        self.module = node.clic
        self.counters = Counters()
        self._pending: Dict[int, Event] = {}  # echo id -> completion
        self._sent_at: Dict[int, float] = {}
        self.stats: Dict[int, EchoStats] = {}
        self.module.register_kernel_fn(FN_ECHO_REQUEST, self._on_echo_request)
        self.module.register_kernel_fn(FN_ECHO_REPLY, self._on_echo_reply)
        self.module.peer_death_listeners.append(self._on_peer_dead)

    # -- echo ---------------------------------------------------------------
    def echo(self, peer: int, timeout_ns: float = 10_000_000.0) -> Generator:
        """Kernel ping: returns the RTT in ns, or ``None`` on timeout.

        Runs in the caller's process context; the send enters the kernel
        through a syscall, but the remote side never leaves it.
        """
        echo_id = next(_echo_ids)
        done = self.env.event()
        self._pending[echo_id] = done
        stats = self.stats.setdefault(peer, EchoStats(peer=peer))
        stats.sent += 1
        self._sent_at[echo_id] = self.env.now
        self.counters.add("echo_sent")
        try:
            yield from self.node.kernel.syscall(
                self.module.send(
                    peer, port=0, nbytes=8, tag=FN_ECHO_REQUEST,
                    ptype=_kernel_fn_type(), payload=("echo", echo_id, self.node.node_id),
                ),
                label="clic_echo",
            )
        except DeliveryFailed:
            # The data channel to the peer is already dead — an echo
            # cannot leave the node; report it as a lost probe.
            self._pending.pop(echo_id, None)
            self._sent_at.pop(echo_id, None)
            self.counters.add("echo_failed")
            return None
        outcome = yield self.env.any_of([done, self.env.timeout(timeout_ns)])
        self._pending.pop(echo_id, None)
        sent_at = self._sent_at.pop(echo_id)
        if done not in outcome:
            self.counters.add("echo_timeouts")
            return None
        rtt = self.env.now - sent_at
        stats.received += 1
        stats.last_rtt_ns = rtt
        stats.total_rtt_ns += rtt
        return rtt

    def is_alive(self, peer: int, probes: int = 2, timeout_ns: float = 5_000_000.0) -> Generator:
        """Probe a peer: True as soon as one echo returns.

        A peer the module has already declared dead (by retry exhaustion
        or by a :meth:`watch` process) is reported down without probing.
        """
        if self.module.peer_is_dead(peer):
            return False
        for _ in range(probes):
            rtt = yield from self.echo(peer, timeout_ns=timeout_ns)
            if rtt is not None:
                return True
        return False

    # -- proactive aliveness watching ------------------------------------------
    def watch(
        self,
        peer: int,
        interval_ns: float = 100_000_000.0,
        timeout_ns: float = 50_000_000.0,
        loss_threshold: int = 3,
    ) -> Generator:
        """Ping ``peer`` every ``interval_ns``; after ``loss_threshold``
        *consecutive* lost probes declare it dead via the module.

        Run as a process: ``env.process(control.watch(peer))``.  The loop
        ends once the peer is down (however that was discovered).
        """
        misses = 0
        while not self.module.peer_is_dead(peer):
            rtt = yield from self.echo(peer, timeout_ns=timeout_ns)
            if self.module.peer_is_dead(peer):
                break
            if rtt is None:
                misses += 1
                self.counters.add("watch_misses")
                if misses >= loss_threshold:
                    self.module.declare_peer_dead(
                        peer, f"{misses} consecutive aliveness probes lost"
                    )
                    break
            else:
                misses = 0
            yield self.env.timeout(interval_ns)

    def peer_down(self, peer: int) -> bool:
        """True once ``peer`` is known dead (shared module verdict)."""
        return self.module.peer_is_dead(peer)

    def _on_peer_dead(self, peer: int, reason: str) -> None:
        self.counters.add("peers_reported_dead")

    # -- kernel-side handlers (bottom-half context) ----------------------------
    def _on_echo_request(self, pkt) -> Generator:
        """Remote side: bounce the reply straight from kernel context."""
        self.counters.add("echo_served")
        kind, echo_id, origin = pkt.payload
        yield from self.module.send(
            origin, port=0, nbytes=8, tag=FN_ECHO_REPLY,
            ptype=_kernel_fn_type(), payload=("reply", echo_id, self.node.node_id),
        )

    def _on_echo_reply(self, pkt) -> Generator:
        kind, echo_id, origin = pkt.payload
        done = self._pending.get(echo_id)
        if done is not None and not done.triggered:
            done.succeed()
        self.counters.add("echo_replies")
        return
        yield  # pragma: no cover - keeps this a generator


def _kernel_fn_type():
    from ..headers import ClicPacketType

    return ClicPacketType.KERNEL_FN
