"""User-level CLIC API.

Applications talk to CLIC through system calls (§3.1: an ``INT 80h``
costing ~0.65 µs round trip — CLIC deliberately keeps the OS in the
path, §3.2(a)).  :class:`ClicEndpoint` binds a user process to a port
and wraps every module operation in :meth:`Kernel.syscall`, so all the
entry/exit and scheduler costs the paper itemizes are charged exactly
once per call.

All methods are generators: application code runs inside the simulation
(``yield from endpoint.send(...)``).
"""

from __future__ import annotations

from typing import Generator, Optional

from ...oskernel import UserProcess
from .module import ClicMessage, ClicModule, RemoteRegion

__all__ = ["ClicEndpoint"]


class ClicEndpoint:
    """A (process, port) binding to the node's CLIC module."""

    def __init__(self, proc: UserProcess, port: int):
        self.proc = proc
        self.port = port
        self.module: ClicModule = proc.node.clic
        self.kernel = proc.node.kernel

    # -- sending -----------------------------------------------------------
    def send(self, dst_node: int, nbytes: int, tag: int = 0, payload=None) -> Generator:
        """Reliable asynchronous send: returns at handoff (msg buffered /
        on the NIC), not at delivery."""
        result = yield from self.kernel.syscall(
            self.module.send(dst_node, self.port, nbytes, tag=tag, payload=payload),
            label="clic_send",
        )
        return result

    def send_confirm(self, dst_node: int, nbytes: int, tag: int = 0, payload=None) -> Generator:
        """Send and wait for acknowledgment of reception (§5 primitive)."""

        def body() -> Generator:
            msg_id = yield from self.module.send(
                dst_node, self.port, nbytes, tag=tag, payload=payload
            )
            yield from self.module.flush(dst_node)
            return msg_id

        result = yield from self.kernel.syscall(body(), label="clic_send_confirm")
        return result

    def flush(self, dst_node: int) -> Generator:
        """Wait until everything sent to ``dst_node`` is acknowledged."""
        yield from self.kernel.syscall(self.module.flush(dst_node), label="clic_flush")

    def remote_write(self, dst_node: int, nbytes: int, tag: int = 0, payload=None) -> Generator:
        """Asynchronous write into the receiver's registered region; the
        remote process needs no receive call (§3.1)."""
        result = yield from self.kernel.syscall(
            self.module.send(
                dst_node, self.port, nbytes, tag=tag, payload=payload, remote_write=True
            ),
            label="clic_remote_write",
        )
        return result

    def broadcast(self, nbytes: int, tag: int = 0, payload=None) -> Generator:
        """Ethernet data-link broadcast to every node (unreliable)."""
        result = yield from self.kernel.syscall(
            self.module.broadcast(self.port, nbytes, tag=tag, payload=payload),
            label="clic_bcast",
        )
        return result

    # -- receiving -----------------------------------------------------------
    def recv(self, tag: Optional[int] = None, src: Optional[int] = None) -> Generator:
        """Blocking receive; returns a :class:`ClicMessage`."""
        msg = yield from self.kernel.syscall(
            self.module.recv(self.port, tag=tag, src=src, block=True),
            label="clic_recv",
        )
        return msg

    def recv_nonblocking(self, tag: Optional[int] = None, src: Optional[int] = None) -> Generator:
        """Probe: a complete message or ``None``, never blocks."""
        msg = yield from self.kernel.syscall(
            self.module.recv(self.port, tag=tag, src=src, block=False),
            label="clic_recv_nb",
        )
        return msg

    # -- remote-write regions ---------------------------------------------
    def register_region(self, size: int) -> RemoteRegion:
        """Expose ``size`` bytes for asynchronous remote writes (no
        syscall cost modeled: done once at setup)."""
        return self.module.register_region(self.port, size)

    def wait_remote_write(self) -> Generator:
        """Block until the next remote write into our region completes."""
        msg = yield from self.kernel.syscall(
            self.module.wait_remote_write(self.port), label="clic_wait_rwrite"
        )
        return msg
