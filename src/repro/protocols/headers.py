"""Wire-format definitions for the simulated protocol stacks.

Packets are Python dataclasses riding inside :class:`~repro.hw.nic.Frame`
payloads; their *sizes* (what the paper cares about) are accounted
explicitly:

* CLIC: 14 B Ethernet level-1 header + **12 B CLIC header** that encodes
  the packet class ("an MPI packet, an internal packet, a kernel function
  packet, etc." — §3.1) — nothing else.  No IP, no routing.
* TCP/IP: 14 B Ethernet + 20 B IP + 20 B TCP.

The CLIC header fields here are a faithful superset of what 12 bytes can
encode (type, port, sequence, fragment accounting); Python object fields
that exist only for simulation bookkeeping (``packet_id``, ``payload``)
carry no modeled bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Optional, Tuple

__all__ = [
    "ClicPacketType",
    "ClicPacket",
    "ClicTrain",
    "ClicAck",
    "ClicCollective",
    "COLLECTIVE_OPS",
    "TcpSegment",
    "GammaPacket",
    "ViaPacket",
    "fragment_plan",
]

_packet_ids = itertools.count(1)


def fragment_plan(nbytes: int, frag_max: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(frag_offset, frag_bytes)`` for one ``nbytes`` message.

    The single source of truth for software fragmentation: every
    protocol module (CLIC send/broadcast, GAMMA, VIA) splits messages
    with this plan.  Fragments are contiguous, in offset order, each at
    most ``frag_max`` user bytes; a zero-byte message still yields one
    (empty) fragment so that "a message" is never zero packets on the
    wire.
    """
    if nbytes < 0:
        raise ValueError(f"negative message size (got {nbytes!r})")
    if frag_max <= 0:
        raise ValueError(f"fragment capacity must be positive (got {frag_max!r})")
    offset = 0
    while True:
        frag = min(frag_max, nbytes - offset)
        yield offset, frag
        offset += frag
        if offset >= nbytes:
            return


class ClicPacketType(Enum):
    """The packet classes the 2-byte CLIC type field distinguishes."""

    DATA = "data"
    MPI = "mpi"  # data carrying an MPI envelope
    REMOTE_WRITE = "remote_write"
    ACK = "ack"
    INTERNAL = "internal"
    KERNEL_FN = "kernel_fn"
    BCAST = "bcast"


@dataclass
class ClicPacket:
    """One CLIC packet (one Ethernet frame's worth)."""

    ptype: ClicPacketType
    src_node: int
    dst_node: int
    port: int
    msg_id: int
    seq: int  # per (src,dst) channel sequence number
    frag_offset: int  # byte offset of this fragment in its message
    frag_bytes: int  # payload bytes in this fragment
    msg_bytes: int  # total message size
    tag: int = 0
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def is_last_fragment(self) -> bool:
        return self.frag_offset + self.frag_bytes >= self.msg_bytes


@dataclass
class ClicTrain:
    """A batch of consecutive, equal-size CLIC fragments (flow mode).

    Carries no modeled bytes of its own: a train is ``len(packets)``
    ordinary frames that happen to advance through the pipeline as one
    analytically batched unit (see :mod:`repro.sim.flowmode`).  Every
    packet is a full ``frag_bytes`` fragment of the same message — the
    short tail fragment always travels alone — so per-frame wire math
    divides evenly.  Any hop that cannot keep batching (ring shortfall,
    mid-flight blackout) splits the train back into per-packet frames
    and continues exact simulation from there.
    """

    packets: Tuple[ClicPacket, ...]
    #: user-payload bytes of each fragment (identical across the train)
    frag_bytes: int

    def __len__(self) -> int:
        return len(self.packets)


@dataclass
class ClicAck:
    """Cumulative acknowledgment (an INTERNAL packet)."""

    src_node: int
    dst_node: int
    cumulative_seq: int  # all seq < this are acknowledged
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: modeled bytes of ack info riding after the CLIC header
    WIRE_BYTES = 8


#: collective operations the NIC engine understands
COLLECTIVE_OPS = ("barrier", "bcast", "allreduce")


@dataclass
class ClicCollective:
    """One hop of a NIC-resident collective (combined/forwarded on-card).

    Quadrics/Myrinet-style: the NIC recognizes this header, runs the
    combine/forward step in firmware, and never raises an IRQ or crosses
    the syscall/BH boundary — only the final completion touches the host
    (a DMA'd completion word).  ``phase`` is ``"up"`` while contributions
    combine toward the root of the binomial tree and ``"down"`` for the
    release/data broadcast; data ops fragment to the MTU, so ``nbytes``
    is the op's total payload and ``frag_bytes`` this frame's share.
    """

    op: str               # one of COLLECTIVE_OPS
    phase: str            # "up" (combine) | "down" (release/data)
    coll_id: int          # per-engine post counter (same program order on
                          # every rank, so ids agree cluster-wide)
    root: int             # root *rank* of the binomial tree
    src_rank: int
    dst_rank: int
    nbytes: int = 0       # total op payload (0 for barrier)
    frag_bytes: int = 0   # this fragment's payload share
    contributions: int = 1  # ranks folded into this (sub)tree so far
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: modeled bytes of collective header riding after the Ethernet header
    WIRE_BYTES = 16


@dataclass
class TcpSegment:
    """One TCP segment (simplified: byte-stream with segment seq)."""

    src_node: int
    dst_node: int
    conn_id: int
    seq: int  # segment index within the connection
    data_bytes: int
    is_ack: bool = False
    ack_seq: int = 0
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))


@dataclass
class GammaPacket:
    """GAMMA active-port packet (comparator model)."""

    src_node: int
    dst_node: int
    port: int
    msg_id: int
    frag_offset: int
    frag_bytes: int
    msg_bytes: int
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def is_last_fragment(self) -> bool:
        return self.frag_offset + self.frag_bytes >= self.msg_bytes


@dataclass
class ViaPacket:
    """VIA packet: delivered to a VI's receive queue, unreliable."""

    src_node: int
    dst_node: int
    vi_id: int
    msg_id: int
    frag_offset: int
    frag_bytes: int
    msg_bytes: int
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def is_last_fragment(self) -> bool:
        return self.frag_offset + self.frag_bytes >= self.msg_bytes
