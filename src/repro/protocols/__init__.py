"""Protocol stacks: CLIC (the contribution), TCP/IP (baseline), GAMMA and
VIA (comparators), plus shared wire formats and reliability machinery."""

from .clic import ClicEndpoint, ClicMessage, ClicModule
from .gamma import GammaLayer, GammaMessage
from .headers import ClicAck, ClicPacket, ClicPacketType, GammaPacket, TcpSegment, ViaPacket
from .reliability import DeliveryFailed, OrderedReceiver, WindowedSender
from .tcpip import TcpIpStack, TcpSocket, UdpSocket
from .via import ViaMessage, ViaNic, VirtualInterface

__all__ = [
    "ClicAck",
    "ClicEndpoint",
    "ClicMessage",
    "ClicModule",
    "ClicPacket",
    "ClicPacketType",
    "DeliveryFailed",
    "GammaLayer",
    "GammaMessage",
    "GammaPacket",
    "OrderedReceiver",
    "TcpIpStack",
    "TcpSegment",
    "TcpSocket",
    "UdpSocket",
    "ViaMessage",
    "ViaNic",
    "ViaPacket",
    "VirtualInterface",
    "WindowedSender",
]
