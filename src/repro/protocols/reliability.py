"""Reliable, in-order delivery over an unreliable frame service.

CLIC is "a reliable transport protocol" (§3.1) — the gap between what
Ethernet guarantees (nothing: frames can be dropped by full NIC rings or
switch queues) and what MPI needs (in-order, exactly-once) is closed
here, once, and reused by both the CLIC module and the simplified TCP
model:

* :class:`WindowedSender` — sliding window with cumulative acks,
  go-back-N retransmission on timeout, bounded retries; blocks producers
  when the window is full (back-pressure all the way to the user's
  ``send``).
* :class:`OrderedReceiver` — in-order delivery with a bounded
  out-of-order stash (so slight reordering from channel bonding does not
  trigger spurious retransmission storms), duplicate suppression, and a
  configurable cumulative-ack cadence.

Both sides are transport-agnostic: they call back into their owner to
actually emit packets/acks, so the full cost of every retransmission and
ack (CPU, PCI, wire) is charged through the normal send path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..sim import Counters, Environment, Event

__all__ = ["WindowedSender", "OrderedReceiver", "DeliveryFailed"]


class DeliveryFailed(Exception):
    """Raised when a packet exhausts its retransmission budget."""


class WindowedSender:
    """Per-destination sliding-window sender state.

    Parameters
    ----------
    env:
        Simulation environment.
    window:
        Maximum unacknowledged packets in flight.
    retransmit_timeout_ns:
        Go-back-N timer.
    max_retries:
        Rounds of retransmission before declaring the peer dead.
    retransmit:
        Callback ``(packets: list) -> None`` that re-emits the given
        in-flight packets (owner schedules the actual sends).
    """

    def __init__(
        self,
        env: Environment,
        window: int,
        retransmit_timeout_ns: float,
        max_retries: int,
        retransmit: Callable[[List[Any]], None],
        name: str = "sender",
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.env = env
        self.window = window
        self.timeout_ns = retransmit_timeout_ns
        self.max_retries = max_retries
        self.retransmit = retransmit
        self.name = name
        self.counters = Counters()

        self.next_seq = 0
        self.base = 0  # lowest unacked seq
        self._in_flight: Dict[int, Any] = {}
        self._window_waiters: List[Event] = []
        self._drained_waiters: List[Event] = []
        self._timer_generation = 0
        self._retries = 0
        self._failed: Optional[DeliveryFailed] = None
        #: optional congestion-control hooks (TCP wires these up):
        #: called with the number of newly acked packets / on RTO /
        #: when fast retransmit triggers.
        self.ack_listener: Optional[Callable[[int], None]] = None
        self.timeout_listener: Optional[Callable[[], None]] = None
        self.fast_retransmit_listener: Optional[Callable[[], None]] = None
        #: duplicate cumulative acks before fast retransmit (0 = off)
        self.dupack_threshold = 0
        self._dupacks = 0

    # -- producer side ---------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def window_full(self) -> bool:
        """True when no more packets may enter the network."""
        return self.in_flight >= self.window

    def reserve(self) -> Generator:
        """Block (as a generator) until there is window space."""
        self._check_failed()
        while self.window_full():
            event = self.env.event()
            self._window_waiters.append(event)
            self.counters.add("window_stalls")
            yield event
            self._check_failed()

    def register(self, packet: Any) -> int:
        """Assign the next sequence number to ``packet`` and track it.

        The caller must have reserved window space; the packet object is
        retained for retransmission until acknowledged.
        """
        self._check_failed()
        if self.window_full():
            raise RuntimeError(f"{self.name}: register() without window space")
        seq = self.next_seq
        self.next_seq += 1
        self._in_flight[seq] = packet
        self.counters.add("registered")
        if len(self._in_flight) == 1:
            self._start_timer()
        return seq

    def drain(self) -> Generator:
        """Block until everything sent so far is acknowledged."""
        self._check_failed()
        while self._in_flight:
            event = self.env.event()
            self._drained_waiters.append(event)
            yield event
            self._check_failed()

    # -- ack side ----------------------------------------------------------
    def on_ack(self, cumulative_seq: int) -> None:
        """Process a cumulative ack: everything below ``cumulative_seq``."""
        if cumulative_seq <= self.base:
            self.counters.add("duplicate_acks")
            self._dupacks += 1
            if self.dupack_threshold and self._dupacks == self.dupack_threshold:
                # Fast retransmit: resend the oldest unacked packet now.
                if self.base in self._in_flight:
                    self.counters.add("fast_retransmits")
                    if self.fast_retransmit_listener is not None:
                        self.fast_retransmit_listener()
                    self._start_timer()
                    self.retransmit([self._in_flight[self.base]])
            return
        acked = cumulative_seq - self.base
        self._dupacks = 0
        for seq in range(self.base, cumulative_seq):
            self._in_flight.pop(seq, None)
        self.base = cumulative_seq
        self._retries = 0
        if self.ack_listener is not None:
            self.ack_listener(acked)
        self.counters.add("acked_through", cumulative_seq - self.counters.get("acked_through"))
        if self._in_flight:
            self._start_timer()  # restart for the new oldest packet
        else:
            self._timer_generation += 1  # cancel
            for event in self._drained_waiters:
                event.succeed()
            self._drained_waiters.clear()
        # Wake window waiters that now fit.
        while self._window_waiters and not self.window_full():
            self._window_waiters.pop(0).succeed()

    # -- timer / retransmission ---------------------------------------------
    def _start_timer(self) -> None:
        self._timer_generation += 1
        self.env.process(self._timer(self._timer_generation), name=f"{self.name}.rto")

    def _timer(self, generation: int) -> Generator:
        yield self.env.timeout(self.timeout_ns)
        if generation != self._timer_generation or not self._in_flight:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            self._fail()
            return
        self.counters.add("timeouts")
        if self.timeout_listener is not None:
            self.timeout_listener()
        packets = [self._in_flight[s] for s in sorted(self._in_flight)]
        self.counters.add("retransmitted", len(packets))
        self._start_timer()
        self.retransmit(packets)

    def _fail(self) -> None:
        self._failed = DeliveryFailed(
            f"{self.name}: no ack after {self.max_retries} retries "
            f"(base={self.base}, in flight={self.in_flight})"
        )
        self.counters.add("failed")
        for event in self._window_waiters + self._drained_waiters:
            event.fail(self._failed)
        self._window_waiters.clear()
        self._drained_waiters.clear()

    def _check_failed(self) -> None:
        if self._failed is not None:
            raise self._failed


class OrderedReceiver:
    """Per-source in-order receive state with bounded reorder stash."""

    def __init__(
        self,
        env: Environment,
        deliver: Callable[[Any], None],
        send_ack: Callable[[int], None],
        ack_every: int = 1,
        ack_delay_ns: float = 50_000.0,
        stash_limit: int = 64,
        name: str = "receiver",
    ):
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.env = env
        self.deliver = deliver
        self.send_ack = send_ack
        self.ack_every = ack_every
        self.ack_delay_ns = ack_delay_ns
        self.stash_limit = stash_limit
        self.name = name
        self.counters = Counters()

        self.expected = 0
        self._stash: Dict[int, Any] = {}
        self._unacked = 0
        self._ack_timer_generation = 0

    def on_packet(self, seq: int, packet: Any) -> None:
        """Handle an arriving data packet with channel sequence ``seq``."""
        if seq < self.expected:
            # Duplicate (a retransmission we already have): re-ack so the
            # sender's window can advance.
            self.counters.add("duplicates")
            self._emit_ack()
            return
        if seq == self.expected:
            self.deliver(packet)
            self.expected += 1
            self._unacked += 1
            # Drain any stashed successors.
            while self.expected in self._stash:
                self.deliver(self._stash.pop(self.expected))
                self.expected += 1
                self._unacked += 1
            self.counters.add("delivered_in_order")
            if self._unacked >= self.ack_every:
                self._emit_ack()
            else:
                self._schedule_delayed_ack()
            return
        # Future packet: stash if room (tolerates bonding skew), else drop.
        if len(self._stash) < self.stash_limit:
            if seq not in self._stash:
                self._stash[seq] = packet
            self.counters.add("stashed")
        else:
            self.counters.add("stash_overflow_drops")
        # Remind the sender where we are (acts like a duplicate ack).
        self._emit_ack()

    # -- ack cadence --------------------------------------------------------
    def _emit_ack(self) -> None:
        self._unacked = 0
        self._ack_timer_generation += 1
        self.counters.add("acks_sent")
        self.send_ack(self.expected)

    def _schedule_delayed_ack(self) -> None:
        self._ack_timer_generation += 1
        generation = self._ack_timer_generation
        self.env.process(self._delayed_ack(generation), name=f"{self.name}.dack")

    def _delayed_ack(self, generation: int) -> Generator:
        yield self.env.timeout(self.ack_delay_ns)
        if generation == self._ack_timer_generation and self._unacked:
            self.counters.add("delayed_acks")
            self._emit_ack()
