"""Reliable, in-order delivery over an unreliable frame service.

CLIC is "a reliable transport protocol" (§3.1) — the gap between what
Ethernet guarantees (nothing: frames can be dropped by full NIC rings or
switch queues) and what MPI needs (in-order, exactly-once) is closed
here, once, and reused by both the CLIC module and the simplified TCP
model:

* :class:`WindowedSender` — sliding window with cumulative acks,
  go-back-N retransmission on timeout, bounded retries; blocks producers
  when the window is full (back-pressure all the way to the user's
  ``send``).
* :class:`OrderedReceiver` — in-order delivery with a bounded
  out-of-order stash (so slight reordering from channel bonding does not
  trigger spurious retransmission storms), duplicate suppression, and a
  configurable cumulative-ack cadence.
* :class:`RtoEstimator` — adaptive retransmission timeout in the
  Jacobson/Karels style (SRTT/RTTVAR smoothing, Karn's rule on
  retransmitted samples, exponential backoff with a cap).  Without one,
  the sender keeps the historical fixed timer.

Both sides are transport-agnostic: they call back into their owner to
actually emit packets/acks, so the full cost of every retransmission and
ack (CPU, PCI, wire) is charged through the normal send path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Set, Tuple

from ..sim import Counters, Environment, Event, TimerHandle

__all__ = [
    "WindowedSender",
    "OrderedReceiver",
    "RtoEstimator",
    "DeliveryFailed",
    "ChannelProbe",
    "install_channel_probe",
]


class DeliveryFailed(Exception):
    """Raised when a packet exhausts its retransmission budget (or the
    peer is declared dead by the aliveness machinery)."""


class ChannelProbe:
    """Observer interface over reliability-channel events.

    The invariant harness (:mod:`repro.validate`) subscribes to the raw
    event stream of every sender/receiver pair — registrations, applied
    cumulative acks, RTT samples, retransmissions, timeouts, failures,
    deliveries — and asserts protocol invariants over it after the run
    (Karn's rule, ack monotonicity, exactly-once in-order delivery).

    Every method is a no-op; subclass and override what you need.  A
    probe observes only: it must not mutate the channel state or the
    simulation (the same run with and without a probe is bit-identical).
    """

    def on_sender(self, sender: "WindowedSender") -> None:
        """A new sender channel was built."""

    def on_receiver(self, receiver: "OrderedReceiver") -> None:
        """A new receiver channel was built."""

    def on_register(self, sender: "WindowedSender", seq: int) -> None:
        """``seq`` entered the network for the first time."""

    def on_ack_applied(self, sender: "WindowedSender", base_before: int, cum: int) -> None:
        """A cumulative ack advanced the window base."""

    def on_rtt_sample(self, sender: "WindowedSender", seq: int, rtt_ns: float) -> None:
        """The RTO estimator consumed an RTT measurement from ``seq``."""

    def on_retransmit(self, sender: "WindowedSender", seqs: List[int], kind: str) -> None:
        """``seqs`` were re-emitted (``kind``: ``"rto"`` or ``"fast"``)."""

    def on_timeout(self, sender: "WindowedSender", rto_before_ns: float,
                   rto_after_ns: float) -> None:
        """A retransmission timer fired (RTO before/after backoff)."""

    def on_fail(self, sender: "WindowedSender", reason: str) -> None:
        """The channel was declared dead."""

    def on_deliver(self, receiver: "OrderedReceiver", seq: int) -> None:
        """``seq`` was handed to the application, in order."""

    def on_ack_emitted(self, receiver: "OrderedReceiver", cum: int) -> None:
        """The receiver emitted a cumulative ack for everything < ``cum``."""


#: process-global probe picked up by channels at construction (the
#: senders/receivers of a cluster are built lazily deep inside the
#: protocol engines, so a validation harness installs the probe before
#: traffic starts and every channel born afterwards reports to it).
_active_probe: Optional[ChannelProbe] = None


def install_channel_probe(probe: Optional[ChannelProbe]) -> Optional[ChannelProbe]:
    """Install (or, with ``None``, remove) the global channel probe.

    Returns the previously installed probe so callers can restore it;
    use ``try/finally`` — a leaked probe would observe unrelated runs.
    """
    global _active_probe
    previous = _active_probe
    _active_probe = probe
    return previous


class RtoEstimator:
    """Jacobson/Karels adaptive retransmission-timeout estimation.

    ``RTO = clamp(SRTT + k * RTTVAR, min, max)``, with SRTT/RTTVAR
    smoothed by the RFC 6298 gains (alpha = 1/8, beta = 1/4).  Karn's
    rule is enforced by the *caller*: only RTT samples from packets that
    were never retransmitted reach :meth:`sample`.  Each timeout doubles
    the effective timeout (exponential backoff) until a fresh,
    unambiguous sample resets the backoff; ``max_ns`` caps everything so
    a flapping link cannot push the timer to infinity.

    Until the first sample arrives, the configured ``initial_ns`` is
    used verbatim (not clamped) so explicitly-shortened retry budgets in
    tests and fast-fail configs behave as written.
    """

    #: ceiling on the backoff multiplier (beyond this the max_ns clamp
    #: dominates anyway; the bound keeps the float well-behaved)
    MAX_BACKOFF = 65536.0

    def __init__(
        self,
        initial_ns: float,
        min_ns: float,
        max_ns: float,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
    ):
        if initial_ns <= 0 or min_ns <= 0:
            raise ValueError("RTO bounds must be positive")
        if max_ns < min_ns:
            raise ValueError("max_ns must be >= min_ns")
        self.initial_ns = initial_ns
        self.min_ns = min_ns
        self.max_ns = max_ns
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.samples = 0
        self.backoff = 1.0
        self._base = initial_ns

    def current_ns(self) -> float:
        """The timeout to arm right now (smoothed base x backoff, capped)."""
        return min(self._base * self.backoff, self.max_ns)

    def sample(self, rtt_ns: float) -> None:
        """Fold in one RTT measurement from a never-retransmitted packet."""
        if rtt_ns < 0:
            raise ValueError("negative RTT sample")
        if self.srtt is None:
            self.srtt = rtt_ns
            self.rttvar = rtt_ns / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt_ns)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt_ns
        self.samples += 1
        self._base = min(max(self.srtt + self.k * self.rttvar, self.min_ns), self.max_ns)
        self.backoff = 1.0  # an unambiguous sample ends the backoff episode

    def on_timeout(self) -> None:
        """Exponential backoff: each consecutive timeout doubles the timer."""
        self.backoff = min(self.backoff * 2.0, self.MAX_BACKOFF)

    def __repr__(self) -> str:
        return (
            f"RtoEstimator(rto={self.current_ns():.0f}ns, srtt={self.srtt}, "
            f"backoff={self.backoff:g}, samples={self.samples})"
        )


class WindowedSender:
    """Per-destination sliding-window sender state.

    Parameters
    ----------
    env:
        Simulation environment.
    window:
        Maximum unacknowledged packets in flight.
    retransmit_timeout_ns:
        Go-back-N timer (fixed, unless an ``rto`` estimator is given).
    max_retries:
        Rounds of retransmission before declaring the peer dead.
    retransmit:
        Callback ``(packets: list) -> None`` that re-emits the given
        in-flight packets (owner schedules the actual sends).
    rto:
        Optional :class:`RtoEstimator`; when present the retransmission
        timer adapts to measured RTTs and backs off exponentially on
        consecutive timeouts instead of firing at a fixed cadence.
    counters:
        Optional shared :class:`~repro.sim.Counters` face (e.g. backed
        by the cluster metrics registry) — defaults to a private one.
    fail_listener:
        Called with a reason string when the retry budget is exhausted
        (or :meth:`abort` is invoked) — the peer-death hook.
    """

    def __init__(
        self,
        env: Environment,
        window: int,
        retransmit_timeout_ns: float,
        max_retries: int,
        retransmit: Callable[[List[Any]], None],
        name: str = "sender",
        rto: Optional[RtoEstimator] = None,
        counters: Optional[Counters] = None,
        fail_listener: Optional[Callable[[str], None]] = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.env = env
        self.window = window
        self.timeout_ns = retransmit_timeout_ns
        self.max_retries = max_retries
        self.retransmit = retransmit
        self.name = name
        self.rto = rto
        self.counters = counters if counters is not None else Counters()
        self.fail_listener = fail_listener
        #: captured at construction (see :func:`install_channel_probe`)
        self.probe = _active_probe

        self.next_seq = 0
        self.base = 0  # lowest unacked seq
        self._in_flight: Dict[int, Any] = {}
        self._sent_at: Dict[int, float] = {}
        self._retx_seqs: Set[int] = set()  # Karn's rule: ambiguous RTTs
        # Deques: waiters wake FIFO from the left, and a long stall can
        # park thousands of producers — list.pop(0) would be O(n) each.
        self._window_waiters: Deque[Event] = deque()
        self._drained_waiters: Deque[Event] = deque()
        self._timer: Optional[TimerHandle] = None
        self._retries = 0
        self._failed: Optional[DeliveryFailed] = None
        #: optional congestion-control hooks (TCP wires these up):
        #: called with the number of newly acked packets / on RTO /
        #: when fast retransmit triggers.
        self.ack_listener: Optional[Callable[[int], None]] = None
        self.timeout_listener: Optional[Callable[[], None]] = None
        self.fast_retransmit_listener: Optional[Callable[[], None]] = None
        #: duplicate cumulative acks before fast retransmit (0 = off)
        self.dupack_threshold = 0
        self._dupacks = 0
        #: NewReno-style recovery point (RFC 6582): after a fast
        #: retransmit (or an RTO flood), further dupacks must not fire
        #: again until the cumulative ack passes the highest sequence
        #: outstanding at trigger time.  Without it, duplicated frames
        #: feed a self-sustaining dupack -> fast-retransmit -> duplicate
        #: -> dupack storm (each resend manufactures the dupacks that
        #: trigger the next resend).
        self._recover = -1
        if self.probe is not None:
            self.probe.on_sender(self)

    # -- producer side ---------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def window_full(self) -> bool:
        """True when no more packets may enter the network."""
        return self.in_flight >= self.window

    def reserve(self) -> Generator:
        """Block (as a generator) until there is window space."""
        self._check_failed()
        while self.window_full():
            event = self.env.event()
            self._window_waiters.append(event)
            self.counters.add("window_stalls")
            yield event
            self._check_failed()

    def register(self, packet: Any) -> int:
        """Assign the next sequence number to ``packet`` and track it.

        The caller must have reserved window space; the packet object is
        retained for retransmission until acknowledged.
        """
        self._check_failed()
        if self.window_full():
            raise RuntimeError(f"{self.name}: register() without window space")
        seq = self.next_seq
        self.next_seq += 1
        self._in_flight[seq] = packet
        self._sent_at[seq] = self.env.now
        self.counters.add("registered")
        if self.probe is not None:
            self.probe.on_register(self, seq)
        if len(self._in_flight) == 1:
            self._start_timer()
        return seq

    def register_train(self, packets: Iterable[Any]) -> List[int]:
        """Register a flow-mode train: one sequence per packet, in order.

        Pure function calls — semantically identical to ``register``
        per packet (probe events, timer arming and counters included),
        so a batched send stays observable and auditable packet by
        packet through the :class:`ChannelProbe` seam.
        """
        return [self.register(packet) for packet in packets]

    @property
    def retransmitting(self) -> bool:
        """True while any in-flight packet's RTT is retransmission-
        ambiguous (Karn) — i.e. a recovery episode is in progress."""
        return bool(self._retx_seqs)

    def drain(self) -> Generator:
        """Block until everything sent so far is acknowledged."""
        self._check_failed()
        while self._in_flight:
            event = self.env.event()
            self._drained_waiters.append(event)
            yield event
            self._check_failed()

    # -- ack side ----------------------------------------------------------
    def on_ack(self, cumulative_seq: int) -> None:
        """Process a cumulative ack: everything below ``cumulative_seq``."""
        if cumulative_seq < self.base:
            # Stale: the window already advanced past this ack (it was
            # delayed or reordered on the wire, or is a duplicated-frame
            # copy).  It carries no information about the *current* base,
            # so it must not feed the dupack counter — otherwise jittered
            # ack arrivals would fire spurious fast retransmissions.
            self.counters.add("stale_acks")
            return
        if cumulative_seq == self.base:
            self.counters.add("duplicate_acks")
            self._dupacks += 1
            if (
                self.dupack_threshold
                and self._dupacks >= self.dupack_threshold
                and self.base > self._recover
            ):
                # Fast retransmit: resend the oldest unacked packet now.
                # One trigger per window of data (the ``_recover`` guard):
                # if the resend is lost too, the RTO repairs it — more
                # dupacks for the same base are echoes of our own resend
                # (or of duplicated frames) and must not re-trigger.
                self._dupacks = 0
                if self.base in self._in_flight:
                    self._recover = self.next_seq - 1
                    self.counters.add("fast_retransmits")
                    self._note_retransmitted([self.base])  # Karn: RTT now ambiguous
                    if self.fast_retransmit_listener is not None:
                        self.fast_retransmit_listener()
                    if self.probe is not None:
                        self.probe.on_retransmit(self, [self.base], "fast")
                    self._start_timer()
                    self.retransmit([self._in_flight[self.base]])
            return
        base_before = self.base
        acked = cumulative_seq - self.base
        self._dupacks = 0
        rtt_sample_sent_at: Optional[float] = None
        rtt_sample_seq: Optional[int] = None
        for seq in range(self.base, cumulative_seq):
            self._in_flight.pop(seq, None)
            sent_at = self._sent_at.pop(seq, None)
            if seq in self._retx_seqs:
                self._retx_seqs.discard(seq)  # Karn's rule: never sample these
            elif sent_at is not None:
                rtt_sample_sent_at = sent_at  # newest unambiguous packet wins
                rtt_sample_seq = seq
        if self.rto is not None and rtt_sample_sent_at is not None:
            self.rto.sample(self.env.now - rtt_sample_sent_at)
            self.counters.set("rto_ns", self.rto.current_ns())
            if self.probe is not None:
                self.probe.on_rtt_sample(
                    self, rtt_sample_seq, self.env.now - rtt_sample_sent_at
                )
        self.base = cumulative_seq
        if self.probe is not None:
            self.probe.on_ack_applied(self, base_before, cumulative_seq)
        self._retries = 0
        if self.ack_listener is not None:
            self.ack_listener(acked)
        self.counters.set("acked_through", cumulative_seq)
        if self.base <= self._recover and self.base in self._in_flight:
            # RFC 6582 partial ack: the cumulative ack advanced without
            # passing the recovery point, so the next hole is known lost
            # (reordering would have filled it) — resend it now instead
            # of waiting out the RTO.  Driven only by *new* cumulative
            # progress, so duplicated ack copies cannot amplify it, and
            # bounded by one resend per hole per recovery episode.
            self.counters.add("partial_ack_retransmits")
            self._note_retransmitted([self.base])  # Karn: RTT now ambiguous
            if self.probe is not None:
                self.probe.on_retransmit(self, [self.base], "partial_ack")
            self.retransmit([self._in_flight[self.base]])
        if self._in_flight:
            self._start_timer()  # restart for the new oldest packet
        else:
            self._cancel_timer()
            for event in self._drained_waiters:
                event.succeed()
            self._drained_waiters.clear()
        # Wake window waiters that now fit.
        while self._window_waiters and not self.window_full():
            self._window_waiters.popleft().succeed()

    # -- timer / retransmission ---------------------------------------------
    def current_timeout_ns(self) -> float:
        """The retransmission timeout that would be armed right now."""
        return self.rto.current_ns() if self.rto is not None else self.timeout_ns

    def _note_retransmitted(self, seqs: Iterable[int]) -> None:
        """Karn bookkeeping: mark ``seqs`` as RTT-ambiguous.

        Kept as a dedicated seam so the invariant harness can mutate it
        (disable it) and prove the fuzzer catches the resulting Karn's
        rule violation — see ``tests/validate``.
        """
        self._retx_seqs.update(seqs)

    def _start_timer(self) -> None:
        # Re-arming cancels the previous timer lazily (dead heap entry),
        # so ack-by-ack restarts cost one handle + one push, not a
        # process spawn (the pre-optimization shape, kept as the "A"
        # side of ``repro.perf micro``).
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.env.call_later(self.current_timeout_ns(), self._on_rto)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_rto(self) -> None:
        self._timer = None
        if not self._in_flight:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            self._fail(
                f"no ack after {self.max_retries} retries "
                f"(base={self.base}, in flight={self.in_flight})"
            )
            return
        self.counters.add("timeouts")
        rto_before = self.current_timeout_ns()
        if self.rto is not None:
            self.rto.on_timeout()
            self.counters.set("rto_ns", self.rto.current_ns())
        if self.probe is not None:
            self.probe.on_timeout(self, rto_before, self.current_timeout_ns())
        if self.timeout_listener is not None:
            self.timeout_listener()
        seqs = sorted(self._in_flight)
        packets = [self._in_flight[s] for s in seqs]
        # The go-back-N flood will echo back as dupacks; none of them is
        # evidence of a *new* hole (RFC 6582 applies the recovery point
        # to timeout retransmissions for the same reason).
        self._recover = self.next_seq - 1
        self._note_retransmitted(seqs)  # Karn: all resent, all ambiguous
        if self.probe is not None:
            self.probe.on_retransmit(self, seqs, "rto")
        self.counters.add("retransmitted", len(packets))
        self._start_timer()
        self.retransmit(packets)

    # -- failure ------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """True once the retry budget is exhausted or :meth:`abort` ran."""
        return self._failed is not None

    def abort(self, reason: str) -> None:
        """Externally declare this channel dead (e.g. the aliveness
        tracker lost the peer): fail all waiters, reject future sends."""
        if self._failed is None:
            self._fail(reason)

    def _fail(self, reason: str) -> None:
        self._failed = DeliveryFailed(f"{self.name}: {reason}")
        self._cancel_timer()
        self.counters.add("failed")
        if self.probe is not None:
            self.probe.on_fail(self, reason)
        for event in (*self._window_waiters, *self._drained_waiters):
            event.fail(self._failed)
        self._window_waiters.clear()
        self._drained_waiters.clear()
        if self.fail_listener is not None:
            self.fail_listener(reason)

    def _check_failed(self) -> None:
        if self._failed is not None:
            raise self._failed


class OrderedReceiver:
    """Per-source in-order receive state with bounded reorder stash."""

    def __init__(
        self,
        env: Environment,
        deliver: Callable[[Any], None],
        send_ack: Callable[[int], None],
        ack_every: int = 1,
        ack_delay_ns: float = 50_000.0,
        stash_limit: int = 64,
        name: str = "receiver",
        counters: Optional[Counters] = None,
    ):
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.env = env
        self.deliver = deliver
        self.send_ack = send_ack
        self.ack_every = ack_every
        self.ack_delay_ns = ack_delay_ns
        self.stash_limit = stash_limit
        self.name = name
        self.counters = counters if counters is not None else Counters()
        #: captured at construction (see :func:`install_channel_probe`)
        self.probe = _active_probe
        if self.probe is not None:
            self.probe.on_receiver(self)

        self.expected = 0
        self._stash: Dict[int, Any] = {}
        self._unacked = 0
        self._ack_timer: Optional[TimerHandle] = None
        #: highest stash occupancy ever reached (bounded-memory audit)
        self.max_stash = 0

    @property
    def stash_depth(self) -> int:
        """Current out-of-order stash occupancy (flow-mode eligibility
        reads this: a non-empty stash means reordering is being
        repaired, which forces exact per-packet simulation)."""
        return len(self._stash)

    def on_train(self, packets: Iterable[Tuple[int, Any]]) -> None:
        """Consume a flow-mode train of ``(seq, packet)`` pairs.

        A plain loop over :meth:`on_packet` — pure function calls, no
        events — so delivery order, duplicate suppression, ack cadence
        (including ``ack_every`` boundaries crossing mid-train) and
        probe traffic are exactly what per-packet arrival produces.
        """
        for seq, packet in packets:
            self.on_packet(seq, packet)

    def _already_delivered(self, seq: int) -> bool:
        """True when ``seq`` was already handed to the application.

        Kept as a dedicated seam so the invariant harness can mutate it
        (break duplicate suppression) and prove the fuzzer catches the
        resulting exactly-once violation — see ``tests/validate``.
        """
        return seq < self.expected

    def _deliver_next(self, seq: int, packet: Any) -> None:
        """Hand ``packet`` (sequence ``seq``) up and advance ``expected``."""
        if self.probe is not None:
            self.probe.on_deliver(self, seq)
        self.deliver(packet)
        self.expected = seq + 1
        self._unacked += 1

    def on_packet(self, seq: int, packet: Any) -> None:
        """Handle an arriving data packet with channel sequence ``seq``."""
        if seq <= self.expected and self._already_delivered(seq):
            # Duplicate (a retransmission, or an extra copy from a
            # duplication fault): suppress, but re-ack so the sender's
            # window can advance.
            self.counters.add("duplicates")
            self._emit_ack()
            return
        if seq <= self.expected:
            self._deliver_next(seq, packet)
            # Drain any stashed successors.
            while self.expected in self._stash:
                self._deliver_next(self.expected, self._stash.pop(self.expected))
            self.counters.add("delivered_in_order")
            if self._unacked >= self.ack_every:
                self._emit_ack()
            else:
                self._schedule_delayed_ack()
            return
        # Future packet: a duplicate of something already stashed is
        # suppressed; otherwise stash if room (tolerates bonding skew and
        # delay jitter).  At capacity the overrun policy is drop-newest
        # (counted) — the frame is repaired by go-back-N retransmission,
        # so adversarial reordering can never grow memory without bound.
        if seq in self._stash:
            self.counters.add("duplicates")
        elif len(self._stash) < self.stash_limit:
            self._stash[seq] = packet
            self.counters.add("stashed")
            if len(self._stash) > self.max_stash:
                self.max_stash = len(self._stash)
                self.counters.set("max_stash", self.max_stash)
        else:
            self.counters.add("stash_overflow_drops")
        # Remind the sender where we are (acts like a duplicate ack).
        self._emit_ack()

    # -- ack cadence --------------------------------------------------------
    def _emit_ack(self) -> None:
        self._unacked = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self.counters.add("acks_sent")
        if self.probe is not None:
            self.probe.on_ack_emitted(self, self.expected)
        self.send_ack(self.expected)

    def _schedule_delayed_ack(self) -> None:
        # Each sub-threshold delivery restarts the full delay (matching
        # the historical per-packet timer process, where only the newest
        # generation was live).
        if self._ack_timer is not None:
            self._ack_timer.cancel()
        self._ack_timer = self.env.call_later(self.ack_delay_ns, self._on_delayed_ack)

    def _on_delayed_ack(self) -> None:
        self._ack_timer = None
        if self._unacked:
            self.counters.add("delayed_acks")
            self._emit_ack()
