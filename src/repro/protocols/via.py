"""VIA-style user-level networking (comparator, §3.2).

The Virtual Interface Architecture removes the OS from the data path
entirely:

* a **send** is a descriptor written by the application plus a doorbell
  (an uncached PCI write) — no syscall, no kernel;
* a **receive** completes by the NIC DMA-ing into pre-posted user
  buffers and writing a completion-queue entry; the application finds it
  by **polling** — no interrupt (§3.2(b): the paper argues polling
  wastes cycles and, when the poll crosses the I/O bus, hurts bandwidth;
  our poll probes are charged both CPU time and a PCI transaction);
* **no kernel reliability** — "the situation is similar to that of
  UDP/IP" (§3.2(a)); lost frames are simply lost, and our fault-
  injection tests show exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..config import ViaParams
from ..hw.cpu import PRIO_USER
from ..hw.nic import EtherType, RxFrame, TxDescriptor
from ..sim import Counters
from .headers import ViaPacket, fragment_plan

__all__ = ["ViaNic", "VirtualInterface", "ViaMessage"]

_vi_ids = itertools.count(1)
_msg_ids = itertools.count(1)


@dataclass
class ViaMessage:
    src_node: int
    vi_id: int
    nbytes: int
    msg_id: int
    payload: Any = None
    completed_at: float = 0.0


@dataclass
class _Assembling:
    msg_bytes: int
    received: int = 0
    payload: Any = None


class VirtualInterface:
    """One VI: a pair of user-level work queues bound to a peer VI id."""

    def __init__(self, via: "ViaNic", vi_id: int):
        self.via = via
        self.vi_id = vi_id
        #: completed received messages (the completion queue, user memory)
        self.completions: List[ViaMessage] = []

    # -- send: descriptor + doorbell, all from user mode -----------------------
    def send(self, dst_node: int, nbytes: int, payload: Any = None) -> Generator:
        """Post descriptors + doorbells for ``nbytes`` (user mode)."""
        node = self.via.node
        params = self.via.params
        msg_id = next(_msg_ids)
        frag_max = node.mtu() - params.header_bytes
        nic = node.nics[0]
        for offset, frag in fragment_plan(nbytes, frag_max):
            yield from node.cpu.execute(params.descriptor_ns, PRIO_USER, label="via_desc")
            # Doorbell: an uncached write across PCI.
            yield from node.pci.pio(priority=0, label="via_doorbell")
            yield from node.cpu.execute(params.doorbell_ns, PRIO_USER, label="via_bell")
            pkt = ViaPacket(
                src_node=node.node_id,
                dst_node=dst_node,
                vi_id=self.vi_id,
                msg_id=msg_id,
                frag_offset=offset,
                frag_bytes=frag,
                msg_bytes=nbytes,
                payload=payload,
            )
            desc = TxDescriptor(
                dst=node.mac_of(dst_node, 0),
                ethertype=EtherType.VIA,
                payload_bytes=params.header_bytes + frag,
                payload=pkt,
                from_user_memory=True,
            )
            yield nic.post_tx(desc)
        self.via.counters.add("msgs_sent")
        return msg_id

    # -- receive: poll the completion queue ------------------------------------
    def recv(self, poll_pci: bool = True) -> Generator:
        """Poll until a message completes; returns it.

        ``poll_pci`` selects the expensive flavour the paper warns about:
        each probe crosses the I/O bus.  With ``False`` only CPU time is
        charged (CQ in cached host memory).
        """
        node = self.via.node
        params = self.via.params
        polls = 0
        while not self.completions:
            yield from node.cpu.execute(params.poll_probe_ns, PRIO_USER, label="via_poll")
            if poll_pci:
                yield from node.pci.pio(priority=9, label="via_poll")
            polls += 1
            yield node.env.timeout(params.poll_interval_ns)
        self.via.counters.add("poll_probes", polls)
        return self.completions.pop(0)

    def try_recv(self) -> Optional[ViaMessage]:
        """Single non-waiting CQ check (zero-cost convenience for tests)."""
        return self.completions.pop(0) if self.completions else None


class ViaNic:
    """The VIA provider of one node (requires push-mode NICs)."""

    def __init__(self, node):
        self.node = node
        self.params: ViaParams = node.cfg.via
        self.counters = Counters()
        self._vis: Dict[int, VirtualInterface] = {}
        self._assembling: Dict[Tuple[int, int], _Assembling] = {}
        nic = node.nics[0]
        if nic.rx_deliver != "push":
            raise RuntimeError(
                "VIA needs NIC-managed receive (build the cluster with "
                "protocols=('via',))"
            )
        nic.push_callback = self._on_push

    def create_vi(self, vi_id: Optional[int] = None) -> VirtualInterface:
        """Open a virtual interface (optionally with a fixed id)."""
        if vi_id is None:
            vi_id = next(_vi_ids)
        if vi_id in self._vis:
            raise ValueError(f"VI {vi_id} exists")
        vi = VirtualInterface(self, vi_id)
        self._vis[vi_id] = vi
        return vi

    # -- NIC push: data already in user memory; write the CQ entry -------------
    def _on_push(self, rx: RxFrame) -> None:
        pkt: ViaPacket = rx.frame.payload
        vi = self._vis.get(pkt.vi_id)
        if vi is None:
            # No receive descriptor posted: VIA drops (counted).
            self.counters.add("no_vi_drops")
            return
        key = (pkt.src_node, pkt.msg_id)
        acc = self._assembling.get(key)
        if acc is None:
            acc = self._assembling[key] = _Assembling(msg_bytes=pkt.msg_bytes, payload=pkt.payload)
        acc.received += pkt.frag_bytes
        if acc.received < acc.msg_bytes or (acc.msg_bytes == 0 and not pkt.is_last_fragment):
            return
        del self._assembling[key]
        vi.completions.append(
            ViaMessage(
                src_node=pkt.src_node,
                vi_id=pkt.vi_id,
                nbytes=pkt.msg_bytes,
                msg_id=pkt.msg_id,
                payload=acc.payload,
                completed_at=self.node.env.now,
            )
        )
        self.counters.add("msgs_rx")
