"""UDP — unreliable datagrams over IP.

Included because the paper positions VIA's reliability situation as
"similar to that of UDP/IP" (§3.2(a)), and because the PVM daemon path
historically used UDP between daemons.  Datagrams larger than the MTU
exercise the IP fragmentation/reassembly machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ...config import TcpIpParams
from ...hw.cpu import PRIO_KERNEL, PRIO_SOFTIRQ
from ...sim import Counters, Event
from .ip import IpDatagram, IpLayer

__all__ = ["UdpLayer", "UdpDatagramMsg"]

UDP_HEADER_BYTES = 8
_udp_ids = itertools.count(1)


@dataclass
class UdpDatagramMsg:
    """A UDP message as seen by the application."""

    src_node: int
    port: int
    nbytes: int
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_udp_ids))


class UdpLayer:
    """Per-node UDP: sendto/recvfrom with no delivery guarantees."""

    def __init__(self, node, params: TcpIpParams, ip: IpLayer):
        self.node = node
        self.params = params
        self.ip = ip
        self.counters = Counters()
        self._ports: Dict[int, List[UdpDatagramMsg]] = {}
        self._waiters: Dict[int, List[Event]] = {}

    # -- send (kernel context) ---------------------------------------------------
    def sendto(self, dst_node: int, port: int, nbytes: int, payload: Any = None) -> Generator:
        """Kernel-side datagram transmit (copy, checksum, IP)."""
        kernel = self.node.kernel
        yield from kernel.copy_user_to_system(nbytes)
        cost = (
            self.params.per_segment_tx_ns
            + nbytes * self.params.checksum_ns_per_byte
        )
        yield from kernel.cpu.execute(cost, PRIO_KERNEL, label="udp_tx")
        msg = UdpDatagramMsg(src_node=self.node.node_id, port=port, nbytes=nbytes, payload=payload)
        dgram = IpDatagram(
            src_node=self.node.node_id,
            dst_node=dst_node,
            protocol="udp",
            data_bytes=nbytes + UDP_HEADER_BYTES,
            datagram_id=msg.packet_id,
            payload=msg,
        )
        yield from self.ip.tx(dgram)
        self.counters.add("datagrams_tx")

    # -- receive (softirq context) --------------------------------------------------
    def on_datagram(self, msg: UdpDatagramMsg) -> Generator:
        """Softirq-side receive: demux to port queue or waiter."""
        kernel = self.node.kernel
        cost = (
            self.params.per_segment_rx_ns
            + msg.nbytes * self.params.checksum_ns_per_byte
        )
        yield from kernel.cpu.execute(cost, PRIO_SOFTIRQ, label="udp_rx")
        self.counters.add("datagrams_rx")
        waiters = self._waiters.get(msg.port)
        if waiters:
            waiters.pop(0).succeed(msg)
            return
        self._ports.setdefault(msg.port, []).append(msg)

    # -- recv (kernel context) ------------------------------------------------------
    def recvfrom(self, port: int, block: bool = True) -> Generator:
        """Kernel-side receive; blocks unless ``block=False``."""
        kernel = self.node.kernel
        queue = self._ports.get(port, [])
        if queue:
            msg = queue.pop(0)
            yield from kernel.copy_system_to_user(msg.nbytes)
            return msg
        if not block:
            return None
        event = self.node.env.event()
        self._waiters.setdefault(port, []).append(event)
        msg = yield from kernel.block_on(event, label=f"udp_recv:{port}")
        yield from kernel.copy_system_to_user(msg.nbytes)
        return msg
