"""TCP/IP baseline stack."""

from .ip import IpDatagram, IpLayer
from .sockets import TcpSocket, UdpSocket
from .stack import TcpIpStack
from .tcp import TcpConnection, TcpLayer
from .udp import UdpDatagramMsg, UdpLayer

__all__ = [
    "IpDatagram",
    "IpLayer",
    "TcpConnection",
    "TcpIpStack",
    "TcpLayer",
    "TcpSocket",
    "UdpDatagramMsg",
    "UdpLayer",
    "UdpSocket",
]
