"""TCP — the baseline the paper beats.

A mechanism-faithful (not bit-faithful) Linux-2.4-era TCP model.  What
matters for the reproduction is *where the cycles go*:

* one **copy** user -> socket buffer on send, one socket buffer -> user
  on receive (TCP never zero-copies here),
* **per-segment stack traversal** costs on both sides,
* **software checksum** touching every byte on both sides,
* **acknowledgment traffic** (delayed acks every 2 segments) that
  consumes reverse wire bandwidth, receiver *and* sender CPU,
* a segment-count flow window (LAN: no loss-driven congestion collapse,
  the window simply bounds in-flight data as the paper's testbed's
  does).

TCP segments to the MSS (MTU - 40) itself, so the IP layer below never
fragments; retransmission reuses the shared reliability machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ...config import TcpIpParams
from ...hw.cpu import PRIO_KERNEL, PRIO_SOFTIRQ
from ...sim import Counters, Environment, Event
from ..headers import TcpSegment
from ..reliability import OrderedReceiver, RtoEstimator, WindowedSender
from .ip import IpDatagram, IpLayer

__all__ = ["TcpConnection", "TcpLayer"]

_conn_ids = itertools.count(1)


@dataclass
class _RxSide:
    """Receive state of one connection end."""

    buffered_bytes: int = 0
    waiters: List[Tuple[int, Event]] = field(default_factory=list)  # (wanted, event)


class RenoCongestion:
    """TCP Reno congestion control (slow start, congestion avoidance,
    fast retransmit/recovery, RTO collapse).

    The unit is *segments*.  The effective send window is
    ``min(cwnd, receiver flow window)``; on a LAN with adequate buffers
    Reno quickly opens to the flow window (which is why the era's LAN
    benchmarks warm up), but under loss it shapes the retransmission
    behaviour — exercised by the loss-injection tests.
    """

    def __init__(self, flow_window: int, initial_cwnd: int = 2):
        self.flow_window = flow_window
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(flow_window)
        self.in_slow_start_restarts = 0

    def window(self) -> int:
        """Current effective send window in segments."""
        return max(1, min(int(self.cwnd), self.flow_window))

    def on_ack(self, newly_acked: int) -> None:
        """Grow cwnd: slow start below ssthresh, else additively."""
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start: exponential per RTT
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, float(self.flow_window))

    def on_fast_retransmit(self) -> None:
        """Halve into fast recovery (3 duplicate acks)."""
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = self.ssthresh  # fast recovery (simplified Reno)

    def on_timeout(self) -> None:
        """RTO: collapse cwnd to 1 and restart slow start."""
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = 1.0
        self.in_slow_start_restarts += 1


class TcpConnection:
    """One end of an established TCP connection."""

    def __init__(self, layer: "TcpLayer", local_node: int, remote_node: int, conn_id: int):
        self.layer = layer
        self.params: TcpIpParams = layer.params
        self.env: Environment = layer.node.env
        self.local_node = local_node
        self.remote_node = remote_node
        self.conn_id = conn_id
        self.counters = Counters()

        rto = None
        if self.params.adaptive_rto:
            rto = RtoEstimator(
                initial_ns=self.params.retransmit_timeout_ns,
                min_ns=self.params.min_rto_ns,
                max_ns=self.params.max_rto_ns,
            )
        registry = layer.node.kernel.metrics
        self.sender = WindowedSender(
            self.env,
            window=self.params.window_segments,
            retransmit_timeout_ns=self.params.retransmit_timeout_ns,
            max_retries=self.params.max_retries,
            retransmit=self._retransmit,
            name=f"{layer.node.name}.tcp{conn_id}.tx",
            rto=rto,
            counters=Counters(
                registry=registry, prefix=f"{layer.node.name}.tcp{conn_id}.tx."
            ),
        )
        self.receiver = OrderedReceiver(
            self.env,
            deliver=self._deliver_segment,
            send_ack=self._send_ack,
            ack_every=self.params.ack_every,
            ack_delay_ns=self.params.ack_delay_ns,
            name=f"{layer.node.name}.tcp{conn_id}.rx",
            counters=Counters(
                registry=registry, prefix=f"{layer.node.name}.tcp{conn_id}.rx."
            ),
        )
        self.rx = _RxSide()

        # Congestion control shapes the effective window dynamically.
        self.congestion = RenoCongestion(self.params.window_segments)
        self.sender.window = self.congestion.window()
        self.sender.dupack_threshold = 3
        self.sender.ack_listener = self._on_ack_progress
        self.sender.timeout_listener = self._on_rto
        self.sender.fast_retransmit_listener = self._on_fast_retx

    def _on_ack_progress(self, newly_acked: int) -> None:
        self.congestion.on_ack(newly_acked)
        self.sender.window = self.congestion.window()

    def _on_rto(self) -> None:
        self.congestion.on_timeout()
        self.sender.window = self.congestion.window()
        self.counters.add("rto_events")

    def _on_fast_retx(self) -> None:
        self.congestion.on_fast_retransmit()
        self.sender.window = self.congestion.window()
        self.counters.add("fast_retransmits")

    # -- send (kernel context, inside the caller's syscall) ---------------------
    def mss(self) -> int:
        """Maximum segment payload for the path MTU."""
        return self.layer.ip.mtu_payload() - self.params.tcp_header_bytes

    def send(self, nbytes: int) -> Generator:
        """Stream ``nbytes``: copy to the socket buffer, segment, transmit."""
        if nbytes < 0:
            raise ValueError("negative send")
        kernel = self.layer.node.kernel
        # Socket layer: user -> kernel copy (the copy CLIC's 0-copy removes).
        for _ in range(self.params.copies_on_tx):
            yield from kernel.copy_user_to_system(nbytes)
        mss = self.mss()
        offset = 0
        while True:
            seg_bytes = min(mss, nbytes - offset)
            yield from self.sender.reserve()
            seg = TcpSegment(
                src_node=self.local_node,
                dst_node=self.remote_node,
                conn_id=self.conn_id,
                seq=0,
                data_bytes=seg_bytes,
            )
            seg.seq = self.sender.register(seg)
            yield from self._tx_segment(seg)
            offset += seg_bytes
            if offset >= nbytes:
                break
        self.counters.add("bytes_sent", nbytes)

    def _tx_segment(self, seg: TcpSegment, priority: int = PRIO_KERNEL) -> Generator:
        kernel = self.layer.node.kernel
        cost = (
            self.params.per_segment_tx_ns
            + seg.data_bytes * self.params.checksum_ns_per_byte
        )
        yield from kernel.cpu.execute(cost, priority, label="tcp_tx")
        dgram = IpDatagram(
            src_node=self.local_node,
            dst_node=self.remote_node,
            protocol="tcp",
            data_bytes=seg.data_bytes + self.params.tcp_header_bytes,
            datagram_id=seg.packet_id,
            payload=seg,
        )
        yield from self.layer.ip.tx(dgram)
        self.counters.add("segments_tx")

    def _retransmit(self, segments: List[TcpSegment]) -> None:
        def _do() -> Generator:
            for seg in segments:
                self.counters.add("segments_retx")
                yield from self._tx_segment(seg)

        self.env.process(_do(), name=f"tcp{self.conn_id}.retx")

    # -- receive (softirq context) -------------------------------------------------
    def on_segment(self, seg: TcpSegment) -> Generator:
        """Softirq-side segment processing (data or ack)."""
        kernel = self.layer.node.kernel
        cost = (
            self.params.per_segment_rx_ns
            + seg.data_bytes * self.params.checksum_ns_per_byte
        )
        yield from kernel.cpu.execute(cost, PRIO_SOFTIRQ, label="tcp_rx")
        if seg.is_ack:
            self.sender.on_ack(seg.ack_seq)
            self.counters.add("acks_rx")
            return
        self.receiver.on_packet(seg.seq, seg)

    def _deliver_segment(self, seg: TcpSegment) -> None:
        self.rx.buffered_bytes += seg.data_bytes
        self.counters.add("segments_rx")
        # Wake receivers whose byte count is now satisfied (FIFO).
        while self.rx.waiters and self.rx.buffered_bytes >= self.rx.waiters[0][0]:
            wanted, event = self.rx.waiters.pop(0)
            self.rx.buffered_bytes -= wanted
            event.succeed(wanted)

    def _send_ack(self, cumulative_seq: int) -> None:
        def _do() -> Generator:
            kernel = self.layer.node.kernel
            yield from kernel.cpu.execute(
                self.params.per_segment_tx_ns / 2, PRIO_SOFTIRQ, label="tcp_ack_tx"
            )
            ack = TcpSegment(
                src_node=self.local_node,
                dst_node=self.remote_node,
                conn_id=self.conn_id,
                seq=0,
                data_bytes=0,
                is_ack=True,
                ack_seq=cumulative_seq,
            )
            dgram = IpDatagram(
                src_node=self.local_node,
                dst_node=self.remote_node,
                protocol="tcp",
                data_bytes=self.params.tcp_header_bytes,
                datagram_id=ack.packet_id,
                payload=ack,
            )
            yield from self.layer.ip.tx(dgram)
            self.counters.add("acks_tx")

        self.env.process(_do(), name=f"tcp{self.conn_id}.ack")

    # -- recv (kernel context, inside the caller's syscall) ----------------------
    def recv(self, nbytes: int) -> Generator:
        """Block until ``nbytes`` are buffered, then copy them to user memory."""
        kernel = self.layer.node.kernel
        if nbytes < 0:
            raise ValueError("negative recv")
        if self.rx.waiters or self.rx.buffered_bytes < nbytes:
            event = self.env.event()
            self.rx.waiters.append((nbytes, event))
            yield from kernel.block_on(event, label=f"tcp_recv{self.conn_id}")
        else:
            self.rx.buffered_bytes -= nbytes
        for _ in range(self.params.copies_on_rx):
            yield from kernel.copy_system_to_user(nbytes)
        self.counters.add("bytes_recv", nbytes)
        return nbytes


class TcpLayer:
    """All TCP connections of one node."""

    def __init__(self, node, params: TcpIpParams, ip: IpLayer):
        self.node = node
        self.params = params
        self.ip = ip
        self.connections: Dict[int, TcpConnection] = {}

    def connect(self, remote_node: int, conn_id: Optional[int] = None) -> TcpConnection:
        """Create one end of a connection.

        Both ends must use the same ``conn_id``; :meth:`pair` sets up both
        at once for tests/benchmarks (the three-way handshake is not on
        the data path the paper measures and is elided).
        """
        if conn_id is None:
            conn_id = next(_conn_ids)
        if conn_id in self.connections:
            raise ValueError(f"connection {conn_id} exists")
        conn = TcpConnection(self, self.node.node_id, remote_node, conn_id)
        self.connections[conn_id] = conn
        return conn

    def dispatch(self, seg: TcpSegment) -> Generator:
        """Demux an arriving segment to its connection."""
        conn = self.connections.get(seg.conn_id)
        if conn is None:
            # RST territory in real TCP; count and drop.
            self.ip.counters.add("tcp_no_connection")
            return
        yield from conn.on_segment(seg)
