"""Socket API: the syscall-wrapped face of the TCP/IP stack.

Figure 2 of the paper contrasts the deep ``sockets -> TCP -> IP ->
driver`` column against CLIC's short one; this module is that left-hand
column's top.  Every call pays the socket-layer bookkeeping plus the
full syscall machinery.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...hw.cpu import PRIO_KERNEL
from ...oskernel import UserProcess
from .tcp import TcpConnection

__all__ = ["TcpSocket", "UdpSocket"]


class TcpSocket:
    """A connected stream socket owned by a user process."""

    def __init__(self, proc: UserProcess, conn: TcpConnection):
        self.proc = proc
        self.conn = conn
        self.kernel = proc.node.kernel
        self.params = proc.node.cfg.tcp

    def send(self, nbytes: int) -> Generator:
        """Blocking stream send of ``nbytes``."""

        def body() -> Generator:
            yield from self.kernel.cpu.execute(
                self.params.socket_call_ns, PRIO_KERNEL, label="sock_send"
            )
            yield from self.conn.send(nbytes)

        yield from self.kernel.syscall(body(), label="tcp_send")

    def recv(self, nbytes: int) -> Generator:
        """Blocking receive of exactly ``nbytes`` from the stream."""

        def body() -> Generator:
            yield from self.kernel.cpu.execute(
                self.params.socket_call_ns, PRIO_KERNEL, label="sock_recv"
            )
            got = yield from self.conn.recv(nbytes)
            return got

        got = yield from self.kernel.syscall(body(), label="tcp_recv")
        return got


class UdpSocket:
    """A datagram socket bound to a port."""

    def __init__(self, proc: UserProcess, port: int):
        self.proc = proc
        self.port = port
        self.kernel = proc.node.kernel
        self.params = proc.node.cfg.tcp
        self.udp = proc.node.tcp.udp

    def sendto(self, dst_node: int, nbytes: int, payload=None) -> Generator:
        """Blocking datagram send of ``nbytes`` to a node."""
        def body() -> Generator:
            yield from self.kernel.cpu.execute(
                self.params.socket_call_ns, PRIO_KERNEL, label="sock_sendto"
            )
            yield from self.udp.sendto(dst_node, self.port, nbytes, payload=payload)

        yield from self.kernel.syscall(body(), label="udp_sendto")

    def recvfrom(self, block: bool = True) -> Generator:
        """Receive one datagram (or None when non-blocking)."""
        def body() -> Generator:
            yield from self.kernel.cpu.execute(
                self.params.socket_call_ns, PRIO_KERNEL, label="sock_recvfrom"
            )
            msg = yield from self.udp.recvfrom(self.port, block=block)
            return msg

        msg = yield from self.kernel.syscall(body(), label="udp_recvfrom")
        return msg
