"""IP layer.

The paper's point (§3.1) is that in a single-switch cluster the IP layer
buys nothing — no routing is needed — yet costs header bytes and stack
traversal on every packet.  We model it faithfully anyway, because the
TCP/IP baseline must pay for it:

* 20-byte header per packet (on top of 14 B Ethernet),
* fragmentation of datagrams larger than the MTU (used by UDP; TCP
  avoids it by segmenting to the MSS itself),
* reassembly on receive.

Per-packet CPU costs of the combined stack traversal live in
:class:`~repro.config.TcpIpParams` and are charged by the TCP/UDP
layers; this module charges the transmission mechanics (SK_BUFF fill +
driver call) shared by both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from ...config import TcpIpParams
from ...hw.nic import EtherType
from ...oskernel import SkBuff
from ...sim import Counters, Store

__all__ = ["IpLayer", "IpDatagram"]

_dgram_ids = itertools.count(1)


@dataclass
class IpDatagram:
    """An IP packet (possibly a fragment) on the wire."""

    src_node: int
    dst_node: int
    protocol: str  # "tcp" | "udp"
    data_bytes: int
    datagram_id: int
    frag_offset: int = 0
    more_fragments: bool = False
    total_bytes: int = 0
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_dgram_ids))


class IpLayer:
    """Per-node IP tx/rx mechanics."""

    def __init__(self, node, params: TcpIpParams):
        self.node = node
        self.params = params
        self.counters = Counters()
        self._backlog: Store = Store(node.env, name=f"{node.name}.ip.backlog")
        node.env.process(self._backlog_pump(), name=f"{node.name}.ip.pump")
        self._reassembly: Dict[Tuple[int, int], list] = {}

    def mtu_payload(self) -> int:
        """IP payload bytes per frame (MTU minus the IP header)."""
        return self.node.mtu() - self.params.ip_header_bytes

    # -- transmit -------------------------------------------------------------
    def tx(self, dgram: IpDatagram) -> Generator:
        """Send a datagram, fragmenting to the MTU if needed.

        The payload is assumed to already sit in kernel memory (the
        socket layer copied it there); the caller has charged its own
        per-packet protocol costs.
        """
        limit = self.mtu_payload()
        if dgram.data_bytes <= limit:
            yield from self._tx_one(dgram)
            return
        offset = 0
        total = dgram.data_bytes
        while offset < total:
            take = min(limit, total - offset)
            frag = IpDatagram(
                src_node=dgram.src_node,
                dst_node=dgram.dst_node,
                protocol=dgram.protocol,
                data_bytes=take,
                datagram_id=dgram.datagram_id,
                frag_offset=offset,
                more_fragments=(offset + take) < total,
                total_bytes=total,
                payload=dgram.payload,
            )
            self.counters.add("fragments_tx")
            yield from self._tx_one(frag)
            offset += take

    def _tx_one(self, dgram: IpDatagram) -> Generator:
        skb = SkBuff.for_system_payload(dgram.data_bytes, payload=dgram)
        skb.push_header("ip", self.params.ip_header_bytes)
        driver = self.node.drivers[0]
        mac = self.node.mac_of(dgram.dst_node, 0)
        accepted = yield from driver.transmit(skb, mac, EtherType.IPV4)
        if accepted:
            self.counters.add("datagrams_tx")
        else:
            self._backlog.put((skb, mac))
            self.counters.add("datagrams_backlogged")

    def _backlog_pump(self) -> Generator:
        while True:
            skb, mac = yield self._backlog.get()
            while True:
                accepted = yield from self.node.drivers[0].transmit(skb, mac, EtherType.IPV4)
                if accepted:
                    break
                yield self.node.env.timeout(5_000.0)

    # -- receive ----------------------------------------------------------------
    def rx(self, dgram: IpDatagram) -> Optional[IpDatagram]:
        """Reassembly: returns the complete datagram or ``None`` (more
        fragments outstanding).  Unfragmented datagrams pass through."""
        if dgram.total_bytes == 0:
            self.counters.add("datagrams_rx")
            return dgram
        key = (dgram.src_node, dgram.datagram_id)
        acc = self._reassembly.setdefault(key, [0])
        acc[0] += dgram.data_bytes
        self.counters.add("fragments_rx")
        if acc[0] < dgram.total_bytes:
            return None
        del self._reassembly[key]
        self.counters.add("datagrams_rx")
        return IpDatagram(
            src_node=dgram.src_node,
            dst_node=dgram.dst_node,
            protocol=dgram.protocol,
            data_bytes=dgram.total_bytes,
            datagram_id=dgram.datagram_id,
            payload=dgram.payload,
        )
