"""The assembled TCP/IP stack of one node.

Registers itself for the IPv4 ethertype; received buffers flow (in
bottom-half context, exactly like CLIC's receive path — the two stacks
differ above the driver, not below) through IP reassembly and are
demuxed to TCP connections or UDP ports.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...hw.nic import EtherType
from ...oskernel import SkBuff, UserProcess
from ...sim import Counters
from .ip import IpDatagram, IpLayer
from .sockets import TcpSocket, UdpSocket
from .tcp import TcpConnection, TcpLayer
from .udp import UdpLayer

__all__ = ["TcpIpStack"]


class TcpIpStack:
    """IP + TCP + UDP for one node."""

    def __init__(self, node):
        self.node = node
        self.params = node.cfg.tcp
        #: tracing scope of this stack, e.g. ``node0.tcpip``
        self.scope = f"{node.name}.tcpip"
        self.tracer = node.kernel.tracer
        self.counters = Counters(registry=node.kernel.metrics, prefix=f"{self.scope}.")
        self.ip = IpLayer(node, self.params)
        self.tcp = TcpLayer(node, self.params, self.ip)
        self.udp = UdpLayer(node, self.params, self.ip)
        node.kernel.register_protocol(EtherType.IPV4, self._rx_entry)

    # -- socket factories ------------------------------------------------------
    @staticmethod
    def connect_pair(proc_a: UserProcess, proc_b: UserProcess) -> tuple:
        """Create both ends of a TCP connection between two processes."""
        stack_a = proc_a.node.tcp
        stack_b = proc_b.node.tcp
        conn_a = stack_a.tcp.connect(proc_b.node.node_id)
        conn_b = stack_b.tcp.connect(proc_a.node.node_id, conn_id=conn_a.conn_id)
        return TcpSocket(proc_a, conn_a), TcpSocket(proc_b, conn_b)

    @staticmethod
    def udp_socket(proc: UserProcess, port: int) -> UdpSocket:
        return UdpSocket(proc, port)

    # -- receive entry (bottom-half context) -------------------------------------
    def _rx_entry(self, skb: SkBuff) -> Generator:
        with self.tracer.begin(self.scope, "tcpip_rx") as span:
            dgram: IpDatagram = skb.payload
            complete = self.ip.rx(dgram)
            if complete is None:
                span.annotate(kind="fragment")
                return
            if complete.protocol == "tcp":
                span.annotate(kind="tcp")
                yield from self.tcp.dispatch(complete.payload)
            elif complete.protocol == "udp":
                span.annotate(kind="udp")
                yield from self.udp.on_datagram(complete.payload)
            else:
                self.counters.add("unknown_ip_protocol")
