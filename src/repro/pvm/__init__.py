"""PVM 3-style middleware (Figure 6's slowest contender)."""

from .api import PvmTask, pvm_pair

__all__ = ["PvmTask", "pvm_pair"]
