"""PVM 3-style middleware over TCP (the slowest contender in Figure 6).

PVM's messaging model explains its curve:

* ``pvm_pkbyte`` **packs** the payload into a typed send buffer — an
  extra user-space copy before the socket even sees the data;
* messages are routed via the **pvmd daemons** by default (task ->
  local daemon -> remote daemon -> task), adding two process hops;
  ``PvmTaskOptions.direct_route`` models ``PvmRouteDirect``, which the
  era's users had to opt into;
* heavier per-call bookkeeping than MPI.

The daemon hop is modeled as added latency plus daemon CPU work on both
hosts (the daemon is a user process competing for the same CPUs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..config import PvmParams
from ..hw.cpu import PRIO_USER
from ..protocols.tcpip import TcpIpStack

__all__ = ["PvmTask", "pvm_pair"]

_task_ids = itertools.count(1)

#: modeled daemon CPU work per relayed message (each daemon)
DAEMON_WORK_NS = 8_000.0


class PvmTask:
    """One PVM task (process) with point-to-point messaging."""

    def __init__(self, proc, params: PvmParams, direct_route: bool = False):
        self.proc = proc
        self.params = params
        self.tid = next(_task_ids)
        self.direct_route = direct_route
        #: peer tid -> socket
        self._sockets: Dict[int, object] = {}

    # -- wiring -----------------------------------------------------------
    @staticmethod
    def pair(proc_a, proc_b, params_a: PvmParams, direct_route: bool = False):
        """Create two connected tasks (one TCP connection between them)."""
        task_a = PvmTask(proc_a, params_a, direct_route)
        task_b = PvmTask(proc_b, params_a, direct_route)
        sock_a, sock_b = TcpIpStack.connect_pair(proc_a, proc_b)
        task_a._sockets[task_b.tid] = sock_a
        task_b._sockets[task_a.tid] = sock_b
        return task_a, task_b

    # -- messaging ----------------------------------------------------------
    def _overhead(self) -> Generator:
        yield from self.proc.cpu.execute(
            self.params.per_call_ns, PRIO_USER, label="pvm_call"
        )

    def pack_and_send(self, dest: "PvmTask", nbytes: int) -> Generator:
        """pvm_initsend + pvm_pkbyte + pvm_send."""
        yield from self._overhead()
        if self.params.pack_copy:
            # User-space pack copy into the send buffer.
            yield from self.proc.node.memory.cpu_copy(
                self.proc.cpu, nbytes, PRIO_USER, label="pvm_pack"
            )
        sock = self._sockets[dest.tid]
        if not self.direct_route:
            # Task -> pvmd -> remote pvmd -> task: daemon work both ends
            # plus queueing latency.
            yield from self.proc.cpu.execute(DAEMON_WORK_NS, PRIO_USER, label="pvmd")
            yield self.proc.env.timeout(self.params.daemon_detour_ns)
        yield from sock.send(nbytes + self.params.envelope_bytes)

    def recv(self, source: "PvmTask", nbytes: int) -> Generator:
        """pvm_recv + pvm_upkbyte."""
        yield from self._overhead()
        sock = self._sockets[source.tid]
        got = yield from sock.recv(nbytes + self.params.envelope_bytes)
        if not self.direct_route:
            yield from self.proc.cpu.execute(DAEMON_WORK_NS, PRIO_USER, label="pvmd")
        if self.params.pack_copy:
            # Unpack copy out of the receive buffer.
            yield from self.proc.node.memory.cpu_copy(
                self.proc.cpu, nbytes, PRIO_USER, label="pvm_unpack"
            )
        return got - self.params.envelope_bytes


def pvm_pair(params: PvmParams, direct_route: bool = False):
    """Adapter-factory for the workloads: a connected PVM task pair."""

    def setup(proc_a, proc_b):
        task_a, task_b = PvmTask.pair(proc_a, proc_b, params, direct_route)

        class _Adapter:
            def __init__(self, me, peer):
                self.me, self.peer = me, peer

            def send(self, nbytes: int) -> Generator:
                yield from self.me.pack_and_send(self.peer, max(nbytes, 1))

            def recv(self, nbytes: int) -> Generator:
                got = yield from self.me.recv(self.peer, max(nbytes, 1))
                return got

        return _Adapter(task_a, task_b), _Adapter(task_b, task_a)

    return setup
