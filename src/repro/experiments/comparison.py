"""TXT-GAMMA — the §5 comparison against GAMMA (and VIA for context).

Paper: "Compared with GAMMA, CLIC provides higher values for latencies
(36 us vs 32 us with GA620 and 9.5 us with GII), and a slightly lower
bandwidth (~600 Mb/s vs 768 with GII and 824 with GA620).  Nevertheless
CLIC ... can be ported to any system running Linux without modifying
the drivers."

Shape checks: GAMMA (modified driver) has lower latency and higher
bandwidth than CLIC; VIA's user-level path has the lowest small-message
latency; CLIC is the only one of the three that delivers reliably under
frame loss (the price/benefit table of §5).
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table
from ..cluster import Cluster
from ..config import MTU_JUMBO, granada2003
from ..workloads import clic_pair, gamma_pair, pingpong, stream, via_pair
from .common import check

EXPERIMENT_ID = "TXT-GAMMA"


def _loss_survivors() -> Dict[str, bool]:
    """Does a 20-fragment message survive 10% frame loss?"""
    outcomes = {}

    # CLIC: reliable transport.
    cluster = Cluster(granada2003(mtu=1500), loss_rate=0.1)
    got = []

    def clic_tx(proc):
        from ..protocols.clic import ClicEndpoint

        ep = ClicEndpoint(proc, 2)
        yield from ep.send(1, 30_000)

    def clic_rx(proc):
        from ..protocols.clic import ClicEndpoint

        ep = ClicEndpoint(proc, 2)
        msg = yield from ep.recv()
        got.append(msg.nbytes)

    cluster.nodes[0].spawn().run(clic_tx)
    cluster.nodes[1].spawn().run(clic_rx)
    cluster.env.run(until=2e9)
    outcomes["CLIC"] = got == [30_000]

    # GAMMA: no retransmission.
    cluster = Cluster(granada2003(mtu=1500), protocols=("gamma",), loss_rate=0.1)
    got_g = []

    def gamma_tx(proc):
        yield from proc.node.gamma.send(1, 2, 30_000)

    def gamma_rx(proc):
        msg = yield from proc.node.gamma.recv(2)
        got_g.append(msg.nbytes)

    cluster.nodes[0].spawn().run(gamma_tx)
    cluster.nodes[1].spawn().run(gamma_rx)
    cluster.env.run(until=2e9)
    outcomes["GAMMA"] = got_g == [30_000]

    # VIA: no reliability either.
    cluster = Cluster(granada2003(mtu=1500), protocols=("via",), loss_rate=0.1)
    vi_a = cluster.nodes[0].via.create_vi(3)
    vi_b = cluster.nodes[1].via.create_vi(3)
    got_v = []

    def via_tx(proc):
        yield from vi_a.send(1, 30_000)

    cluster.nodes[0].spawn().run(via_tx)
    cluster.env.run(until=2e9)
    got_v = [m.nbytes for m in vi_b.completions]
    outcomes["VIA"] = got_v == [30_000]
    return outcomes


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    clic_lat = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=2, warmup=1)
    gamma_lat = pingpong(
        Cluster(granada2003(), protocols=("gamma",)), gamma_pair(), 0, repeats=2, warmup=1
    )
    via_lat = pingpong(
        Cluster(granada2003(), protocols=("via",)), via_pair(), 0, repeats=2, warmup=1
    )
    clic_bw = stream(Cluster(granada2003(mtu=MTU_JUMBO)), clic_pair(), 2_000_000).bandwidth_mbps
    gamma_bw = stream(
        Cluster(granada2003(mtu=MTU_JUMBO), protocols=("gamma",)), gamma_pair(), 2_000_000
    ).bandwidth_mbps
    via_bw = stream(
        Cluster(granada2003(mtu=MTU_JUMBO), protocols=("via",)), via_pair(), 2_000_000
    ).bandwidth_mbps
    survivors = _loss_survivors()

    rows = [
        ("CLIC", round(clic_lat.one_way_ns / 1000, 1), round(clic_bw, 0),
         "yes" if survivors["CLIC"] else "no", "stock"),
        ("GAMMA", round(gamma_lat.one_way_ns / 1000, 1), round(gamma_bw, 0),
         "yes" if survivors["GAMMA"] else "no", "patched"),
        ("VIA", round(via_lat.one_way_ns / 1000, 1), round(via_bw, 0),
         "yes" if survivors["VIA"] else "no", "user-level"),
    ]
    report = format_table(
        ["layer", "0B latency (us)", "bandwidth (Mb/s)", "survives loss", "driver"],
        rows,
        title="TXT-GAMMA: CLIC vs GAMMA vs VIA (paper: 36us/600Mb vs 32us/824Mb; CLIC is portable+reliable)",
    )
    result = {
        "id": EXPERIMENT_ID,
        "latency_us": {
            "CLIC": clic_lat.one_way_ns / 1000,
            "GAMMA": gamma_lat.one_way_ns / 1000,
            "VIA": via_lat.one_way_ns / 1000,
        },
        "bandwidth": {"CLIC": clic_bw, "GAMMA": gamma_bw, "VIA": via_bw},
        "survives_loss": survivors,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    lat, bw, loss = result["latency_us"], result["bandwidth"], result["survives_loss"]
    check(lat["GAMMA"] < lat["CLIC"], "GAMMA's latency beats CLIC's (paper: 32 vs 36 us)",
          f"{lat['GAMMA']:.1f} vs {lat['CLIC']:.1f}")
    check(bw["GAMMA"] > bw["CLIC"], "GAMMA's bandwidth beats CLIC's (paper: 768-824 vs ~600)",
          f"{bw['GAMMA']:.0f} vs {bw['CLIC']:.0f}")
    check(bw["GAMMA"] < bw["CLIC"] * 1.8, "...but not by much (same hardware limits)",
          f"{bw['GAMMA']:.0f} vs {bw['CLIC']:.0f}")
    check(loss == {"CLIC": True, "GAMMA": False, "VIA": False},
          "only CLIC delivers reliably under frame loss", str(loss))


if __name__ == "__main__":
    print(run()["report"])
