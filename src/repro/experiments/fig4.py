"""FIG4 — CLIC bandwidth for MTU x copy-mode (paper Figure 4).

Four curves: {MTU 9000, MTU 1500} x {0-copy, 1-copy}, bandwidth vs
message size, all with coalesced interrupts (as in the paper).

Paper claims (shape checks):

* jumbo frames improve the asymptote more than 0-copy does;
* 0-copy never hurts, and its visible effect lives in the
  latency-sensitive (ping-pong) regime where the staging copy sits on
  the critical path;
* asymptotes land near 600 Mb/s (MTU 9000) and 450 Mb/s (MTU 1500) —
  we accept a generous band since the substrate is a simulator.

Measured both ways: ping-pong (NetPIPE convention; exposes the 0-copy
cost) and pipelined stream (ttcp convention; exposes the per-frame
overhead gap between the MTUs).  The paper's prose emphasises the
stream-style asymptotes; EXPERIMENTS.md discusses the correspondence.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis import format_series_table, logx_plot
from ..config import MTU_JUMBO, MTU_STANDARD, granada2003
from ..workloads import clic_pair
from .common import check, full_sizes, quick_sizes, sweep_pingpong, sweep_stream

EXPERIMENT_ID = "FIG4"

CONFIGS = [
    ("9000/0-copy", MTU_JUMBO, True),
    ("9000/1-copy", MTU_JUMBO, False),
    ("1500/0-copy", MTU_STANDARD, True),
    ("1500/1-copy", MTU_STANDARD, False),
]


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    sizes = quick_sizes() if quick else full_sizes()
    pp_series = []
    st_series = []
    for label, mtu, zero_copy in CONFIGS:
        cfg_factory = lambda m=mtu, z=zero_copy: granada2003(mtu=m, zero_copy=z)
        pp_series.append(sweep_pingpong(f"pp {label}", cfg_factory, clic_pair, sizes, jobs=jobs))
        st_series.append(sweep_stream(f"st {label}", cfg_factory, clic_pair, sizes, jobs=jobs))

    report = "\n\n".join(
        [
            format_series_table(pp_series, title="FIG4 (ping-pong, Mb/s)"),
            format_series_table(st_series, title="FIG4 (stream, Mb/s)"),
            logx_plot(st_series, title="FIG4: CLIC bandwidth vs size (stream)"),
        ]
    )
    result = {
        "id": EXPERIMENT_ID,
        "sizes": sizes,
        "pingpong": {s.label: s.mbps for s in pp_series},
        "stream": {s.label: s.mbps for s in st_series},
        "asymptotes": {s.label: s.asymptote() for s in st_series},
        "report": report,
    }
    shape_checks(result, pp_series, st_series)
    return result


def shape_checks(result: Dict, pp_series: List, st_series: List) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    st = {s.label.removeprefix("st "): s for s in st_series}
    pp = {s.label.removeprefix("pp "): s for s in pp_series}

    jumbo0, jumbo1 = st["9000/0-copy"], st["9000/1-copy"]
    std0, std1 = st["1500/0-copy"], st["1500/1-copy"]

    check(
        jumbo0.asymptote() > std0.asymptote() * 1.1,
        "jumbo frames raise the asymptotic bandwidth over MTU 1500",
        f"{jumbo0.asymptote():.0f} vs {std0.asymptote():.0f} Mb/s",
    )
    jumbo_gain = jumbo0.asymptote() - std0.asymptote()
    copy_gain = max(
        pp["9000/0-copy"].asymptote() - pp["9000/1-copy"].asymptote(),
        pp["1500/0-copy"].asymptote() - pp["1500/1-copy"].asymptote(),
    )
    check(
        jumbo_gain > copy_gain,
        "the improvement from jumbo frames exceeds the one from 0-copy",
        f"jumbo +{jumbo_gain:.0f} vs 0-copy +{copy_gain:.0f} Mb/s",
    )
    for mtu_label in ("9000", "1500"):
        zc, oc = pp[f"{mtu_label}/0-copy"], pp[f"{mtu_label}/1-copy"]
        for n, a, b in zip(zc.sizes, zc.mbps, oc.mbps):
            check(
                a >= b * 0.98,
                "0-copy never loses to 1-copy (ping-pong)",
                f"MTU {mtu_label}, {n} B: {a:.1f} vs {b:.1f}",
            )
    # Someplace the 0-copy gain must actually be visible (>3%).
    gains = [
        a / b
        for mtu_label in ("9000", "1500")
        for a, b in zip(pp[f"{mtu_label}/0-copy"].mbps, pp[f"{mtu_label}/1-copy"].mbps)
    ]
    check(max(gains) > 1.03, "0-copy shows a visible gain somewhere on the curves")
    # Calibration bands around the paper's asymptotes (simulator: wide).
    check(450 < jumbo0.asymptote() < 750, "MTU 9000 asymptote near the paper's ~600 Mb/s",
          f"{jumbo0.asymptote():.0f}")
    check(350 < std0.asymptote() < 600, "MTU 1500 asymptote near the paper's ~450 Mb/s",
          f"{std0.asymptote():.0f}")


if __name__ == "__main__":
    print(run(quick=True)["report"])
