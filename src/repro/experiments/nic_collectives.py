"""EXT-NICCOLL — host vs NIC-resident collectives, scaling to P=1024.

The NIC-based-collectives line of work (PAPERS.md) pushes the CLIC
philosophy one step past the kernel bypass: the collective tree itself
runs in NIC firmware (:mod:`repro.hw.nic.collective`), so no syscall,
IRQ or bottom half sits on a rank's critical path between its doorbell
and its completion.  This experiment measures where that pays off — and
where it doesn't.

Sweeps four collective points (barrier, an 8 KB bcast, and a 64 B and
an 8 KB allreduce) over ``collectives="host"`` and ``"nic"`` at
P = 2 .. 64 (quick) or .. 1024 (full).  Small clusters hang off the
legacy single switch; larger ones run on a 2-level fat-tree (16 nodes
per leaf, 4 spine uplinks) built by :mod:`repro.hw.fabric`.  Each sweep
point is a pure-data spec fanned out via :mod:`repro.parallel`, and the
per-rank completion times fold into a :class:`~repro.obs.Histogram` so
the report carries p50/p99 alongside the max.

Outputs:

* per-point **crossover curves** — host and NIC wall time per P, the
  host/NIC speedup, and the smallest P where the NIC engine wins;
* a traced P=4 run per mode counting syscall and IRQ spans (and
  bottom-half activations) on the collective critical path — the NIC
  engine must show exactly zero of each, the host algorithms must not.

Shape checks assert the NIC engine wins the purely latency-bound
points (barrier, small allreduce) at every P, that the 8 KB bcast wins
only while the cluster fits the single switch (cut-through fragments
hide payload latency there; on a multi-level fat-tree the extra
store-and-forward trunk hops hand it back to the host tree), that the
crossover flips for the bandwidth-bound 8 KB allreduce (a reduction
cannot cut through, so the firmware tree serializes payload hops the
host's recursive doubling overlaps), that a NIC barrier scales
sub-linearly (binomial tree, O(log P) depth), and the
zero-kernel-crossing property above.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis import format_table
from ..config import Topology, granada2003
from ..obs import Histogram
from ..parallel import run_tasks
from ..workloads.mpibench import collective_rank_times
from .common import check

EXPERIMENT_ID = "EXT-NICCOLL"

#: the sweep's collective points: (op, payload bytes)
POINTS: Tuple[Tuple[str, int], ...] = (
    ("barrier", 0),
    ("bcast", 8_192),
    ("allreduce", 64),
    ("allreduce", 8_192),
)
MODES = ("host", "nic")
SIZES_QUICK = (2, 4, 16, 64)
SIZES_FULL = (2, 4, 16, 64, 256, 1024)
#: clusters past this size move off the single switch onto a fat-tree
STAR_MAX = 64
FABRIC = ("fat-tree", 16, 4)  # kind, leaf_fan, uplink_fan
#: world size of the traced critical-path runs
TRACED_P = 4


def _key(op: str, nbytes: int) -> str:
    return f"{op}/{nbytes}B"


def _config(size: int):
    cfg = granada2003(num_nodes=size)
    if size > STAR_MAX:
        kind, leaf_fan, uplink_fan = FABRIC
        cfg = cfg.with_topology(
            Topology(kind, leaf_fan=leaf_fan, uplink_fan=uplink_fan))
    return cfg


def _measure(spec: Tuple[str, int, str, int]) -> List[float]:
    """Pool-safe sweep worker: one (op, nbytes, mode, P) -> per-rank ns."""
    op, nbytes, mode, size = spec
    return collective_rank_times(
        _config(size), "clic", op, nbytes, repeats=1, collectives=mode,
    )


def _traced_critical_path(mode: str) -> Dict[str, float]:
    """Run one traced barrier at ``TRACED_P`` and count kernel crossings
    (syscall spans, IRQ spans, bottom-half activations) that start on
    the collective critical path — i.e. after every rank's pre-barrier.
    """
    from ..cluster import Cluster
    from ..mpi import build_world

    cluster = Cluster(granada2003(num_nodes=TRACED_P, trace=True))
    world = build_world(cluster, "clic", collectives=mode)
    t0: List[float] = []
    bh_before: List[float] = []

    def program(ctx):
        yield from ctx.barrier()
        t0.append(ctx.proc.env.now)
        if not bh_before:
            bh_before.append(sum(
                cluster.metrics.counter(
                    f"{node.name}.kernel.bh.scheduled").value
                for node in cluster.nodes))
        yield from ctx.barrier()

    world.run(program)
    start = max(t0)  # every rank is past the warm-up barrier by here
    syscalls = sum(1 for s in cluster.tracer.find(name="syscall")
                   if s.start_ns >= start)
    irqs = sum(1 for s in cluster.tracer.find(name="irq")
               if s.start_ns >= start)
    bh_after = sum(
        cluster.metrics.counter(f"{node.name}.kernel.bh.scheduled").value
        for node in cluster.nodes)
    return {"syscall_spans": syscalls, "irq_spans": irqs,
            "bh_scheduled": bh_after - bh_before[0]}


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    specs = [(op, nbytes, mode, size) for op, nbytes in POINTS
             for mode in MODES for size in sizes]
    per_rank = run_tasks(_measure, specs, jobs=jobs)

    times: Dict[str, Dict[str, Dict[str, float]]] = {
        _key(op, n): {} for op, n in POINTS}
    percentiles: Dict[str, Dict[str, float]] = {}
    for (op, nbytes, mode, size), ranks in zip(specs, per_rank):
        hist = Histogram(f"{_key(op, nbytes)}/{mode}/{size}")
        for t in ranks:
            hist.record(t)
        times[_key(op, nbytes)].setdefault(mode, {})[str(size)] = max(ranks)
        percentiles[hist.name] = {
            "p50_us": round(hist.percentile(50) / 1000, 2),
            "p99_us": round(hist.percentile(99) / 1000, 2),
            "max_us": round(hist.maximum / 1000, 2),
        }

    crossover: Dict[str, Dict] = {}
    rows = []
    for op, nbytes in POINTS:
        key = _key(op, nbytes)
        curve = {}
        cross_at = None
        for size in sizes:
            host = times[key]["host"][str(size)]
            nic = times[key]["nic"][str(size)]
            curve[str(size)] = round(host / nic, 3)
            if cross_at is None and nic < host:
                cross_at = size
            rows.append((key, size, round(host / 1000, 1),
                         round(nic / 1000, 1), round(host / nic, 2)))
        crossover[key] = {"speedup_by_size": curve, "nic_wins_at": cross_at}

    trace = {mode: _traced_critical_path(mode) for mode in MODES}
    report = format_table(
        ["collective", "P", "host (us)", "NIC (us)", "host/NIC"],
        rows,
        title=f"EXT-NICCOLL: host vs NIC collectives "
              f"(fat-tree past P={STAR_MAX})",
    )
    report += (
        f"\ntraced P={TRACED_P} barrier critical path: "
        f"nic {trace['nic']['syscall_spans']:.0f} syscalls / "
        f"{trace['nic']['irq_spans']:.0f} IRQs / "
        f"{trace['nic']['bh_scheduled']:.0f} BHs — "
        f"host {trace['host']['syscall_spans']:.0f} syscalls"
    )
    result = {
        "id": EXPERIMENT_ID,
        "sizes": list(sizes),
        "points": [list(p) for p in POINTS],
        "times": times,
        "percentiles": percentiles,
        "crossover": crossover,
        "trace": trace,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the NIC-offload claims on the measured data."""
    times = result["times"]
    sizes = result["sizes"]
    largest = str(max(sizes))
    # Latency-bound points: firmware combining beats host algorithms at
    # every size.  The 8 KB bcast only counts while the cluster fits the
    # single switch — past STAR_MAX its cut-through advantage drowns in
    # store-and-forward trunk hops and the host tree takes over.
    for key in (_key("barrier", 0), _key("allreduce", 64)):
        for size in sizes:
            host = times[key]["host"][str(size)]
            nic = times[key]["nic"][str(size)]
            check(nic < host,
                  "NIC engine wins the latency-bound collectives",
                  f"{key}@{size}: nic {nic/1000:.1f} vs host {host/1000:.1f} us")
    bc = _key("bcast", 8_192)
    for size in sizes:
        if size > STAR_MAX:
            continue
        host = times[bc]["host"][str(size)]
        nic = times[bc]["nic"][str(size)]
        check(nic < host,
              "NIC cut-through bcast wins on the single switch",
              f"{bc}@{size}: nic {nic/1000:.1f} vs host {host/1000:.1f} us")
    # Bandwidth-bound allreduce: a reduction cannot cut through, so the
    # firmware tree serializes full-payload hops and the host's
    # recursive doubling (parallel pairwise exchanges) wins — the
    # crossover the experiment exists to surface.
    big = _key("allreduce", 8_192)
    check(times[big]["nic"][largest] > times[big]["host"][largest],
          "bandwidth-bound allreduce favors host recursive doubling",
          f"{big}@{largest}: nic {times[big]['nic'][largest]/1000:.1f} vs "
          f"host {times[big]['host'][largest]/1000:.1f} us")
    # One binomial tree in firmware: depth (and so time) grows O(log P).
    b_small = times[_key("barrier", 0)]["nic"][str(min(sizes))]
    b_large = times[_key("barrier", 0)]["nic"][largest]
    factor = max(sizes) / min(sizes)
    check(b_large < b_small * factor / 2,
          "NIC barrier scales sub-linearly (binomial tree depth)",
          f"P={min(sizes)}: {b_small/1000:.1f} us vs "
          f"P={largest}: {b_large/1000:.1f} us ({factor:.0f}x nodes)")
    trace = result["trace"]
    for crossing in ("syscall_spans", "irq_spans", "bh_scheduled"):
        check(trace["nic"][crossing] == 0,
              "NIC collectives cross the kernel zero times",
              f"{crossing}: {trace['nic'][crossing]:.0f}")
    check(trace["host"]["syscall_spans"] > 0,
          "host collectives do syscall on the critical path "
          "(the tracer check is live)",
          f"{trace['host']['syscall_spans']:.0f} spans")


if __name__ == "__main__":
    print(run()["report"])
