"""FIG5 — CLIC vs TCP/IP at MTU 9000 and 1500 (paper Figure 5).

All configurations use 0-copy CLIC and coalesced interrupts.  Paper
claims (shape checks):

* CLIC beats TCP/IP at every message size, for both MTUs;
* at TCP's best configuration (MTU 9000) CLIC's asymptote is close to
  twofold ("more than twofold" in the paper; we require >= 1.7);
* CLIC's curve rises faster than TCP's (reaches 80% of its own
  asymptote at a smaller size).
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_series_table, logx_plot, size_reaching
from ..config import MTU_JUMBO, MTU_STANDARD, granada2003
from ..workloads import clic_pair, tcp_pair
from .common import check, full_sizes, quick_sizes, sweep_pingpong

EXPERIMENT_ID = "FIG5"


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    sizes = quick_sizes() if quick else full_sizes()
    series = [
        sweep_pingpong("CLIC 9000", lambda: granada2003(mtu=MTU_JUMBO), clic_pair, sizes, jobs=jobs),
        sweep_pingpong("CLIC 1500", lambda: granada2003(mtu=MTU_STANDARD), clic_pair, sizes, jobs=jobs),
        sweep_pingpong("TCP 9000", lambda: granada2003(mtu=MTU_JUMBO), tcp_pair, sizes, jobs=jobs),
        sweep_pingpong("TCP 1500", lambda: granada2003(mtu=MTU_STANDARD), tcp_pair, sizes, jobs=jobs),
    ]
    report = "\n\n".join(
        [
            format_series_table(series, title="FIG5: CLIC vs TCP/IP (ping-pong, Mb/s)"),
            logx_plot(series, title="FIG5: CLIC vs TCP/IP"),
        ]
    )
    result = {
        "id": EXPERIMENT_ID,
        "sizes": sizes,
        "curves": {s.label: s.mbps for s in series},
        "asymptotes": {s.label: s.asymptote() for s in series},
        "report": report,
    }
    shape_checks(result, series)
    return result


def shape_checks(result: Dict, series) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    by = {s.label: s for s in series}
    clic9, clic15 = by["CLIC 9000"], by["CLIC 1500"]
    tcp9, tcp15 = by["TCP 9000"], by["TCP 1500"]

    for clic, tcp, mtu in ((clic9, tcp9, 9000), (clic15, tcp15, 1500)):
        for n, c, t in zip(clic.sizes, clic.mbps, tcp.mbps):
            check(c > t, "CLIC beats TCP/IP at every size",
                  f"MTU {mtu}, {n} B: CLIC {c:.1f} vs TCP {t:.1f}")
    ratio = clic9.asymptote() / tcp9.asymptote()
    check(ratio >= 1.7,
          "CLIC ~doubles TCP's bandwidth at TCP's best MTU (paper: >2x)",
          f"ratio {ratio:.2f}")
    # "Rises faster": CLIC reaches any common bandwidth level at a much
    # smaller message size than TCP does.
    threshold = tcp9.asymptote() / 2
    clic_size = size_reaching(clic9.sizes, clic9.mbps, threshold)
    tcp_size = size_reaching(tcp9.sizes, tcp9.mbps, threshold)
    check(
        clic_size is not None and tcp_size is not None and clic_size * 3 < tcp_size,
        "CLIC's curve rises faster than TCP's (reaches the same Mb/s at >=3x smaller size)",
        f"{threshold:.0f} Mb/s at CLIC {clic_size:.0f} B vs TCP {tcp_size:.0f} B",
    )
    check(tcp9.asymptote() > tcp15.asymptote(),
          "MTU 9000 is TCP's best case",
          f"{tcp9.asymptote():.0f} vs {tcp15.asymptote():.0f}")


if __name__ == "__main__":
    print(run(quick=True)["report"])
