"""FE-2001 — the Fast Ethernet baseline and the bottleneck shift (§2).

Section 2's motivating observation: "in Fast Ethernet ... it is possible
to get a 90% of the maximum bandwidth with a 15-20% CPU use.  Having a
similar situation in networks with 1 Gb/s bandwidths would require
almost a 100% of the processor power."  This experiment runs the same
protocols on both generations of the testbed and shows exactly that
shift:

* on Fast Ethernet both CLIC and TCP saturate most of the 100 Mb/s wire
  and the receiving CPU is largely idle;
* on Gigabit Ethernet the wire has headroom while the receiver's CPU is
  pinned — the bottleneck moved from the network into the host, which is
  the paper's reason to exist.

Shape checks:

* CLIC achieves >= 85 % of the FE wire; TCP >= 70 %;
* the receiving CPU's utilization at FE is a small fraction of its
  utilization at GigE, for both protocols;
* fraction-of-wire achieved *drops* from FE to GigE for both protocols
  (the host can no longer keep up with the medium).
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table
from ..cluster import Cluster
from ..config import MTU_JUMBO, fastethernet2001, granada2003
from ..workloads import clic_pair, stream, tcp_pair
from .common import check

EXPERIMENT_ID = "FE-2001"

TRANSFER = 1_500_000


def _measure(cfg, wire_mbps: float, setup_factory) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    cluster = Cluster(cfg)
    result = stream(cluster, setup_factory(), TRANSFER, messages=1)
    rx = cluster.nodes[1]
    elapsed = result.elapsed_ns
    return {
        "mbps": result.bandwidth_mbps,
        "wire_fraction": result.bandwidth_mbps / wire_mbps,
        "rx_cpu": rx.cpu.busy.busy_time(elapsed) / elapsed,
    }


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    cells = {
        ("FE", "CLIC"): _measure(fastethernet2001(), 100.0, clic_pair),
        ("FE", "TCP"): _measure(fastethernet2001(), 100.0, tcp_pair),
        ("GigE", "CLIC"): _measure(granada2003(mtu=MTU_JUMBO), 1000.0, clic_pair),
        ("GigE", "TCP"): _measure(granada2003(mtu=MTU_JUMBO), 1000.0, tcp_pair),
    }
    rows = [
        (
            era,
            proto,
            round(cell["mbps"], 1),
            round(cell["wire_fraction"] * 100, 1),
            round(cell["rx_cpu"] * 100, 1),
        )
        for (era, proto), cell in cells.items()
    ]
    report = format_table(
        ["testbed", "protocol", "Mb/s", "% of wire", "rx CPU %"],
        rows,
        title="FE-2001: the bottleneck moves from the wire into the host (§2)",
    )
    result = {
        "id": EXPERIMENT_ID,
        "cells": {f"{e}/{p}": v for (e, p), v in cells.items()},
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    cells = result["cells"]
    check(cells["FE/CLIC"]["wire_fraction"] >= 0.85,
          "first-generation CLIC saturates Fast Ethernet (>= 85% of wire)",
          f"{cells['FE/CLIC']['wire_fraction']:.0%}")
    check(cells["FE/TCP"]["wire_fraction"] >= 0.70,
          "even TCP gets most of a Fast Ethernet wire (the §2 data point)",
          f"{cells['FE/TCP']['wire_fraction']:.0%}")
    for proto in ("CLIC", "TCP"):
        check(
            cells[f"FE/{proto}"]["rx_cpu"] < 0.8 * cells[f"GigE/{proto}"]["rx_cpu"],
            "the receiver CPU loafs at FE and is pinned at GigE",
            f"{proto}: {cells[f'FE/{proto}']['rx_cpu']:.0%} vs "
            f"{cells[f'GigE/{proto}']['rx_cpu']:.0%}",
        )
        check(
            cells[f"GigE/{proto}"]["wire_fraction"]
            < cells[f"FE/{proto}"]["wire_fraction"],
            "fraction of wire achieved drops at gigabit speed (host-bound)",
            f"{proto}",
        )


if __name__ == "__main__":
    print(run()["report"])
