"""ABL-* — ablations of the design choices DESIGN.md calls out.

* **ABL-COAL** — interrupt coalescing: latency cost for a lone packet vs
  bandwidth gain under load (the §2 trade-off).
* **ABL-DIRECT** — Figure 8(b) direct driver->CLIC_MODULE dispatch:
  latency gain, identical delivery semantics.
* **ABL-FRAG** — on-NIC fragmentation offload (the paper's declined/
  future-work feature): host sends one descriptor per *message segment*
  instead of per MTU frame, saving per-fragment module+driver work at
  MTU 1500.
* **ABL-BOND** — channel bonding x1 vs x2 NICs on both the paper's
  33 MHz PCI (no gain possible: the I/O bus is the ceiling) and a
  66 MHz/64-bit bus (wire-limited: bonding pays).
* **ABL-SCHED** — GAMMA-style lightweight return (skip the scheduler on
  syscall exit): measures what CLIC's §3.2(a) design choice costs.
* **ABL-POLL** — §3.2(b): VIA-style polling receive, with the probe
  either crossing the PCI bus (the expensive flavour the paper warns
  about) or hitting a cached completion queue, at several poll
  intervals — "the polling frequency must be carefully selected".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..analysis import format_table
from ..cluster import Cluster
from ..config import MTU_JUMBO, MTU_STANDARD, granada2003, pci_66mhz_64bit
from ..workloads import clic_pair, pingpong, stream
from .common import check

EXPERIMENT_ID = "ABLATIONS"


def _latency(cfg) -> float:
    return pingpong(Cluster(cfg), clic_pair(), 0, repeats=2, warmup=1).one_way_ns / 1000


def _latency_1400(cfg) -> float:
    return pingpong(Cluster(cfg), clic_pair(), 1400, repeats=2, warmup=1).one_way_ns / 1000


def _bandwidth(cfg, nbytes=2_000_000) -> float:
    return stream(Cluster(cfg), clic_pair(), nbytes).bandwidth_mbps


def _via_pingpong(poll_pci: bool, poll_interval_ns: float, repeats: int = 4) -> Dict:
    """0-byte VIA ping-pong with explicit polling parameters."""
    cfg = granada2003()
    cfg = cfg.with_node(
        replace(cfg.node, via=replace(cfg.node.via, poll_interval_ns=poll_interval_ns))
    )
    cluster = Cluster(cfg, protocols=("via",))
    vi_a = cluster.nodes[0].via.create_vi()
    vi_b = cluster.nodes[1].via.create_vi(vi_a.vi_id)
    result: Dict[str, float] = {}

    def ping(proc):
        t0 = proc.env.now
        for _ in range(repeats):
            yield from vi_a.send(1, 0)
            yield from vi_a.recv(poll_pci=poll_pci)
        result["rtt"] = (proc.env.now - t0) / repeats

    def pong(proc):
        for _ in range(repeats):
            yield from vi_b.recv(poll_pci=poll_pci)
            yield from vi_b.send(0, 0)

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    done = p0.run(ping)
    p1.run(pong)
    cluster.env.run(done)
    return {
        "lat_us": result["rtt"] / 2 / 1000,
        "poll_pci_accesses": cluster.nodes[0].pci.counters.get("via_poll_accesses"),
        "cpu_poll_us": cluster.nodes[0].cpu.counters.get("work.via_poll") / 1000,
    }


def _measure_polling() -> Dict:
    pci = _via_pingpong(poll_pci=True, poll_interval_ns=1_000.0)
    cached = _via_pingpong(poll_pci=False, poll_interval_ns=1_000.0)
    fine = _via_pingpong(poll_pci=False, poll_interval_ns=1_000.0)
    coarse = _via_pingpong(poll_pci=False, poll_interval_ns=50_000.0)
    return {
        "lat_pci_us": pci["lat_us"],
        "lat_cached_us": cached["lat_us"],
        "pci_probes": pci["poll_pci_accesses"],
        "cached_probes_pci": cached["poll_pci_accesses"],
        "lat_fine_us": fine["lat_us"],
        "lat_coarse_us": coarse["lat_us"],
        "cpu_fine_us": fine["cpu_poll_us"],
        "cpu_coarse_us": coarse["cpu_poll_us"],
    }


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    base = granada2003(mtu=MTU_JUMBO)

    # ABL-COAL
    no_coal = base.with_node(base.node.with_coalescing(False))
    coal = {
        "lat_on_us": _latency(base),
        "lat_off_us": _latency(no_coal),
        "bw_on": _bandwidth(base),
        "bw_off": _bandwidth(no_coal),
    }

    # ABL-DIRECT
    direct_cfg = base.with_node(base.node.with_direct_rx(True))
    direct = {
        "lat_stock_us": _latency_1400(base),
        "lat_direct_us": _latency_1400(direct_cfg),
    }

    # ABL-FRAG (at MTU 1500, where per-fragment work dominates)
    std = granada2003(mtu=MTU_STANDARD)
    frag_node = std.node.with_fragmentation_offload(True)
    frag_cfg = std.with_node(frag_node)
    frag = {
        "bw_sw_frag": _bandwidth(std, 1_000_000),
        "bw_nic_frag": _bandwidth(frag_cfg, 1_000_000),
    }

    # ABL-BOND
    bond = {}
    for label, pci_fast in (("pci33", False), ("pci66", True)):
        for nics in (1, 2):
            node = base.node.with_nic_count(nics)
            if pci_fast:
                node = replace(node, pci=pci_66mhz_64bit())
            bond[f"{label}/x{nics}"] = _bandwidth(base.with_node(node))

    # ABL-POLL (§3.2(b)): polling cost for a VIA-style receiver.
    poll = _measure_polling()

    # ABL-SCHED
    light_node = replace(
        base.node, kernel=replace(base.node.kernel, scheduler_on_syscall_return=False)
    )
    sched = {
        "lat_sched_us": _latency(base),
        "lat_nosched_us": _latency(base.with_node(light_node)),
    }

    rows = [
        ("COAL: 0B latency on/off (us)", round(coal["lat_on_us"], 1), round(coal["lat_off_us"], 1)),
        ("COAL: stream bw on/off (Mb/s)", round(coal["bw_on"], 0), round(coal["bw_off"], 0)),
        ("DIRECT: 1400B latency stock/direct (us)", round(direct["lat_stock_us"], 1), round(direct["lat_direct_us"], 1)),
        ("FRAG: MTU1500 bw sw/NIC-offload (Mb/s)", round(frag["bw_sw_frag"], 0), round(frag["bw_nic_frag"], 0)),
        ("BOND: pci33 x1/x2 (Mb/s)", round(bond["pci33/x1"], 0), round(bond["pci33/x2"], 0)),
        ("BOND: pci66 x1/x2 (Mb/s)", round(bond["pci66/x1"], 0), round(bond["pci66/x2"], 0)),
        ("SCHED: latency with/without scheduler (us)", round(sched["lat_sched_us"], 1), round(sched["lat_nosched_us"], 1)),
        ("POLL: VIA latency pci/cached probe (us)", round(poll["lat_pci_us"], 1), round(poll["lat_cached_us"], 1)),
        ("POLL: rx poll PCI transactions pci/cached", int(poll["pci_probes"]), int(poll["cached_probes_pci"])),
        ("POLL: CPU burnt polling 1us/50us interval (us)", round(poll["cpu_fine_us"], 1), round(poll["cpu_coarse_us"], 1)),
        ("POLL: latency 1us/50us interval (us)", round(poll["lat_fine_us"], 1), round(poll["lat_coarse_us"], 1)),
    ]
    report = format_table(["ablation", "A", "B"], rows, title="ABLATIONS")
    result = {
        "id": EXPERIMENT_ID,
        "coalescing": coal,
        "direct": direct,
        "fragmentation": frag,
        "bonding": bond,
        "scheduler": sched,
        "polling": poll,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    coal = result["coalescing"]
    check(coal["lat_off_us"] < coal["lat_on_us"],
          "disabling coalescing lowers lone-packet latency (the §2 trade-off)",
          f"{coal['lat_off_us']:.1f} vs {coal['lat_on_us']:.1f}")
    check(coal["bw_on"] >= coal["bw_off"] * 0.98,
          "coalescing does not cost stream bandwidth",
          f"{coal['bw_on']:.0f} vs {coal['bw_off']:.0f}")

    direct = result["direct"]
    check(direct["lat_direct_us"] < direct["lat_stock_us"] - 3,
          "direct dispatch saves several microseconds at 1400 B (Figure 8)",
          f"{direct['lat_direct_us']:.1f} vs {direct['lat_stock_us']:.1f}")

    frag = result["fragmentation"]
    check(frag["bw_nic_frag"] > frag["bw_sw_frag"] * 1.02,
          "NIC fragmentation offload improves MTU-1500 bandwidth (the paper's declined optimisation)",
          f"{frag['bw_nic_frag']:.0f} vs {frag['bw_sw_frag']:.0f}")

    bond = result["bonding"]
    check(bond["pci33/x2"] < bond["pci33/x1"] * 1.1,
          "bonding cannot beat the 33 MHz PCI ceiling",
          f"{bond['pci33/x2']:.0f} vs {bond['pci33/x1']:.0f}")
    check(bond["pci66/x2"] > bond["pci66/x1"] * 1.15,
          "bonding pays once the I/O bus outruns one wire",
          f"{bond['pci66/x2']:.0f} vs {bond['pci66/x1']:.0f}")

    sched = result["scheduler"]
    delta = sched["lat_sched_us"] - sched["lat_nosched_us"]
    check(0 <= delta <= 5,
          "skipping the scheduler on syscall return saves ~a microsecond "
          "(§3.2(a): why CLIC keeps it anyway)",
          f"delta {delta:.2f} us")

    poll = result["polling"]
    check(poll["pci_probes"] > 0 and poll["cached_probes_pci"] == 0,
          "PCI-crossing polls hit the I/O bus; cached-CQ polls do not (§3.2(b))")
    check(poll["cpu_fine_us"] > poll["cpu_coarse_us"],
          "finer polling burns more CPU (§3.2(b): frequency must be chosen carefully)",
          f"{poll['cpu_fine_us']:.1f} vs {poll['cpu_coarse_us']:.1f} us")
    check(poll["lat_fine_us"] < poll["lat_coarse_us"],
          "...while coarser polling costs latency",
          f"{poll['lat_fine_us']:.1f} vs {poll['lat_coarse_us']:.1f} us")


if __name__ == "__main__":
    print(run()["report"])
