"""Shared experiment infrastructure.

Each experiment module exposes ``run(quick=True) -> dict`` returning the
measured series plus a rendered report, and a set of *shape checks* —
the paper's qualitative claims — that the benchmark suite asserts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..cluster import Cluster
from ..config import ClusterConfig, granada2003
from ..workloads import SweepSeries, netpipe_sizes, pingpong, stream

__all__ = [
    "quick_sizes",
    "full_sizes",
    "sweep_pingpong",
    "sweep_stream",
    "check",
    "ShapeCheckFailure",
]


class ShapeCheckFailure(AssertionError):
    """A paper-shape invariant did not hold."""


def check(condition: bool, claim: str, detail: str = "") -> None:
    """Assert a paper-shape claim with a readable message."""
    if not condition:
        raise ShapeCheckFailure(f"shape claim violated: {claim}" + (f" ({detail})" if detail else ""))


def quick_sizes() -> List[int]:
    """Reduced grid for CI/benchmarks: 10^2 .. 10^6."""
    return [100, 1_000, 10_000, 100_000, 1_000_000]


def full_sizes() -> List[int]:
    """The paper's grid: 10^1 .. 10^7, ~2 points per decade."""
    return netpipe_sizes(1, 7, points_per_decade=2)


def sweep_pingpong(
    label: str,
    cfg_factory: Callable[[], ClusterConfig],
    setup_factory: Callable,
    sizes: Sequence[int],
    repeats: int = 1,
) -> SweepSeries:
    """NetPIPE-style ping-pong bandwidth curve."""
    series = SweepSeries(label)
    for nbytes in sizes:
        cluster = Cluster(cfg_factory())
        series.points.append(
            pingpong(cluster, setup_factory(), nbytes, repeats=repeats, warmup=1)
        )
    return series


def sweep_stream(
    label: str,
    cfg_factory: Callable[[], ClusterConfig],
    setup_factory: Callable,
    sizes: Sequence[int],
    messages: int = 12,
) -> "SweepSeries":
    """Pipelined stream bandwidth curve (ttcp-style), wrapped so the
    SweepSeries helpers (asymptote, half-bandwidth) apply."""
    from ..workloads.pingpong import PingPongResult

    series = SweepSeries(label)
    for nbytes in sizes:
        cluster = Cluster(cfg_factory())
        result = stream(cluster, setup_factory(), nbytes, messages=messages)
        per_message_ns = result.elapsed_ns / messages
        series.points.append(
            PingPongResult(nbytes=nbytes, repeats=messages, rtt_ns=2 * per_message_ns)
        )
    return series
