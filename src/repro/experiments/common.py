"""Shared experiment infrastructure.

Each experiment module exposes ``run(quick=True) -> dict`` returning the
measured series plus a rendered report, and a set of *shape checks* —
the paper's qualitative claims — that the benchmark suite asserts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..cluster import Cluster
from ..config import ClusterConfig, granada2003
from ..parallel import run_tasks
from ..workloads import SweepSeries, netpipe_sizes, pingpong, stream

__all__ = [
    "quick_sizes",
    "full_sizes",
    "sweep_pingpong",
    "sweep_stream",
    "check",
    "ShapeCheckFailure",
]


class ShapeCheckFailure(AssertionError):
    """A paper-shape invariant did not hold."""


def check(condition: bool, claim: str, detail: str = "") -> None:
    """Assert a paper-shape claim with a readable message."""
    if not condition:
        raise ShapeCheckFailure(f"shape claim violated: {claim}" + (f" ({detail})" if detail else ""))


def quick_sizes() -> List[int]:
    """Reduced grid for CI/benchmarks: 10^2 .. 10^6."""
    return [100, 1_000, 10_000, 100_000, 1_000_000]


def full_sizes() -> List[int]:
    """The paper's grid: 10^1 .. 10^7, ~2 points per decade."""
    return netpipe_sizes(1, 7, points_per_decade=2)


def _pingpong_point(spec):
    """One ping-pong sweep point from a pure-data spec (pool-safe)."""
    cfg, setup_factory, nbytes, repeats = spec
    cluster = Cluster(cfg)
    return pingpong(cluster, setup_factory(), nbytes, repeats=repeats, warmup=1)


def sweep_pingpong(
    label: str,
    cfg_factory: Callable[[], ClusterConfig],
    setup_factory: Callable,
    sizes: Sequence[int],
    repeats: int = 1,
    jobs: int = 1,
) -> SweepSeries:
    """NetPIPE-style ping-pong bandwidth curve.

    The configs are materialized up front (pure data), so with
    ``jobs > 1`` the points fan out over a process pool and workers
    rebuild each cluster from its config; ``setup_factory`` must then be
    a module-level callable (``clic_pair``, ``tcp_pair``, ...).
    """
    specs = [(cfg_factory(), setup_factory, nbytes, repeats) for nbytes in sizes]
    return SweepSeries(label, run_tasks(_pingpong_point, specs, jobs=jobs))


def _stream_point(spec):
    """One stream sweep point from a pure-data spec (pool-safe)."""
    cfg, setup_factory, nbytes, messages = spec
    cluster = Cluster(cfg)
    return stream(cluster, setup_factory(), nbytes, messages=messages)


def sweep_stream(
    label: str,
    cfg_factory: Callable[[], ClusterConfig],
    setup_factory: Callable,
    sizes: Sequence[int],
    messages: int = 12,
    jobs: int = 1,
) -> "SweepSeries":
    """Pipelined stream bandwidth curve (ttcp-style), wrapped so the
    SweepSeries helpers (asymptote, half-bandwidth) apply.  Parallel
    fan-out works exactly as in :func:`sweep_pingpong`."""
    from ..workloads.pingpong import PingPongResult

    specs = [(cfg_factory(), setup_factory, nbytes, messages) for nbytes in sizes]
    series = SweepSeries(label)
    for result in run_tasks(_stream_point, specs, jobs=jobs):
        per_message_ns = result.elapsed_ns / result.messages
        series.add(
            PingPongResult(
                nbytes=result.nbytes_total // result.messages,
                repeats=result.messages,
                rtt_ns=2 * per_message_ns,
            )
        )
    return series
