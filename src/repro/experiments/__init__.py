"""Experiments: one module per paper figure/table/claim (see DESIGN.md)."""

from .registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
