"""SEC2-INT — interrupt rate and CPU load analysis (paper Section 2).

The paper's motivating arithmetic: at MTU 1500 a saturated Gigabit
Ethernet link delivers a frame every ~12 µs; one interrupt per frame is
unserviceable, jumbo frames only scale the interval by 6x, and
coalescing trades latency for rate.  This experiment streams a large
transfer and reports, per configuration:

* interrupts taken per received frame,
* mean inter-interrupt interval,
* receiver CPU utilization,
* achieved bandwidth,

for {MTU 1500, MTU 9000} x {coalescing on, off}.

Shape checks: coalescing reduces interrupts/frame by at least the frame
threshold's worth at MTU 1500; jumbo frames cut the no-coalescing
interrupt *rate* by roughly the 6x the paper quotes; receiver CPU load
drops when either mitigation is on.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table
from ..cluster import Cluster
from ..config import MTU_JUMBO, MTU_STANDARD, granada2003
from ..workloads import clic_pair, stream
from .common import check

EXPERIMENT_ID = "SEC2-INT"

TRANSFER_BYTES = 2_000_000


def _measure(mtu: int, coalescing: bool) -> Dict:
    """One cell: ``coalescing=False`` also sets a pre-NAPI-style driver
    that services a single frame per interrupt — the configuration the
    paper's Section 2 arithmetic (an IRQ every 12 us) describes."""
    from dataclasses import replace

    cfg = granada2003(mtu=mtu)
    node = cfg.node.with_coalescing(coalescing)
    if not coalescing:
        node = replace(node, driver=replace(node.driver, rx_budget_per_irq=1))
    cfg = cfg.with_node(node)
    cluster = Cluster(cfg)
    result = stream(cluster, clic_pair(), TRANSFER_BYTES, messages=1)
    rx_node = cluster.nodes[1]
    nic = rx_node.nics[0]
    irqs = nic.counters.get("irqs_asserted")
    frames = nic.counters.get("rx_frames")
    elapsed = result.elapsed_ns
    return {
        "mtu": mtu,
        "coalescing": coalescing,
        "irqs": irqs,
        "frames": frames,
        "irqs_per_frame": irqs / frames if frames else 0.0,
        "interval_us": elapsed / irqs / 1000 if irqs else float("inf"),
        "cpu_util": rx_node.cpu.busy.busy_time(elapsed) / elapsed,
        "cpu_us_per_frame": rx_node.cpu.busy.busy_time(elapsed) / frames / 1000 if frames else 0.0,
        "mbps": result.bandwidth_mbps,
    }


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    cells = {
        (mtu, co): _measure(mtu, co)
        for mtu in (MTU_STANDARD, MTU_JUMBO)
        for co in (False, True)
    }
    rows = [
        (
            f"MTU {mtu}",
            "coalesced" if co else "per-frame",
            int(cell["irqs"]),
            round(cell["irqs_per_frame"], 2),
            round(cell["interval_us"], 1),
            round(cell["cpu_util"] * 100, 1),
            round(cell["mbps"], 0),
        )
        for (mtu, co), cell in sorted(cells.items())
    ]
    report = format_table(
        ["config", "irq mode", "irqs", "irqs/frame", "us/irq", "rx CPU %", "Mb/s"],
        rows,
        title="SEC2-INT: interrupt rate vs MTU and coalescing (2 MB stream)",
    )
    result = {"id": EXPERIMENT_ID, "cells": {f"{m}/{c}": v for (m, c), v in cells.items()}, "report": report}
    shape_checks(result, cells)
    return result


def shape_checks(result: Dict, cells: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    std_off = cells[(MTU_STANDARD, False)]
    std_on = cells[(MTU_STANDARD, True)]
    jumbo_off = cells[(MTU_JUMBO, False)]

    check(std_off["irqs_per_frame"] > 0.95,
          "the pre-NAPI per-frame-IRQ driver takes ~one interrupt per frame",
          f"{std_off['irqs_per_frame']:.2f}")
    check(std_off["irqs"] > 4 * std_on["irqs"],
          "coalescing + batched service cut the interrupt count by several x (MTU 1500)",
          f"{std_off['irqs']:.0f} vs {std_on['irqs']:.0f}")
    interval_ratio = jumbo_off["interval_us"] / std_off["interval_us"]
    check(3 <= interval_ratio <= 9,
          "jumbo frames stretch the interrupt interval by ~6x (paper's 'factor of six')",
          f"{interval_ratio:.1f}x")
    check(std_on["cpu_us_per_frame"] < std_off["cpu_us_per_frame"] * 0.97,
          "coalescing lowers receiver CPU work per frame",
          f"{std_on['cpu_us_per_frame']:.2f} vs {std_off['cpu_us_per_frame']:.2f} us/frame")
    check(std_on["mbps"] > std_off["mbps"],
          "the saved interrupt overhead shows up as bandwidth",
          f"{std_on['mbps']:.0f} vs {std_off['mbps']:.0f}")


if __name__ == "__main__":
    print(run()["report"])
