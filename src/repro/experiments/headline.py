"""TXT-LAT / TXT-BW — the paper's headline numbers (§4/§5 text).

* 0-byte one-way latency: paper 36 µs;
* asymptotic bandwidth: paper ~600 Mb/s (MTU 9000), ~450 Mb/s (MTU 1500);
* half-of-own-max bandwidth reached at 4 KB for CLIC vs ~16 KB for
  TCP/IP — a pipelined (stream) bandwidth metric; see EXPERIMENTS.md for
  the methodology discussion.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table, interpolate_half_bandwidth
from ..cluster import Cluster
from ..config import MTU_JUMBO, MTU_STANDARD, granada2003
from ..workloads import clic_pair, pingpong, tcp_pair
from .common import check, sweep_stream

EXPERIMENT_ID = "HEADLINE"

HALF_BW_SIZES = [200, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 256_000, 1_000_000]


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    latency = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=3, warmup=1)
    tcp_latency = pingpong(Cluster(granada2003()), tcp_pair(), 0, repeats=3, warmup=1)

    bw_jumbo = sweep_stream(
        "CLIC 9000", lambda: granada2003(mtu=MTU_JUMBO), clic_pair, [2_000_000], messages=8
    ).asymptote()
    bw_std = sweep_stream(
        "CLIC 1500", lambda: granada2003(mtu=MTU_STANDARD), clic_pair, [2_000_000], messages=8
    ).asymptote()

    clic_curve = sweep_stream(
        "CLIC", lambda: granada2003(mtu=MTU_JUMBO), clic_pair, HALF_BW_SIZES, messages=8
    )
    tcp_curve = sweep_stream(
        "TCP", lambda: granada2003(mtu=MTU_JUMBO), tcp_pair, HALF_BW_SIZES, messages=8
    )
    clic_half = interpolate_half_bandwidth(clic_curve.sizes, clic_curve.mbps)
    tcp_half = interpolate_half_bandwidth(tcp_curve.sizes, tcp_curve.mbps)

    rows = [
        ("0-byte one-way latency (us)", 36.0, round(latency.one_way_ns / 1000, 1)),
        ("asymptotic bandwidth, MTU 9000 (Mb/s)", 600.0, round(bw_jumbo, 0)),
        ("asymptotic bandwidth, MTU 1500 (Mb/s)", 450.0, round(bw_std, 0)),
        ("CLIC half-bandwidth size (bytes)", 4_096, round(clic_half, 0)),
        ("TCP half-bandwidth size (bytes)", 16_384, round(tcp_half, 0)),
        ("TCP/CLIC half-size ratio", 4.0, round(tcp_half / clic_half, 1)),
    ]
    report = format_table(["metric", "paper", "measured"], rows, title="Headline numbers")
    result = {
        "id": EXPERIMENT_ID,
        "latency_us": latency.one_way_ns / 1000,
        "tcp_latency_us": tcp_latency.one_way_ns / 1000,
        "bw_jumbo": bw_jumbo,
        "bw_std": bw_std,
        "clic_half_bytes": clic_half,
        "tcp_half_bytes": tcp_half,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    check(20 <= result["latency_us"] <= 55,
          "0-byte latency near the paper's 36 us", f"{result['latency_us']:.1f}")
    check(result["latency_us"] < result["tcp_latency_us"],
          "CLIC latency beats TCP latency")
    check(450 <= result["bw_jumbo"] <= 750,
          "MTU 9000 asymptote near 600 Mb/s", f"{result['bw_jumbo']:.0f}")
    check(350 <= result["bw_std"] <= 600,
          "MTU 1500 asymptote near 450 Mb/s", f"{result['bw_std']:.0f}")
    check(result["bw_jumbo"] > result["bw_std"],
          "jumbo beats standard MTU asymptotically")
    check(result["tcp_half_bytes"] > 2.5 * result["clic_half_bytes"],
          "CLIC reaches half bandwidth at a ~4x smaller size than TCP",
          f"CLIC {result['clic_half_bytes']:.0f} B vs TCP {result['tcp_half_bytes']:.0f} B")


if __name__ == "__main__":
    print(run()["report"])
