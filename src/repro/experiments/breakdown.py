"""CPU-BRK — where the receiver's CPU cycles go: CLIC vs TCP/IP.

Not a numbered figure, but the paper's central *argument* (§2, §5): at
gigabit speeds the host processor drowns in per-packet protocol work and
copies, and CLIC's short path gives most of those cycles back to the
application.  This experiment streams the same 2 MB through both stacks
and breaks the receiving node's CPU time into categories.

Shape checks:

* TCP burns several times more *protocol* CPU than CLIC for the same
  bytes;
* total receiver CPU per byte is much higher for TCP;
* under CLIC the dominant CPU cost is the data copy + driver rx (the
  very stages Figures 7/8 target), not protocol processing.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.cpu_report import breakdown_table, cpu_breakdown
from ..cluster import Cluster
from ..config import MTU_JUMBO, granada2003
from ..workloads import clic_pair, stream, tcp_pair
from .common import check

EXPERIMENT_ID = "CPU-BRK"

TRANSFER = 2_000_000


def _measure(setup_factory) -> Dict:
    cluster = Cluster(granada2003(mtu=MTU_JUMBO, profile=True))
    result = stream(cluster, setup_factory(), TRANSFER, messages=1)
    rx = cluster.nodes[1]
    return {
        "cpu": rx.cpu,
        "breakdown": cpu_breakdown(rx.cpu),
        "elapsed_ns": result.elapsed_ns,
        "mbps": result.bandwidth_mbps,
        "busy_ns": rx.cpu.busy.total_busy,
        # Where the *simulator* spent its events (obs profiling hooks).
        "sim_profile": cluster.env.profiler.snapshot(),
        # Receiver-side typed metrics, e.g. bottom-half queue high-water.
        "rx_metrics": {
            name: inst.as_dict()
            for name, inst in cluster.metrics.items()
            if name.startswith(rx.name)
        },
    }


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    clic = _measure(clic_pair)
    tcp = _measure(tcp_pair)
    report = breakdown_table(
        {"CLIC rx": clic["cpu"], "TCP rx": tcp["cpu"]},
        title=(
            "CPU-BRK: receiver CPU time for a 2 MB stream "
            f"(CLIC {clic['mbps']:.0f} Mb/s, TCP {tcp['mbps']:.0f} Mb/s)"
        ),
    )
    result = {
        "id": EXPERIMENT_ID,
        "clic": {k: v for k, v in clic.items() if k != "cpu"},
        "tcp": {k: v for k, v in tcp.items() if k != "cpu"},
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    clic_b, tcp_b = result["clic"]["breakdown"], result["tcp"]["breakdown"]
    clic_proto = clic_b.get("protocol", 0.0)
    tcp_proto = tcp_b.get("protocol", 0.0)
    check(tcp_proto > 3 * clic_proto,
          "TCP burns several times more protocol CPU than CLIC per byte (§2)",
          f"{tcp_proto/1e6:.1f} vs {clic_proto/1e6:.1f} ms")
    clic_per_byte = sum(clic_b.values()) / TRANSFER
    tcp_per_byte = sum(tcp_b.values()) / TRANSFER
    check(tcp_per_byte > 1.5 * clic_per_byte,
          "total receiver CPU per byte much higher for TCP",
          f"{tcp_per_byte:.1f} vs {clic_per_byte:.1f} ns/B")
    copies_plus_driver = clic_b.get("copies", 0.0) + clic_b.get("driver rx", 0.0)
    check(copies_plus_driver > clic_proto,
          "under CLIC, copies + driver rx dominate protocol work "
          "(why Figures 7/8 target those stages)",
          f"{copies_plus_driver/1e6:.1f} vs {clic_proto/1e6:.1f} ms")


if __name__ == "__main__":
    print(run()["report"])
