"""CLI entry point: ``python -m repro.experiments fig4``."""

import sys

from .registry import main

sys.exit(main())
