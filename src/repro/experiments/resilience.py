"""TXT-RESIL — resilience of CLIC vs TCP under injected faults.

The paper argues CLIC is "a reliable transport protocol" on raw
Ethernet; §5's comparison table shows it is the only lightweight layer
that survives frame loss at all.  This experiment quantifies *how* it
survives: goodput, message latency and retransmission overhead for CLIC
and TCP across a grid of

* uniform (i.i.d.) frame-loss rates,
* bursty loss at the **same average rate** (a Gilbert–Elliott two-state
  channel with total loss in the bad state — real Ethernet errors
  cluster: connector brownouts, switch congestion, EMI bursts), and
* a scheduled full link outage shorter than the retry budget.

Fast retransmit (both protocols) repairs an *isolated* loss in about one
round trip, so uniform loss costs roughly one RTT per dropped frame.  A
burst wipes consecutive frames — including the duplicate acks fast
retransmit feeds on — so the sender ends up in a full RTO stall with
exponential backoff.  At the same long-run loss rate, clustering the
losses therefore hurts goodput *at least as much*, which is the shape
this experiment checks.  Cells are averaged over several RNG seeds (loss
draws on a few-hundred-frame run are noisy).

Shape checks: goodput degrades monotonically with the loss rate for both
protocols; burst loss at the same average rate degrades goodput at least
as much as uniform loss; every fault the plan injects is visible in the
cluster's ``faults.*`` metrics; the outage runs complete with nothing
lost once the link returns.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..analysis import format_table
from ..cluster import Cluster
from ..config import granada2003
from ..faults import FaultPlan
from ..parallel import run_tasks
from ..workloads import clic_pair, pingpong, stream, tcp_pair
from .common import check

EXPERIMENT_ID = "TXT-RESIL"

#: Gilbert–Elliott scenario: total loss in the bad state, mean burst of
#: 8 frames — long enough to starve fast retransmit of duplicate acks,
#: short against the sim horizon so several bursts land per run.
MEAN_BURST_FRAMES = 8.0
LOSS_BAD = 1.0

#: per-cell RNG seeds (cells average over them)
SEEDS = (1, 7, 42)


def _cfg(seed: int):
    """The testbed config for resilience runs: MTU 1500 so loss operates
    on a statistically meaningful number of frames per run."""
    return replace(granada2003(mtu=1500), seed=seed)


def _pair(protocol: str):
    return clic_pair() if protocol == "clic" else tcp_pair()


def _sum_counters(cluster: Cluster, suffix: str) -> float:
    """Sum every registry counter whose name ends with ``suffix``."""
    return sum(
        inst.value
        for name, inst in cluster.metrics.items()
        if inst.kind == "counter" and name.endswith(suffix)
    )


def _fault_drops(cluster: Cluster) -> float:
    """Total frames the fault plan removed or damaged, from obs metrics."""
    return sum(
        _sum_counters(cluster, s)
        for s in (".loss_drops", ".burst_drops", ".outage_drops", ".corrupted")
    )


def _plan(model: str, rate: float) -> Optional[FaultPlan]:
    if rate == 0.0:
        return None
    if model == "uniform":
        return FaultPlan.uniform(rate)
    return FaultPlan.bursty(
        rate, mean_burst_frames=MEAN_BURST_FRAMES, loss_bad=LOSS_BAD
    )


def _cell(protocol: str, model: str, rate: float,
          nbytes: int, messages: int) -> Dict:
    """One grid cell, averaged over :data:`SEEDS`."""
    goodputs: List[float] = []
    retx_overheads: List[float] = []
    fast_retx = 0.0
    drops = 0.0
    for seed in SEEDS:
        cluster = Cluster(_cfg(seed), protocols=(protocol,), faults=_plan(model, rate))
        res = stream(cluster, _pair(protocol), nbytes, messages=messages)
        goodputs.append(res.bandwidth_mbps)
        registered = _sum_counters(cluster, ".registered")
        retransmitted = _sum_counters(cluster, ".retransmitted")
        retx_overheads.append(retransmitted / registered if registered else 0.0)
        fast_retx += _sum_counters(cluster, ".fast_retransmits")
        drops += _fault_drops(cluster)

    # Enough repeats that the loss model actually intersects the pings
    # (a 1024 B exchange is only ~2 frames).
    lat_cluster = Cluster(_cfg(SEEDS[0]), protocols=(protocol,),
                          faults=_plan(model, rate))
    lat = pingpong(lat_cluster, _pair(protocol), 1024, repeats=20, warmup=2)
    return {
        "protocol": protocol,
        "model": model,
        "rate": rate,
        "goodput_mbps": sum(goodputs) / len(goodputs),
        "goodput_per_seed": goodputs,
        "latency_us": lat.one_way_ns / 1000,
        "retx_overhead": sum(retx_overheads) / len(retx_overheads),
        "fast_retransmits": fast_retx,
        "fault_drops": drops,
    }


def _outage_run(protocol: str, nbytes: int, messages: int) -> Dict:
    """Full link outage shorter than the retry budget: the stream must
    stall, back off, and complete with nothing lost.

    The outage opens at t=1 ms — mid-transfer for this stream length —
    and lasts 10 ms, so the sender is forced through RTO backoff while
    the link is dark and finishes the stream once it returns."""
    plan = FaultPlan.link_outage(1_000_000.0, 11_000_000.0, node=0, channel=0)
    cluster = Cluster(_cfg(SEEDS[0]), protocols=(protocol,), faults=plan)
    res = stream(cluster, _pair(protocol), nbytes, messages=messages)
    return {
        "protocol": protocol,
        "elapsed_ms": res.elapsed_ns / 1e6,
        "goodput_mbps": res.bandwidth_mbps,
        "delivered_bytes": res.nbytes_total,
        "retransmitted": _sum_counters(cluster, ".retransmitted"),
        "outage_drops": _sum_counters(cluster, ".outage_drops"),
    }


def _point_task(spec: Tuple) -> Dict:
    """One grid point from a pure-data spec (module-level: pool-safe)."""
    kind, args = spec[0], spec[1:]
    return _cell(*args) if kind == "cell" else _outage_run(*args)


#: adversarial-delivery scenarios (see :mod:`repro.faults`)
ADVERSARIAL_KINDS = ("reorder", "duplicate", "overload")


def _adversarial_setup(kind: str) -> Tuple[FaultPlan, str, int]:
    """(fault plan, switch backpressure mode, switch queue frames) for one
    adversarial-delivery scenario.

    ``reorder``/``duplicate`` stress the receiver's reassembly and
    duplicate suppression over a normal drop-mode switch.  ``overload``
    collapses the *receiver's downlink* bandwidth 4x mid-transfer (the
    ingress keeps arriving at full rate, so the switch egress queue —
    shrunk to 8 frames — backs up) behind a PAUSE-mode (lossless)
    fabric: senders are stalled instead of frames shed — graceful
    degradation, not loss.
    """
    from ..faults import CongestionWindow, LinkFaultSpec, OutageWindow

    if kind == "reorder":
        return FaultPlan.reordering(0.25, max_delay_ns=100_000.0), "drop", 512
    if kind == "duplicate":
        return FaultPlan.duplication(0.2, max_copies=2), "drop", 512
    spike = CongestionWindow(
        window=OutageWindow(200_000.0, 4_200_000.0),
        bandwidth_factor=4.0,
        extra_latency_ns=50_000.0,
    )
    # ``stream`` sends node 0 -> node 1, so (1, 0, "down") is the switch
    # egress feeding the receiver — the only link the spike covers.
    plan = FaultPlan(links={(1, 0, "down"): LinkFaultSpec(congestion=(spike,))})
    return plan, "pause", 8


def _adversarial_run(kind: str, nbytes: int, messages: int) -> Dict:
    """One journey-traced CLIC stream under an adversarial-delivery fault.

    Returns tail latency (p50/p99/p99.9 over per-message journeys) plus
    the degraded-mode accounting: duplicates suppressed, frames parked in
    the reorder stash, overrun drops, and PAUSE backpressure time.  Runs
    serially (one cluster, one seed) so ``--jobs N`` artifacts stay
    byte-identical.
    """
    from ..obs import JourneyProbe, JourneyRecorder, journey_latency_summary

    plan, backpressure, queue_frames = _adversarial_setup(kind)
    cfg = replace(_cfg(SEEDS[0]), switch_backpressure=backpressure)
    cluster = Cluster(cfg, protocols=("clic",), faults=plan)
    cluster.switch.queue_frames = queue_frames
    for port in cluster.switch.ports:
        port.queue.capacity = queue_frames
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    try:
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        probe.uninstall()
    switch = cluster.switch.counters
    return {
        "kind": kind,
        "backpressure": backpressure,
        "goodput_mbps": res.bandwidth_mbps,
        "summary": journey_latency_summary(recorder.as_dicts()),
        "degraded": {
            "dup_suppressed": _sum_counters(cluster, ".duplicates"),
            "reorder_buffered": _sum_counters(cluster, ".stashed"),
            "overrun_drops": (
                _sum_counters(cluster, ".stash_overflow_drops")
                + _sum_counters(cluster, ".rx_drops")
                + switch.get("drops")
            ),
            "pause_events": switch.get("pause_events"),
            "pause_time_ns": switch.get("pause_time_ns"),
        },
    }


def _tail_latency(rate: float, nbytes: int, messages: int) -> Dict:
    """Journey-traced CLIC stream under burst loss: the per-message tail.

    This is the ROADMAP item-3 instrument: instead of one averaged
    goodput number, every message's journey is captured, so the p99 /
    p99.9 latency is *attributed* — which hop dominated each outlier and
    whether loss/retransmission drove it there.  Runs serially (one
    cluster, one seed) so ``--jobs N`` artifacts stay byte-identical.
    """
    from ..obs import (JourneyProbe, JourneyRecorder, explain_outliers,
                       journey_latency_summary)

    cluster = Cluster(_cfg(SEEDS[0]), protocols=("clic",),
                      faults=_plan("burst", rate))
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    try:
        stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        probe.uninstall()
    journeys = recorder.as_dicts()
    return {
        "rate": rate,
        "summary": journey_latency_summary(journeys),
        "outliers": explain_outliers(journeys, top=3),
    }


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report.

    Every grid cell and outage run is an independent simulation, so the
    whole sweep fans out over ``jobs`` worker processes (results land in
    grid order — byte-identical to a serial run)."""
    rates = [0.0, 0.02, 0.05] if quick else [0.0, 0.01, 0.02, 0.05]
    nbytes, messages = (16_384, 48) if quick else (16_384, 96)

    specs: List[Tuple] = []
    for protocol in ("clic", "tcp"):
        for rate in rates:
            specs.append(("cell", protocol, "uniform", rate, nbytes, messages))
        for rate in rates:
            if rate > 0.0:
                specs.append(("cell", protocol, "burst", rate, nbytes, messages))
    outage_protocols = ("clic", "tcp")
    for protocol in outage_protocols:
        specs.append(("outage", protocol, nbytes, 24))

    points = run_tasks(_point_task, specs, jobs=jobs)
    cells = points[: -len(outage_protocols)]
    outages = dict(zip(outage_protocols, points[-len(outage_protocols):]))
    tail = _tail_latency(rates[1], nbytes, messages)
    adversarial = {
        kind: _adversarial_run(kind, nbytes, messages)
        for kind in ADVERSARIAL_KINDS
    }

    rows = [
        (c["protocol"].upper(), c["model"], f"{c['rate']:.2f}",
         round(c["goodput_mbps"], 1), round(c["latency_us"], 1),
         f"{c['retx_overhead'] * 100:.1f}%", int(c["fault_drops"]))
        for c in cells
    ]
    for p, o in outages.items():
        rows.append((p.upper(), "outage(10ms)", "-", round(o["goodput_mbps"], 1),
                     "-", "-", int(o["outage_drops"])))
    report = format_table(
        ["proto", "fault model", "loss", "goodput (Mb/s)", "1024B lat (us)",
         "retx overhead", "frames dropped"],
        rows,
        title="TXT-RESIL: CLIC vs TCP under loss, burst loss, and link outage",
    )
    s = tail["summary"]
    report += (
        f"\n\nCLIC message-latency tail under burst loss @ {tail['rate']:.2f} "
        f"(journey-traced): p50 {s['p50_us']:.0f} us, p99 {s['p99_us']:.0f} us, "
        f"p99.9 {s['p999_us']:.0f} us over {s['delivered']} messages "
        f"({s['retransmitted']} retransmitted); slowest dominated by "
        + ", ".join(f"{o['dominant_hop']} ({o['latency_us']:.0f} us, "
                    f"{o['retransmits']} retx)" for o in tail["outliers"])
    )
    adv_rows = [
        (a["kind"], a["backpressure"], round(a["goodput_mbps"], 1),
         round(a["summary"]["p50_us"], 1), round(a["summary"]["p99_us"], 1),
         round(a["summary"]["p999_us"], 1),
         int(a["degraded"]["dup_suppressed"]),
         int(a["degraded"]["reorder_buffered"]),
         int(a["degraded"]["overrun_drops"]),
         round(a["degraded"]["pause_time_ns"] / 1e6, 2))
        for a in adversarial.values()
    ]
    report += "\n\n" + format_table(
        ["fault", "backpressure", "goodput (Mb/s)", "p50 (us)", "p99 (us)",
         "p99.9 (us)", "dups suppressed", "reorder buffered", "overrun drops",
         "pause (ms)"],
        adv_rows,
        title="CLIC under adversarial delivery (journey-traced, degraded-mode accounting)",
    )
    result = {
        "id": EXPERIMENT_ID,
        "rates": rates,
        "cells": cells,
        "outages": outages,
        "tail_latency": tail,
        "adversarial": adversarial,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the qualitative resilience claims on the measured data."""
    cells = result["cells"]

    def series(protocol: str, model: str) -> List[Tuple[float, Dict]]:
        return sorted(
            ((c["rate"], c) for c in cells
             if c["protocol"] == protocol and c["model"] == model),
            key=lambda rc: rc[0],
        )

    for protocol in ("clic", "tcp"):
        uni = series(protocol, "uniform")
        for (r0, a), (r1, b) in zip(uni, uni[1:]):
            check(
                b["goodput_mbps"] <= a["goodput_mbps"] * 1.02,
                f"{protocol} goodput degrades monotonically with uniform loss",
                f"{a['goodput_mbps']:.1f} @ {r0} -> {b['goodput_mbps']:.1f} @ {r1}",
            )
        for rate, burst_cell in series(protocol, "burst"):
            uni_cell = next(c for _, c in uni if c["rate"] == rate)
            check(
                burst_cell["goodput_mbps"] <= uni_cell["goodput_mbps"] * 1.1,
                f"{protocol}: burst loss at the same average rate hurts at "
                "least as much as uniform loss",
                f"@{rate}: burst {burst_cell['goodput_mbps']:.1f} vs "
                f"uniform {uni_cell['goodput_mbps']:.1f} Mb/s",
            )
        for c in cells:
            if c["protocol"] == protocol and c["rate"] > 0.0:
                check(c["fault_drops"] > 0,
                      f"{protocol}: injected faults show up in the obs metrics",
                      f"{c['model']} @ {c['rate']}: {c['fault_drops']} drops")
                check(c["retx_overhead"] > 0,
                      f"{protocol}: loss costs retransmissions",
                      f"{c['model']} @ {c['rate']}: {c['retx_overhead']:.3f}")
        outage = result["outages"][protocol]
        check(outage["outage_drops"] > 0,
              f"{protocol}: the outage actually dropped frames",
              str(outage["outage_drops"]))
        check(outage["retransmitted"] > 0,
              f"{protocol}: the outage was survived by retransmission",
              str(outage["retransmitted"]))

    tail = result.get("tail_latency")
    if tail is not None:
        s = tail["summary"]
        check(s["delivered"] == s["messages"],
              "tail-latency run: every message's journey completed",
              f"{s['delivered']}/{s['messages']}")
        check(s["p50_us"] <= s["p99_us"] <= s["p999_us"],
              "tail-latency percentiles are ordered p50 <= p99 <= p99.9",
              f"{s['p50_us']:.0f} / {s['p99_us']:.0f} / {s['p999_us']:.0f}")
        check(s["retransmitted"] > 0,
              "burst loss produced at least one retransmit-genealogy child",
              str(s["retransmitted"]))
        for o in tail["outliers"]:
            check(bool(o["dominant_hop"]),
                  "every explained outlier names a dominant hop",
                  str(o))

    for kind, a in result.get("adversarial", {}).items():
        s = a["summary"]
        check(s["delivered"] == s["messages"],
              f"{kind}: every message survived adversarial delivery",
              f"{s['delivered']}/{s['messages']}")
        check(s["p50_us"] <= s["p99_us"] <= s["p999_us"],
              f"{kind}: tail percentiles are ordered p50 <= p99 <= p99.9",
              f"{s['p50_us']:.0f} / {s['p99_us']:.0f} / {s['p999_us']:.0f}")
        d = a["degraded"]
        if kind == "duplicate":
            check(d["dup_suppressed"] > 0,
                  "duplication was absorbed by the receiver's suppression",
                  str(d["dup_suppressed"]))
        if kind == "reorder":
            check(d["reorder_buffered"] > 0,
                  "reordering exercised the out-of-order stash",
                  str(d["reorder_buffered"]))
        if kind == "overload":
            check(d["pause_events"] > 0,
                  "overload engaged PAUSE backpressure",
                  str(d["pause_events"]))
            check(d["overrun_drops"] == 0,
                  "the lossless fabric shed nothing under overload",
                  str(d["overrun_drops"]))


if __name__ == "__main__":
    print(run()["report"])
