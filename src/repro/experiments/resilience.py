"""TXT-RESIL — resilience of CLIC vs TCP under injected faults.

The paper argues CLIC is "a reliable transport protocol" on raw
Ethernet; §5's comparison table shows it is the only lightweight layer
that survives frame loss at all.  This experiment quantifies *how* it
survives: goodput, message latency and retransmission overhead for CLIC
and TCP across a grid of

* uniform (i.i.d.) frame-loss rates,
* bursty loss at the **same average rate** (a Gilbert–Elliott two-state
  channel with total loss in the bad state — real Ethernet errors
  cluster: connector brownouts, switch congestion, EMI bursts), and
* a scheduled full link outage shorter than the retry budget.

Fast retransmit (both protocols) repairs an *isolated* loss in about one
round trip, so uniform loss costs roughly one RTT per dropped frame.  A
burst wipes consecutive frames — including the duplicate acks fast
retransmit feeds on — so the sender ends up in a full RTO stall with
exponential backoff.  At the same long-run loss rate, clustering the
losses therefore hurts goodput *at least as much*, which is the shape
this experiment checks.  Cells are averaged over several RNG seeds (loss
draws on a few-hundred-frame run are noisy).

Shape checks: goodput degrades monotonically with the loss rate for both
protocols; burst loss at the same average rate degrades goodput at least
as much as uniform loss; every fault the plan injects is visible in the
cluster's ``faults.*`` metrics; the outage runs complete with nothing
lost once the link returns.

The adversarial-delivery rows additionally carry *declared* contracts:
each scenario's degraded-mode expectations are an
:func:`adversarial_slo` spec evaluated into a scorecard (data, not
assert statements), and an in-sim :class:`~repro.obs.HealthWatchdog`
rides a sampler cadence during each run — the overload row must be
flagged as a pause storm while leaving the simulated metrics
bit-identical.  Every grid cell also ships its full metrics digest, so
``run()`` folds per-cell histograms into one fleet-wide registry via
:meth:`~repro.obs.MetricsRegistry.merge_from` and reports true global
syscall-latency tails (identical at any ``--jobs`` value).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..analysis import format_table
from ..cluster import Cluster
from ..config import granada2003
from ..faults import FaultPlan
from ..obs import (
    HealthWatchdog,
    Histogram,
    MetricsRegistry,
    Objective,
    SLOSpec,
    TimeSeriesSampler,
    evaluate,
)
from ..parallel import run_tasks
from ..workloads import clic_pair, pingpong, stream, tcp_pair
from .common import check

EXPERIMENT_ID = "TXT-RESIL"

#: Gilbert–Elliott scenario: total loss in the bad state, mean burst of
#: 8 frames — long enough to starve fast retransmit of duplicate acks,
#: short against the sim horizon so several bursts land per run.
MEAN_BURST_FRAMES = 8.0
LOSS_BAD = 1.0

#: per-cell RNG seeds (cells average over them)
SEEDS = (1, 7, 42)


def _cfg(seed: int):
    """The testbed config for resilience runs: MTU 1500 so loss operates
    on a statistically meaningful number of frames per run."""
    return replace(granada2003(mtu=1500), seed=seed)


def _pair(protocol: str):
    return clic_pair() if protocol == "clic" else tcp_pair()


def _sum_counters(cluster: Cluster, suffix: str) -> float:
    """Sum every registry counter whose name ends with ``suffix``."""
    return sum(
        inst.value
        for name, inst in cluster.metrics.items()
        if inst.kind == "counter" and name.endswith(suffix)
    )


def _fault_drops(cluster: Cluster) -> float:
    """Total frames the fault plan removed or damaged, from obs metrics."""
    return sum(
        _sum_counters(cluster, s)
        for s in (".loss_drops", ".burst_drops", ".outage_drops", ".corrupted")
    )


def _plan(model: str, rate: float) -> Optional[FaultPlan]:
    if rate == 0.0:
        return None
    if model == "uniform":
        return FaultPlan.uniform(rate)
    return FaultPlan.bursty(
        rate, mean_burst_frames=MEAN_BURST_FRAMES, loss_bad=LOSS_BAD
    )


def _cell(protocol: str, model: str, rate: float,
          nbytes: int, messages: int) -> Dict:
    """One grid cell, averaged over :data:`SEEDS`.

    The cell also folds every seed run's registry into one digest
    (exact histogram-bucket merges), which travels back to ``run()`` as
    plain JSON so the parent can aggregate fleet-wide percentiles —
    the per-shard half of the :meth:`MetricsRegistry.merge_from` fold.
    """
    goodputs: List[float] = []
    retx_overheads: List[float] = []
    fast_retx = 0.0
    drops = 0.0
    fold = MetricsRegistry()
    for seed in SEEDS:
        cluster = Cluster(_cfg(seed), protocols=(protocol,), faults=_plan(model, rate))
        res = stream(cluster, _pair(protocol), nbytes, messages=messages)
        goodputs.append(res.bandwidth_mbps)
        registered = _sum_counters(cluster, ".registered")
        retransmitted = _sum_counters(cluster, ".retransmitted")
        retx_overheads.append(retransmitted / registered if registered else 0.0)
        fast_retx += _sum_counters(cluster, ".fast_retransmits")
        drops += _fault_drops(cluster)
        fold.merge_from(cluster.metrics)

    # Enough repeats that the loss model actually intersects the pings
    # (a 1024 B exchange is only ~2 frames).
    lat_cluster = Cluster(_cfg(SEEDS[0]), protocols=(protocol,),
                          faults=_plan(model, rate))
    lat = pingpong(lat_cluster, _pair(protocol), 1024, repeats=20, warmup=2)
    fold.merge_from(lat_cluster.metrics)
    return {
        "protocol": protocol,
        "model": model,
        "rate": rate,
        "goodput_mbps": sum(goodputs) / len(goodputs),
        "goodput_per_seed": goodputs,
        "latency_us": lat.one_way_ns / 1000,
        "retx_overhead": sum(retx_overheads) / len(retx_overheads),
        "fast_retransmits": fast_retx,
        "fault_drops": drops,
        "digest": fold.digest(),
    }


def _outage_run(protocol: str, nbytes: int, messages: int) -> Dict:
    """Full link outage shorter than the retry budget: the stream must
    stall, back off, and complete with nothing lost.

    The outage opens at t=1 ms — mid-transfer for this stream length —
    and lasts 10 ms, so the sender is forced through RTO backoff while
    the link is dark and finishes the stream once it returns."""
    plan = FaultPlan.link_outage(1_000_000.0, 11_000_000.0, node=0, channel=0)
    cluster = Cluster(_cfg(SEEDS[0]), protocols=(protocol,), faults=plan)
    res = stream(cluster, _pair(protocol), nbytes, messages=messages)
    return {
        "protocol": protocol,
        "elapsed_ms": res.elapsed_ns / 1e6,
        "goodput_mbps": res.bandwidth_mbps,
        "delivered_bytes": res.nbytes_total,
        "retransmitted": _sum_counters(cluster, ".retransmitted"),
        "outage_drops": _sum_counters(cluster, ".outage_drops"),
    }


def _point_task(spec: Tuple) -> Dict:
    """One grid point from a pure-data spec (module-level: pool-safe)."""
    kind, args = spec[0], spec[1:]
    return _cell(*args) if kind == "cell" else _outage_run(*args)


#: adversarial-delivery scenarios (see :mod:`repro.faults`)
ADVERSARIAL_KINDS = ("reorder", "duplicate", "overload")


def adversarial_slo(kind: str, messages: int) -> SLOSpec:
    """The declared degraded-mode contract of one adversarial scenario.

    These specs replace the former hand-wired counter assertions: each
    scenario's expectations — full delivery, the degraded-mode machinery
    actually engaging, and (for the lossless overload fabric) a strict
    zero loss budget — are data a scorecard is produced from, so the
    same contract gates ``shape_checks``, renders in dashboards, and
    rides the run artifact.
    """
    common = (
        Objective("delivered", "summary.delivered", "floor", float(messages),
                  description="every message survives adversarial delivery"),
    )
    extra = {
        "reorder": (
            Objective("reorder-buffered", "degraded.reorder_buffered",
                      "floor", 1.0,
                      description="reordering exercised the out-of-order stash"),
        ),
        "duplicate": (
            Objective("dup-suppressed", "degraded.dup_suppressed",
                      "floor", 1.0,
                      description="duplication absorbed by receiver suppression"),
        ),
        "overload": (
            Objective("pause-engaged", "degraded.pause_events", "floor", 1.0,
                      description="overload engaged PAUSE backpressure"),
            Objective("loss-budget", "degraded.overrun_drops", "budget", 0.0,
                      description="the lossless fabric sheds nothing"),
        ),
    }[kind]
    return SLOSpec(name=f"adversarial.{kind}",
                   description=f"degraded-mode contract of the {kind} scenario",
                   objectives=common + extra)


def _adversarial_setup(kind: str) -> Tuple[FaultPlan, str, int]:
    """(fault plan, switch backpressure mode, switch queue frames) for one
    adversarial-delivery scenario.

    ``reorder``/``duplicate`` stress the receiver's reassembly and
    duplicate suppression over a normal drop-mode switch.  ``overload``
    collapses the *receiver's downlink* bandwidth 4x mid-transfer (the
    ingress keeps arriving at full rate, so the switch egress queue —
    shrunk to 8 frames — backs up) behind a PAUSE-mode (lossless)
    fabric: senders are stalled instead of frames shed — graceful
    degradation, not loss.
    """
    from ..faults import CongestionWindow, LinkFaultSpec, OutageWindow

    if kind == "reorder":
        return FaultPlan.reordering(0.25, max_delay_ns=100_000.0), "drop", 512
    if kind == "duplicate":
        return FaultPlan.duplication(0.2, max_copies=2), "drop", 512
    spike = CongestionWindow(
        window=OutageWindow(200_000.0, 4_200_000.0),
        bandwidth_factor=4.0,
        extra_latency_ns=50_000.0,
    )
    # ``stream`` sends node 0 -> node 1, so (1, 0, "down") is the switch
    # egress feeding the receiver — the only link the spike covers.
    plan = FaultPlan(links={(1, 0, "down"): LinkFaultSpec(congestion=(spike,))})
    return plan, "pause", 8


def _adversarial_run(kind: str, nbytes: int, messages: int) -> Dict:
    """One journey-traced CLIC stream under an adversarial-delivery fault.

    Returns tail latency (p50/p99/p99.9 over per-message journeys) plus
    the degraded-mode accounting: duplicates suppressed, frames parked in
    the reorder stash, overrun drops, and PAUSE backpressure time.  Runs
    serially (one cluster, one seed) so ``--jobs N`` artifacts stay
    byte-identical.

    An in-sim :class:`~repro.obs.HealthWatchdog` watches the run on a
    probe-less sampler cadence — delivery stalls, RTO storms, and pause
    storms are flagged as structured events in simulated time.  The
    watchdog is a pure observer: it registers no instruments and only
    reads counters through non-creating accessors, so the simulated
    metrics are bit-identical with it on or off.
    """
    from ..obs import JourneyProbe, JourneyRecorder, journey_latency_summary

    plan, backpressure, queue_frames = _adversarial_setup(kind)
    cfg = replace(_cfg(SEEDS[0]), switch_backpressure=backpressure)
    cluster = Cluster(cfg, protocols=("clic",), faults=plan)
    cluster.switch.queue_frames = queue_frames
    for port in cluster.switch.ports:
        port.queue.capacity = queue_frames
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    sampler = TimeSeriesSampler(cluster.env, interval_ns=50_000.0)
    watchdog = HealthWatchdog(cluster.env).attach(sampler)
    watchdog.watch_progress(
        "delivery", lambda: _sum_counters(cluster, ".pkts_rx"),
        stall_ticks=100)          # 5 ms of silence at the 50 µs cadence
    watchdog.watch_rate(
        "rto-storm", lambda: _sum_counters(cluster, ".timeouts"),
        threshold=8.0, window_ticks=20)
    watchdog.watch_rate(
        "pause-storm", lambda: cluster.metrics.value("switch.pause_time_ns"),
        threshold=100_000.0, window_ticks=20)  # >10% pause duty per 1 ms
    sampler.start()
    try:
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        sampler.stop()
        probe.uninstall()
    switch = cluster.switch.counters
    out = {
        "kind": kind,
        "backpressure": backpressure,
        "goodput_mbps": res.bandwidth_mbps,
        "summary": journey_latency_summary(recorder.as_dicts()),
        "degraded": {
            "dup_suppressed": _sum_counters(cluster, ".duplicates"),
            "reorder_buffered": _sum_counters(cluster, ".stashed"),
            "overrun_drops": (
                _sum_counters(cluster, ".stash_overflow_drops")
                + _sum_counters(cluster, ".rx_drops")
                + switch.get("drops")
            ),
            "pause_events": switch.get("pause_events"),
            "pause_time_ns": switch.get("pause_time_ns"),
        },
        "health": watchdog.to_dicts(),
        "health_summary": watchdog.summary(),
    }
    out["slo"] = evaluate(adversarial_slo(kind, messages), out)
    return out


def _tail_latency(rate: float, nbytes: int, messages: int) -> Dict:
    """Journey-traced CLIC stream under burst loss: the per-message tail.

    This is the ROADMAP item-3 instrument: instead of one averaged
    goodput number, every message's journey is captured, so the p99 /
    p99.9 latency is *attributed* — which hop dominated each outlier and
    whether loss/retransmission drove it there.  Runs serially (one
    cluster, one seed) so ``--jobs N`` artifacts stay byte-identical.
    """
    from ..obs import (JourneyProbe, JourneyRecorder, explain_outliers,
                       journey_latency_summary)

    cluster = Cluster(_cfg(SEEDS[0]), protocols=("clic",),
                      faults=_plan("burst", rate))
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    try:
        stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        probe.uninstall()
    journeys = recorder.as_dicts()
    return {
        "rate": rate,
        "summary": journey_latency_summary(journeys),
        "outliers": explain_outliers(journeys, top=3),
    }


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report.

    Every grid cell and outage run is an independent simulation, so the
    whole sweep fans out over ``jobs`` worker processes (results land in
    grid order — byte-identical to a serial run)."""
    rates = [0.0, 0.02, 0.05] if quick else [0.0, 0.01, 0.02, 0.05]
    nbytes, messages = (16_384, 48) if quick else (16_384, 96)

    specs: List[Tuple] = []
    for protocol in ("clic", "tcp"):
        for rate in rates:
            specs.append(("cell", protocol, "uniform", rate, nbytes, messages))
        for rate in rates:
            if rate > 0.0:
                specs.append(("cell", protocol, "burst", rate, nbytes, messages))
    outage_protocols = ("clic", "tcp")
    for protocol in outage_protocols:
        specs.append(("outage", protocol, nbytes, 24))

    points = run_tasks(_point_task, specs, jobs=jobs)
    cells = points[: -len(outage_protocols)]
    outages = dict(zip(outage_protocols, points[-len(outage_protocols):]))
    tail = _tail_latency(rates[1], nbytes, messages)
    adversarial = {
        kind: _adversarial_run(kind, nbytes, messages)
        for kind in ADVERSARIAL_KINDS
    }

    # Fold every cell's digest (submission order — identical at any
    # --jobs value) into one fleet registry: bucket merges are exact, so
    # these are the *true* global percentiles over every seed of every
    # cell, not an average of per-cell percentiles.
    fleet_reg = MetricsRegistry()
    for c in cells:
        fleet_reg.merge_from(c["digest"])
    syscall = Histogram("kernel.syscall_ns")
    for name, inst in fleet_reg.items():
        if inst.kind == "histogram" and name.endswith("kernel.syscall_ns"):
            syscall.merge(inst)
    fleet = {
        "cells": len(cells),
        "seeds_per_cell": len(SEEDS),
        "syscall_ns": syscall.as_dict(),
        "histograms": {
            name: inst.as_dict()
            for name, inst in fleet_reg.items() if inst.kind == "histogram"
        },
    }

    rows = [
        (c["protocol"].upper(), c["model"], f"{c['rate']:.2f}",
         round(c["goodput_mbps"], 1), round(c["latency_us"], 1),
         f"{c['retx_overhead'] * 100:.1f}%", int(c["fault_drops"]))
        for c in cells
    ]
    for p, o in outages.items():
        rows.append((p.upper(), "outage(10ms)", "-", round(o["goodput_mbps"], 1),
                     "-", "-", int(o["outage_drops"])))
    report = format_table(
        ["proto", "fault model", "loss", "goodput (Mb/s)", "1024B lat (us)",
         "retx overhead", "frames dropped"],
        rows,
        title="TXT-RESIL: CLIC vs TCP under loss, burst loss, and link outage",
    )
    s = tail["summary"]
    report += (
        f"\n\nCLIC message-latency tail under burst loss @ {tail['rate']:.2f} "
        f"(journey-traced): p50 {s['p50_us']:.0f} us, p99 {s['p99_us']:.0f} us, "
        f"p99.9 {s['p999_us']:.0f} us over {s['delivered']} messages "
        f"({s['retransmitted']} retransmitted); slowest dominated by "
        + ", ".join(f"{o['dominant_hop']} ({o['latency_us']:.0f} us, "
                    f"{o['retransmits']} retx)" for o in tail["outliers"])
    )
    adv_rows = [
        (a["kind"], a["backpressure"], round(a["goodput_mbps"], 1),
         round(a["summary"]["p50_us"], 1), round(a["summary"]["p99_us"], 1),
         round(a["summary"]["p999_us"], 1),
         int(a["degraded"]["dup_suppressed"]),
         int(a["degraded"]["reorder_buffered"]),
         int(a["degraded"]["overrun_drops"]),
         round(a["degraded"]["pause_time_ns"] / 1e6, 2))
        for a in adversarial.values()
    ]
    report += "\n\n" + format_table(
        ["fault", "backpressure", "goodput (Mb/s)", "p50 (us)", "p99 (us)",
         "p99.9 (us)", "dups suppressed", "reorder buffered", "overrun drops",
         "pause (ms)"],
        adv_rows,
        title="CLIC under adversarial delivery (journey-traced, degraded-mode accounting)",
    )
    slo_bits = []
    for kind, a in adversarial.items():
        verdict = "PASS" if a["slo"]["ok"] else (
            "FAIL " + ",".join(a["slo"]["violations"]))
        flags = [e["rule"] for e in a["health"] if e["kind"] != "recovered"]
        slo_bits.append(f"{kind}: SLO {verdict}"
                        + (f", watchdog flagged {'+'.join(flags)}" if flags else ""))
    sc = fleet["syscall_ns"]
    report += (
        "\n\nAdversarial SLO scorecards — " + "; ".join(slo_bits)
        + f"\nFleet-wide syscall tails (exact digest merge over "
        f"{fleet['cells']} cells x {fleet['seeds_per_cell']} seeds, "
        f"{sc['count']} samples): p50 {sc['p50'] / 1e3:.1f} us, "
        f"p99 {sc['p99'] / 1e3:.1f} us, p99.9 {sc['p999'] / 1e3:.1f} us"
    )
    result = {
        "id": EXPERIMENT_ID,
        "rates": rates,
        "cells": cells,
        "outages": outages,
        "tail_latency": tail,
        "adversarial": adversarial,
        "fleet": fleet,
        "report": report,
    }
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the qualitative resilience claims on the measured data."""
    cells = result["cells"]

    def series(protocol: str, model: str) -> List[Tuple[float, Dict]]:
        return sorted(
            ((c["rate"], c) for c in cells
             if c["protocol"] == protocol and c["model"] == model),
            key=lambda rc: rc[0],
        )

    for protocol in ("clic", "tcp"):
        uni = series(protocol, "uniform")
        for (r0, a), (r1, b) in zip(uni, uni[1:]):
            check(
                b["goodput_mbps"] <= a["goodput_mbps"] * 1.02,
                f"{protocol} goodput degrades monotonically with uniform loss",
                f"{a['goodput_mbps']:.1f} @ {r0} -> {b['goodput_mbps']:.1f} @ {r1}",
            )
        for rate, burst_cell in series(protocol, "burst"):
            uni_cell = next(c for _, c in uni if c["rate"] == rate)
            check(
                burst_cell["goodput_mbps"] <= uni_cell["goodput_mbps"] * 1.1,
                f"{protocol}: burst loss at the same average rate hurts at "
                "least as much as uniform loss",
                f"@{rate}: burst {burst_cell['goodput_mbps']:.1f} vs "
                f"uniform {uni_cell['goodput_mbps']:.1f} Mb/s",
            )
        for c in cells:
            if c["protocol"] == protocol and c["rate"] > 0.0:
                check(c["fault_drops"] > 0,
                      f"{protocol}: injected faults show up in the obs metrics",
                      f"{c['model']} @ {c['rate']}: {c['fault_drops']} drops")
                check(c["retx_overhead"] > 0,
                      f"{protocol}: loss costs retransmissions",
                      f"{c['model']} @ {c['rate']}: {c['retx_overhead']:.3f}")
        outage = result["outages"][protocol]
        check(outage["outage_drops"] > 0,
              f"{protocol}: the outage actually dropped frames",
              str(outage["outage_drops"]))
        check(outage["retransmitted"] > 0,
              f"{protocol}: the outage was survived by retransmission",
              str(outage["retransmitted"]))

    tail = result.get("tail_latency")
    if tail is not None:
        s = tail["summary"]
        check(s["delivered"] == s["messages"],
              "tail-latency run: every message's journey completed",
              f"{s['delivered']}/{s['messages']}")
        check(s["p50_us"] <= s["p99_us"] <= s["p999_us"],
              "tail-latency percentiles are ordered p50 <= p99 <= p99.9",
              f"{s['p50_us']:.0f} / {s['p99_us']:.0f} / {s['p999_us']:.0f}")
        check(s["retransmitted"] > 0,
              "burst loss produced at least one retransmit-genealogy child",
              str(s["retransmitted"]))
        for o in tail["outliers"]:
            check(bool(o["dominant_hop"]),
                  "every explained outlier names a dominant hop",
                  str(o))

    for kind, a in result.get("adversarial", {}).items():
        s = a["summary"]
        check(s["p50_us"] <= s["p99_us"] <= s["p999_us"],
              f"{kind}: tail percentiles are ordered p50 <= p99 <= p99.9",
              f"{s['p50_us']:.0f} / {s['p99_us']:.0f} / {s['p999_us']:.0f}")
        # the degraded-mode expectations are the *declared* SLO spec:
        # full delivery plus the per-scenario machinery objectives
        card = a.get("slo") or evaluate(
            adversarial_slo(kind, int(s["messages"])), a)
        check(card["ok"],
              f"{kind}: declared SLO {card['slo']!r} met",
              ", ".join(card["violations"]) or "all objectives ok")
        if kind == "overload":
            storms = [e for e in a.get("health", ())
                      if e["rule"] == "pause-storm" and e["kind"] == "storm"]
            check(bool(storms),
                  "overload: the in-sim watchdog flagged the pause storm",
                  str(a.get("health_summary")))


if __name__ == "__main__":
    print(run()["report"])
