"""EXT-COLL — MPI collective scaling over CLIC vs TCP (extension).

Not a figure in this paper, but the evaluation its §5 points at: "An
efficient LAM-MPI implementation on top of CLIC has also been developed
[12].  The results obtained show an improvement in the communication
performance" — we reproduce that claim for the collectives parallel
codes actually block on.

Measures barrier / bcast / allreduce wall time at 2, 4 and 8 nodes over
both transports.  Shape checks:

* every collective is faster over CLIC than over TCP at every size;
* barrier time grows sub-linearly with node count (dissemination is
  O(log P) rounds);
* an 8-node CLIC barrier still completes in O(100 us) — cheap enough
  for fine-grained codes, the paper's motivating workload class.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table
from ..config import granada2003
from ..workloads.mpibench import collective_time
from .common import check

EXPERIMENT_ID = "EXT-COLL"

NODE_COUNTS = (2, 4, 8)
OPS = ("barrier", "bcast", "allreduce")
PAYLOAD = 8_192


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    times: Dict[str, Dict[str, float]] = {}
    for op in OPS:
        times[op] = {}
        for nodes in NODE_COUNTS:
            for transport in ("clic", "tcp"):
                cfg = granada2003(num_nodes=nodes)
                times[op][f"{transport}/{nodes}"] = collective_time(
                    cfg, transport, op, PAYLOAD, repeats=2
                )
    rows = []
    for op in OPS:
        for nodes in NODE_COUNTS:
            clic_us = times[op][f"clic/{nodes}"] / 1000
            tcp_us = times[op][f"tcp/{nodes}"] / 1000
            rows.append((op, nodes, round(clic_us, 1), round(tcp_us, 1),
                         round(tcp_us / clic_us, 2)))
    report = format_table(
        ["collective", "nodes", "CLIC (us)", "TCP (us)", "TCP/CLIC"],
        rows,
        title=f"EXT-COLL: collective wall time ({PAYLOAD} B payload)",
    )
    result = {"id": EXPERIMENT_ID, "times": times, "report": report}
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    times = result["times"]
    for op in OPS:
        for nodes in NODE_COUNTS:
            clic = times[op][f"clic/{nodes}"]
            tcp = times[op][f"tcp/{nodes}"]
            check(clic < tcp,
                  "collectives over CLIC beat collectives over TCP",
                  f"{op}@{nodes}: {clic/1000:.1f} vs {tcp/1000:.1f} us")
    # Dissemination barrier: doubling nodes adds ~one round, not ~double.
    b2 = times["barrier"]["clic/2"]
    b8 = times["barrier"]["clic/8"]
    check(b8 < b2 * 3.5,
          "barrier scales sub-linearly (log2 P rounds)",
          f"2 nodes {b2/1000:.1f} us vs 8 nodes {b8/1000:.1f} us")
    check(b8 < 1_000_000,
          "an 8-node CLIC barrier completes within O(100 us)",
          f"{b8/1000:.1f} us")


if __name__ == "__main__":
    print(run()["report"])
