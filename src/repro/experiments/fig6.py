"""FIG6 — CLIC, MPI-CLIC, MPI/TCP and PVM/TCP bandwidths (paper Figure 6).

The middleware comparison: the same ping-pong at each size over

* raw CLIC,
* MPI mapped onto CLIC (the paper's LAM-on-CLIC),
* MPI mapped onto TCP/IP,
* PVM over TCP/IP (pack copies + daemon routing).

Paper claims (shape checks):

* CLIC and MPI-CLIC curves sit above MPI/TCP and PVM/TCP everywhere;
* MPI-CLIC tracks raw CLIC closely (thin middleware);
* for long messages MPI-CLIC >= 1.5 x MPI/TCP (the paper's worst case);
* PVM is the slowest contender.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis import format_series_table, logx_plot
from ..cluster import Cluster
from ..config import MTU_JUMBO, granada2003
from ..mpi import build_world
from ..pvm import pvm_pair
from ..parallel import run_tasks
from ..workloads import SweepSeries, clic_pair, pingpong
from ..workloads.pingpong import PingPongResult
from .common import check, full_sizes, quick_sizes, sweep_pingpong

EXPERIMENT_ID = "FIG6"


def mpi_pingpong(transport: str, nbytes: int, repeats: int = 1, warmup: int = 1) -> PingPongResult:
    """Ping-pong between ranks 0 and 1 through the MPI layer."""
    cluster = Cluster(granada2003(mtu=MTU_JUMBO))
    world = build_world(cluster, transport)
    n = max(nbytes, 1) if transport == "tcp" else nbytes

    def program(ctx):
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            for _ in range(warmup):
                yield from ctx.send(peer, n)
                yield from ctx.recv(n, source=peer)
            t0 = ctx.proc.env.now
            for _ in range(repeats):
                yield from ctx.send(peer, n)
                yield from ctx.recv(n, source=peer)
            return (ctx.proc.env.now - t0) / repeats
        for _ in range(warmup + repeats):
            yield from ctx.recv(n, source=peer)
            yield from ctx.send(peer, n)
        return None

    rtt = world.run(program)[0]
    return PingPongResult(nbytes=nbytes, repeats=repeats, rtt_ns=rtt)


def _mpi_point(spec):
    """One MPI sweep point from a pure-data spec (pool-safe)."""
    transport, nbytes = spec
    return mpi_pingpong(transport, nbytes)


def mpi_sweep(label: str, transport: str, sizes, jobs: int = 1) -> SweepSeries:
    """Bandwidth curve through the MPI layer on the given transport."""
    specs = [(transport, nbytes) for nbytes in sizes]
    return SweepSeries(label, run_tasks(_mpi_point, specs, jobs=jobs))


def _pvm_point(nbytes: int) -> PingPongResult:
    """One PVM sweep point (pool-safe)."""
    cluster = Cluster(granada2003(mtu=MTU_JUMBO))
    return pingpong(cluster, pvm_pair(cluster.cfg.pvm), nbytes, repeats=1, warmup=1)


def pvm_sweep(label: str, sizes, jobs: int = 1) -> SweepSeries:
    """Bandwidth curve through the PVM layer (over TCP)."""
    return SweepSeries(label, run_tasks(_pvm_point, list(sizes), jobs=jobs))


def run(quick: bool = True, jobs: int = 1) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    sizes = quick_sizes() if quick else full_sizes()
    series = [
        sweep_pingpong("CLIC", lambda: granada2003(mtu=MTU_JUMBO), clic_pair, sizes, jobs=jobs),
        mpi_sweep("MPI-CLIC", "clic", sizes, jobs=jobs),
        mpi_sweep("MPI/TCP", "tcp", sizes, jobs=jobs),
        pvm_sweep("PVM/TCP", sizes, jobs=jobs),
    ]
    report = "\n\n".join(
        [
            format_series_table(series, title="FIG6: middleware bandwidths (ping-pong, Mb/s)"),
            logx_plot(series, title="FIG6: CLIC / MPI-CLIC / MPI-TCP / PVM-TCP"),
        ]
    )
    result = {
        "id": EXPERIMENT_ID,
        "sizes": sizes,
        "curves": {s.label: s.mbps for s in series},
        "asymptotes": {s.label: s.asymptote() for s in series},
        "report": report,
    }
    shape_checks(result, series)
    return result


def shape_checks(result: Dict, series: List) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    by = {s.label: s for s in series}
    clic, mpi_clic = by["CLIC"], by["MPI-CLIC"]
    mpi_tcp, pvm = by["MPI/TCP"], by["PVM/TCP"]

    for n, a, b in zip(clic.sizes, mpi_clic.mbps, mpi_tcp.mbps):
        check(a > b, "MPI-CLIC beats MPI/TCP at every size",
              f"{n} B: {a:.1f} vs {b:.1f}")
    for n, a, b in zip(clic.sizes, mpi_tcp.mbps, pvm.mbps):
        check(a >= b, "PVM is the slowest contender",
              f"{n} B: MPI/TCP {a:.1f} vs PVM {b:.1f}")
    ratio = mpi_clic.asymptote() / mpi_tcp.asymptote()
    check(ratio >= 1.5,
          "long messages: MPI-CLIC >= 1.5x MPI/TCP (the paper's worst case)",
          f"ratio {ratio:.2f}")
    tracking = mpi_clic.asymptote() / clic.asymptote()
    check(tracking > 0.85, "MPI adds little on top of CLIC for long messages",
          f"MPI-CLIC/CLIC = {tracking:.2f}")


if __name__ == "__main__":
    print(run(quick=True)["report"])
