"""Experiment registry and CLI.

``python -m repro.experiments <id> [--full]`` runs one experiment and
prints its report; ``all`` (or several ids) runs a battery.  With
``--json PATH`` the result dicts (minus the printable report) are also
written as schema-tagged :class:`~repro.obs.RunArtifact` JSON — one
artifact for a single experiment, a ``repro.run-batch/1`` document for
a battery.

``--jobs N`` fans the work out over N worker processes: a battery
parallelizes across experiments, a single experiment across its sweep
points (when its runner takes ``jobs``).  Results are assembled in
submission order, so the artifacts are byte-identical to a serial run.
"""

from __future__ import annotations

import inspect
import json
from typing import Callable, Dict

from ..obs import RunArtifact, aggregate_profiles, jsonable
from ..obs.export import BATCH_SCHEMA
from ..parallel import add_jobs_argument, resolve_jobs, run_tasks, run_tasks_profiled
from ..sim import profiled

from . import (
    ablations,
    breakdown,
    collectives_scaling,
    comparison,
    fe_baseline,
    fig4,
    fig5,
    fig6,
    fig7,
    headline,
    interrupts,
    nic_collectives,
    resilience,
)

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "headline": headline.run,
    "comparison": comparison.run,
    "interrupts": interrupts.run,
    "ablations": ablations.run,
    "breakdown": breakdown.run,
    "collectives": collectives_scaling.run,
    "collectives-scaling": nic_collectives.run,
    "fe2001": fe_baseline.run,
    "resilience": resilience.run,
}


def run_experiment(name: str, quick: bool = True, jobs: int = 1) -> Dict:
    """Run one registered experiment; returns its result dict.

    ``jobs`` is forwarded to runners that accept it (sweep-style
    experiments parallelize their points) and ignored otherwise.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)}") from None
    if jobs != 1 and "jobs" in inspect.signature(runner).parameters:
        return runner(quick=quick, jobs=jobs)
    return runner(quick=quick)


def _battery_task(spec) -> Dict:
    """One battery entry from a pure-data spec (module-level: pool-safe)."""
    name, quick = spec
    return run_experiment(name, quick=quick)


def main(argv=None) -> int:
    """CLI entry: run the named experiment(s) and print reports."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument(
        "experiment", nargs="+", choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id(s); 'all' expands to the whole battery",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's full 10^1..10^7 size grid (slower)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the result dict(s) (minus report) as RunArtifact JSON",
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    names = list(dict.fromkeys(
        name
        for entry in args.experiment
        for name in (sorted(EXPERIMENTS) if entry == "all" else [entry])
    ))
    jobs = resolve_jobs(args.jobs)
    quick = not args.full

    if len(names) == 1:
        # Single experiment: parallelism (if any) lives inside its sweep.
        if args.json:
            # Profile every environment the experiment builds so the
            # artifact records simulator cost alongside simulated results.
            with profiled() as profilers:
                result = run_experiment(names[0], quick=quick, jobs=jobs)
            pairs = [(result, aggregate_profiles(profilers))]
        else:
            pairs = [(run_experiment(names[0], quick=quick, jobs=jobs), {})]
    else:
        # Battery: fan out across experiments, one worker each.
        specs = [(name, quick) for name in names]
        if args.json:
            pairs = run_tasks_profiled(_battery_task, specs, jobs=jobs)
        else:
            pairs = [(r, {}) for r in run_tasks(_battery_task, specs, jobs=jobs)]

    artifacts = []
    for name, (result, profile) in zip(names, pairs):
        print(result["report"])
        print()
        if args.json:
            artifacts.append(RunArtifact(
                experiment=name,
                quick=quick,
                result={k: jsonable(v) for k, v in result.items() if k != "report"},
                profile=profile,
            ))
    if args.json:
        if len(artifacts) == 1:
            artifacts[0].write(args.json)
        else:
            batch = {"schema": BATCH_SCHEMA, "runs": [a.to_dict() for a in artifacts]}
            with open(args.json, "w") as fh:
                json.dump(batch, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(f"wrote {args.json}")
    return 0
