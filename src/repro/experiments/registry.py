"""Experiment registry and CLI.

``python -m repro.experiments <id> [--full]`` runs one experiment and
prints its report; ``all`` runs the whole battery (the contents of
EXPERIMENTS.md).  With ``--json PATH`` the result dicts (minus the
printable report) are also written as schema-tagged
:class:`~repro.obs.RunArtifact` JSON — one artifact for a single
experiment, a ``repro.run-batch/1`` document for ``all``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from ..obs import RunArtifact, aggregate_profiles, jsonable
from ..obs.export import BATCH_SCHEMA
from ..sim import profiled

from . import (
    ablations,
    breakdown,
    collectives_scaling,
    comparison,
    fe_baseline,
    fig4,
    fig5,
    fig6,
    fig7,
    headline,
    interrupts,
    resilience,
)

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "headline": headline.run,
    "comparison": comparison.run,
    "interrupts": interrupts.run,
    "ablations": ablations.run,
    "breakdown": breakdown.run,
    "collectives": collectives_scaling.run,
    "fe2001": fe_baseline.run,
    "resilience": resilience.run,
}


def run_experiment(name: str, quick: bool = True) -> Dict:
    """Run one registered experiment; returns its result dict."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)}") from None
    return runner(quick=quick)


def main(argv=None) -> int:
    """CLI entry: run the named experiment(s) and print reports."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's full 10^1..10^7 size grid (slower)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the result dict(s) (minus report) as RunArtifact JSON",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    artifacts = []
    for name in names:
        if args.json:
            # Profile every environment the experiment builds so the
            # artifact records simulator cost alongside simulated results.
            with profiled() as profilers:
                result = run_experiment(name, quick=not args.full)
            profile = aggregate_profiles(profilers)
        else:
            result = run_experiment(name, quick=not args.full)
            profile = {}
        print(result["report"])
        print()
        if args.json:
            artifacts.append(RunArtifact(
                experiment=name,
                quick=not args.full,
                result={k: jsonable(v) for k, v in result.items() if k != "report"},
                profile=profile,
            ))
    if args.json:
        if len(artifacts) == 1:
            artifacts[0].write(args.json)
        else:
            batch = {"schema": BATCH_SCHEMA, "runs": [a.to_dict() for a in artifacts]}
            with open(args.json, "w") as fh:
                json.dump(batch, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(f"wrote {args.json}")
    return 0
