"""FIG7 — per-stage timing of a 1400-byte packet (paper Figure 7).

Variant (a): the stock path — driver interrupt moves the frame into
system memory with the CPU captive (the dominant ~15 µs stage at
1400 B), then bottom halves hand it to CLIC_MODULE (~2 µs), which copies
into user memory.

Variant (b): the proposed improvement of Figure 8(b) — the driver calls
CLIC_MODULE directly from the interrupt handler, eliminating the
sk_buff staging and bottom-half hop; the paper projects the interrupt
path dropping from ~20 µs to ~5 µs.

Shape checks:

* in (a), the receiver's driver-interrupt stage is the single largest
  pipeline stage;
* the sender stage is a few microseconds and tiny by comparison;
* (b) cuts the receiver's post-DMA software path by >= 2x and the
  end-to-end packet time measurably.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis import (
    PacketTimeline,
    Stage,
    extract_packet_timeline_from_spans,
    format_table,
)
from ..cluster import Cluster
from ..config import granada2003
from ..protocols.clic import ClicEndpoint

EXPERIMENT_ID = "FIG7"

PACKET_BYTES = 1400


def capture(direct_rx: bool = False) -> Tuple[Cluster, int, PacketTimeline, float]:
    """Run the single-packet exchange and keep the instrumented cluster.

    Returns ``(cluster, packet_id, timeline, done_ns)`` — the cluster
    (with its trace, tracer and metrics still attached), the data
    packet's id, its extracted Figure-7 timeline, and the simulated time
    the receiver completed.  Used by :func:`run` and by the
    ``python -m repro.trace`` exporter.
    """
    cfg = granada2003(trace=True, profile=True)
    if direct_rx:
        cfg = cfg.with_node(cfg.node.with_direct_rx(True))
    cluster = Cluster(cfg)
    n0, n1 = cluster.nodes
    p0, p1 = n0.spawn(), n1.spawn()
    ep0, ep1 = ClicEndpoint(p0, 4), ClicEndpoint(p1, 4)
    outcome = {}

    def sender(proc):
        yield from ep0.send(1, PACKET_BYTES)

    def receiver(proc):
        msg = yield from ep1.recv()
        outcome["done"] = proc.env.now

    p0.run(sender)
    done = p1.run(receiver)
    cluster.env.run(done)

    # The single data packet is the first CLIC DATA packet traced.
    pkt_id = cluster.trace.first("driver_tx").detail["pkt"]
    if direct_rx:
        timeline = _direct_timeline(cluster, pkt_id)
    else:
        timeline = extract_packet_timeline_from_spans(
            cluster.tracer, pkt_id, "node0", "node1"
        )
    return cluster, pkt_id, timeline, outcome["done"]


def _direct_timeline(cluster: Cluster, pkt_id: int) -> PacketTimeline:
    """Reduced timeline for Figure 8(b): no bottom-half hop to anchor on,
    so the post-DMA stage runs straight from driver_rx to the wake."""
    trace = cluster.trace
    sys_enter = trace.first("syscall_enter", label="clic_send")
    drv_tx = trace.first("driver_tx", pkt=pkt_id)
    irq_begin = trace.first("irq_begin", source_prefix="node1")
    drv_rx = trace.first("driver_rx", pkt=pkt_id)
    wake = trace.first("wake", source_prefix="node1")
    missing = [name for name, rec in [
        ("syscall_enter", sys_enter), ("driver_tx", drv_tx),
        ("irq_begin", irq_begin), ("driver_rx", drv_rx), ("wake", wake),
    ] if rec is None]
    if missing:
        raise ValueError(f"trace incomplete for packet {pkt_id}: missing {missing}")
    return PacketTimeline(packet_id=pkt_id, stages=[
        Stage("sender: syscall + CLIC_MODULE + driver", sys_enter.time, drv_tx.time),
        Stage("NIC DMA + flight", drv_tx.time, irq_begin.time),
        Stage("receiver: driver interrupt (direct DMA)", irq_begin.time, drv_rx.time),
        Stage("CLIC_MODULE direct call + copy + wake", drv_rx.time, wake.time),
    ])


def _measure(direct_rx: bool) -> Dict:
    cluster, pkt_id, timeline, done_ns = capture(direct_rx)
    stages = [(s.name, s.duration_us) for s in timeline.stages]
    if direct_rx:
        return {"stages": stages, "total_us": done_ns / 1000,
                "sw_rx_us": stages[3][1], "driver_int_us": stages[2][1]}
    sw_rx = timeline.stage("bottom halves -> CLIC_MODULE").duration_us + (
        timeline.stages[4].duration_us if len(timeline.stages) > 4 else 0.0
    )
    return {
        "stages": stages,
        "total_us": timeline.total_us,
        "sw_rx_us": sw_rx,
        "driver_int_us": timeline.stage(
            "receiver: driver interrupt (NIC->system copy)"
        ).duration_us,
    }


def run(quick: bool = True) -> Dict:
    """Run the experiment; returns results incl. a printable report."""
    variant_a = _measure(direct_rx=False)
    variant_b = _measure(direct_rx=True)
    rows_a = [(name, round(us, 2)) for name, us in variant_a["stages"]]
    rows_b = [(name, round(us, 2)) for name, us in variant_b["stages"]]
    report = "\n\n".join(
        [
            format_table(["stage", "us"], rows_a,
                         title=f"FIG7(a): 1400 B packet, stock path (total {variant_a['total_us']:.1f} us)"),
            format_table(["stage", "us"], rows_b,
                         title=f"FIG7(b): direct driver->CLIC_MODULE call (total {variant_b['total_us']:.1f} us)"),
        ]
    )
    result = {"id": EXPERIMENT_ID, "a": variant_a, "b": variant_b, "report": report}
    shape_checks(result)
    return result


def shape_checks(result: Dict) -> None:
    """Assert the paper's qualitative claims on the measured data."""
    from .common import check

    a, b = result["a"], result["b"]
    durations_a = {name: us for name, us in a["stages"]}
    # The paper's Figure 7 calls out the *processing* stages; wire flight
    # and the sender NIC's DMA are hardware pipeline, not host software.
    software = {k: v for k, v in durations_a.items() if k != "NIC DMA + flight"}
    slowest = max(software, key=software.get)
    check(
        "driver interrupt" in slowest,
        "the receiver's driver-interrupt stage dominates the host processing",
        f"slowest = {slowest} ({software[slowest]:.1f} us)",
    )
    check(
        10 <= software[slowest] <= 25,
        "driver-interrupt stage near the paper's ~15 us at 1400 B",
        f"{software[slowest]:.1f} us",
    )
    sender_us = durations_a["sender: syscall + CLIC_MODULE + driver"]
    check(2 <= sender_us <= 10, "sender stage is a few microseconds (paper ~0.7+4 us)",
          f"{sender_us:.1f} us")
    check(
        b["sw_rx_us"] * 2 <= a["sw_rx_us"],
        "the direct call removes most of the post-DMA receive software path "
        "(paper: ~20 us -> ~5 us interrupt path)",
        f"a: {a['sw_rx_us']:.1f} us, b: {b['sw_rx_us']:.1f} us",
    )
    check(b["total_us"] < a["total_us"],
          "direct dispatch lowers end-to-end packet time",
          f"{b['total_us']:.1f} vs {a['total_us']:.1f} us")


if __name__ == "__main__":
    print(run()["report"])
