"""Benchmark harness configuration.

Each figure/table of the paper has one benchmark that *regenerates* it:
the benchmark body runs the experiment (which includes its paper-shape
assertions) and prints the reproduced table/plot, so
``pytest benchmarks/ --benchmark-only -s`` re-creates the evaluation
section end to end.
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
