"""Micro-benchmarks of the simulator itself.

Not a paper figure: these keep the simulation engine's Python-level
performance honest (the experiments run hundreds of thousands of events;
a regression here makes the figure benches crawl).
"""

from repro.cluster import Cluster
from repro.config import granada2003
from repro.sim import Environment
from repro.workloads import clic_pair, pingpong


def test_event_loop_throughput(benchmark):
    """Raw engine: schedule/dispatch a chain of timeouts."""

    def chain():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(10)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(chain)
    assert result == 100_000


def test_timer_churn_throughput(benchmark):
    """Raw engine: the retransmission-timer pattern — arm a
    ``call_later`` handle, cancel it on the next step, re-arm.  This is
    the hot path the reliability and NIC layers sit on."""

    def churn():
        env = Environment()
        state = {"handle": None, "fired": 0}

        def fire():
            state["fired"] += 1

        def driver():
            for _ in range(10_000):
                if state["handle"] is not None:
                    state["handle"].cancel()
                state["handle"] = env.call_later(1_000, fire)
                yield env.timeout(10)

        env.process(driver())
        env.run()
        return state["fired"]

    fired = benchmark(churn)
    assert fired == 1


def test_clic_pingpong_simulation_speed(benchmark):
    """End-to-end: one 64 KB CLIC ping-pong per round."""

    def roundtrip():
        cluster = Cluster(granada2003())
        return pingpong(cluster, clic_pair(), 65_536, repeats=1, warmup=0).rtt_ns

    rtt = benchmark(roundtrip)
    assert rtt > 0
