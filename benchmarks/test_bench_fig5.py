"""Bench FIG5: CLIC vs TCP/IP at both MTUs (paper Figure 5)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_clic_vs_tcp(benchmark):
    result = run_once(benchmark, fig5.run, quick=True)
    print("\n" + result["report"])
    asym = result["asymptotes"]
    # The paper's headline ratio: CLIC ~2x TCP at TCP's best MTU.
    assert asym["CLIC 9000"] / asym["TCP 9000"] >= 1.7
    assert result["id"] == "FIG5"
