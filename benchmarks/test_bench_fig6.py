"""Bench FIG6: CLIC / MPI-CLIC / MPI-TCP / PVM-TCP (paper Figure 6)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_middleware_curves(benchmark):
    result = run_once(benchmark, fig6.run, quick=True)
    print("\n" + result["report"])
    asym = result["asymptotes"]
    assert asym["MPI-CLIC"] / asym["MPI/TCP"] >= 1.5  # paper's worst case
    assert asym["PVM/TCP"] <= asym["MPI/TCP"]
    assert result["id"] == "FIG6"
