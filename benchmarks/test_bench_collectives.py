"""Bench EXT-COLL: MPI collective scaling over CLIC vs TCP."""

from conftest import run_once

from repro.experiments import collectives_scaling


def test_collective_scaling(benchmark):
    result = run_once(benchmark, collectives_scaling.run, quick=True)
    print("\n" + result["report"])
    times = result["times"]
    # CLIC's advantage holds for the synchronization-heavy barrier.
    assert times["barrier"]["tcp/8"] > 2 * times["barrier"]["clic/8"]
