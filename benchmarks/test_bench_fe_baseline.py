"""Bench FE-2001: the Fast Ethernet baseline and the §2 bottleneck shift."""

from conftest import run_once

from repro.experiments import fe_baseline


def test_fast_ethernet_baseline(benchmark):
    result = run_once(benchmark, fe_baseline.run, quick=True)
    print("\n" + result["report"])
    cells = result["cells"]
    # The §2 story in two numbers: near-wire at FE, host-bound at GigE.
    assert cells["FE/CLIC"]["wire_fraction"] > 0.85
    assert cells["GigE/CLIC"]["wire_fraction"] < cells["FE/CLIC"]["wire_fraction"]
