"""Bench FIG7: per-stage timing of a 1400-byte packet (paper Figure 7)."""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_pipeline_timeline(benchmark):
    result = run_once(benchmark, fig7.run, quick=True)
    print("\n" + result["report"])
    stages_a = dict(result["a"]["stages"])
    # Paper Figure 7(a): the receiver's driver-interrupt stage ~15 us.
    drv = stages_a["receiver: driver interrupt (NIC->system copy)"]
    assert 10 <= drv <= 25
    # Figure 7(b): the improved interrupt path shrinks markedly.
    assert result["b"]["sw_rx_us"] * 2 <= result["a"]["sw_rx_us"]
    assert result["id"] == "FIG7"
