"""Bench ABL-*: ablations of DESIGN.md's called-out design choices."""

from conftest import run_once

from repro.experiments import ablations


def test_design_choice_ablations(benchmark):
    result = run_once(benchmark, ablations.run, quick=True)
    print("\n" + result["report"])
    # Coalescing trades lone-packet latency for efficiency (§2).
    assert result["coalescing"]["lat_off_us"] < result["coalescing"]["lat_on_us"]
    # Figure 8(b) direct dispatch saves latency.
    assert result["direct"]["lat_direct_us"] < result["direct"]["lat_stock_us"]
    # The declined fragmentation offload would have helped (paper §2/§5).
    assert result["fragmentation"]["bw_nic_frag"] > result["fragmentation"]["bw_sw_frag"]
