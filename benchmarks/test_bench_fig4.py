"""Bench FIG4: CLIC bandwidth for MTU x copy-mode (paper Figure 4)."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4_mtu_and_copy_curves(benchmark):
    result = run_once(benchmark, fig4.run, quick=True)
    print("\n" + result["report"])
    # Shape checks already ran inside run(); spot-check the asymptote
    # ordering the paper's Figure 4 displays.
    asym = result["asymptotes"]
    assert asym["st 9000/0-copy"] > asym["st 1500/0-copy"]
    assert result["id"] == "FIG4"
