"""Bench TXT-GAMMA: the §5 comparison against GAMMA (and VIA)."""

from conftest import run_once

from repro.experiments import comparison


def test_gamma_via_comparison(benchmark):
    result = run_once(benchmark, comparison.run, quick=True)
    print("\n" + result["report"])
    # Paper: GAMMA 32 us / 768-824 Mb/s vs CLIC 36 us / ~600 Mb/s.
    assert result["latency_us"]["GAMMA"] < result["latency_us"]["CLIC"]
    assert result["bandwidth"]["GAMMA"] > result["bandwidth"]["CLIC"]
    # ...and CLIC alone is reliable (the feature table of §5).
    assert result["survives_loss"] == {"CLIC": True, "GAMMA": False, "VIA": False}
