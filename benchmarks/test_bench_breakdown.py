"""Bench CPU-BRK: receiver CPU-cycle accounting, CLIC vs TCP (§2/§5)."""

from conftest import run_once

from repro.experiments import breakdown


def test_cpu_breakdown(benchmark):
    result = run_once(benchmark, breakdown.run, quick=True)
    print("\n" + result["report"])
    clic, tcp = result["clic"]["breakdown"], result["tcp"]["breakdown"]
    # The §2 claim: the TCP/IP stack's per-packet work devours the CPU.
    assert tcp["protocol"] > 3 * clic["protocol"]
