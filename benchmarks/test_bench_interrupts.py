"""Bench SEC2-INT: interrupt-rate / CPU-load analysis (paper §2)."""

from conftest import run_once

from repro.experiments import interrupts


def test_interrupt_rate_analysis(benchmark):
    result = run_once(benchmark, interrupts.run, quick=True)
    print("\n" + result["report"])
    cells = result["cells"]
    # Jumbo stretches the per-frame interrupt interval by ~6x (paper §2).
    ratio = cells["9000/False"]["interval_us"] / cells["1500/False"]["interval_us"]
    assert 3 <= ratio <= 9
