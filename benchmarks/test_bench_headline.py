"""Bench TXT-LAT / TXT-BW: the headline numbers of §4/§5."""

from conftest import run_once

from repro.experiments import headline


def test_headline_numbers(benchmark):
    result = run_once(benchmark, headline.run, quick=True)
    print("\n" + result["report"])
    # Paper: 36 us latency; 600 / 450 Mb/s asymptotes.
    assert 20 <= result["latency_us"] <= 55
    assert 450 <= result["bw_jumbo"] <= 750
    assert 350 <= result["bw_std"] <= 600
    # Paper: half-bandwidth at 4 KB (CLIC) vs 16 KB (TCP) — we check the
    # relative claim (CLIC saturates at a several-times-smaller size).
    assert result["tcp_half_bytes"] > 2.5 * result["clic_half_bytes"]
