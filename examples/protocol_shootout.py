"""Protocol shootout: every stack in the paper on one chart.

Measures bandwidth-vs-size curves for CLIC, TCP/IP, GAMMA and VIA, plus
0-byte latency for each, and prints the §5 trade-off table: the
OS-bypass designs buy speed with portability/reliability, CLIC keeps the
OS and loses only a little.

Run:  python examples/protocol_shootout.py
"""

from repro.analysis import format_table, logx_plot
from repro.cluster import Cluster
from repro.config import granada2003
from repro.workloads import (
    SweepSeries,
    clic_pair,
    gamma_pair,
    pingpong,
    tcp_pair,
    via_pair,
)

SIZES = [100, 1_000, 10_000, 100_000, 1_000_000]

STACKS = [
    ("CLIC", ("clic", "tcp"), clic_pair, "stock driver, reliable"),
    ("TCP/IP", ("clic", "tcp"), tcp_pair, "stock driver, reliable"),
    ("GAMMA", ("gamma",), gamma_pair, "patched driver, unreliable"),
    ("VIA", ("via",), via_pair, "user-level NIC, unreliable"),
]


def sweep(label, protocols, pair_factory) -> SweepSeries:
    series = SweepSeries(label)
    for nbytes in SIZES:
        cluster = Cluster(granada2003(), protocols=protocols)
        series.points.append(
            pingpong(cluster, pair_factory(), nbytes, repeats=1, warmup=1)
        )
    return series


def main() -> None:
    curves = []
    rows = []
    for label, protocols, pair_factory, notes in STACKS:
        series = sweep(label, protocols, pair_factory)
        curves.append(series)
        latency = pingpong(
            Cluster(granada2003(), protocols=protocols), pair_factory(), 0,
            repeats=2, warmup=1,
        )
        rows.append(
            (label, round(latency.one_way_ns / 1000, 1),
             round(series.asymptote(), 0), notes)
        )

    print(logx_plot(curves, title="bandwidth vs message size (ping-pong)"))
    print()
    print(format_table(
        ["stack", "0B latency (us)", "bw @1MB (Mb/s)", "trade-off"],
        rows,
        title="the Section 5 trade-off table",
    ))


if __name__ == "__main__":
    main()
