"""Remote writes and broadcast: CLIC's one-sided & multicast primitives.

A tiny in-situ "visualization" pattern (a master receives asynchronous
frame updates from workers without ever posting receives, then
broadcasts steering commands back over Ethernet multicast):

* workers ``remote_write`` their frames into the master's registered
  region — §3.1's asynchronous remote write, no receive call needed;
* the master broadcasts a steering packet to *all* workers in one
  Ethernet-level multicast frame (§5) instead of N unicasts.

Run:  python examples/remote_write_visualization.py
"""

from repro import ClicEndpoint, Cluster, granada2003

WORKERS = 3
FRAME_BYTES = 100_000
FRAMES_PER_WORKER = 3
STEER_BYTES = 256


def main() -> None:
    cluster = Cluster(granada2003(num_nodes=WORKERS + 1))
    master_node = cluster.nodes[0]
    master = master_node.spawn("viz-master")
    ep_master = ClicEndpoint(master, port=30)
    region = ep_master.register_region(64 * 1024 * 1024)
    ep_steer = ClicEndpoint(master, port=31)
    log = []

    def master_body(proc):
        frames = 0
        while frames < WORKERS * FRAMES_PER_WORKER:
            msg = yield from ep_master.wait_remote_write()
            frames += 1
            log.append(
                f"[{proc.env.now/1e6:7.2f} ms] frame {frames:2d}: "
                f"{msg.nbytes:,} B written by node {msg.src_node} "
                f"(region now {region.bytes_written:,} B)"
            )
        # One multicast steering update to every worker.
        yield from ep_steer.broadcast(STEER_BYTES, tag=99)
        log.append(f"[{proc.env.now/1e6:7.2f} ms] steering command broadcast")

    def worker_body(worker_id):
        def body(proc):
            ep = ClicEndpoint(proc, port=30)
            steer = ClicEndpoint(proc, port=31)
            for frame in range(FRAMES_PER_WORKER):
                yield from proc.compute(500_000)  # render the frame
                yield from ep.remote_write(0, FRAME_BYTES, tag=frame)
            cmd = yield from steer.recv(tag=99)
            log.append(
                f"[{proc.env.now/1e6:7.2f} ms] worker {worker_id} got "
                f"steering update ({cmd.nbytes} B)"
            )

        return body

    master.run(master_body)
    for i in range(1, WORKERS + 1):
        cluster.nodes[i].spawn(f"worker{i}").run(worker_body(i))
    cluster.run()

    print("\n".join(log))
    expected = WORKERS * FRAMES_PER_WORKER * FRAME_BYTES
    assert region.bytes_written == expected, (region.bytes_written, expected)
    print(f"\nregion holds {region.bytes_written:,} B from "
          f"{WORKERS * FRAMES_PER_WORKER} one-sided writes; "
          "no receive call was ever posted.")


if __name__ == "__main__":
    main()
