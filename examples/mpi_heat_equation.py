"""Domain example: 1-D heat diffusion with MPI halo exchange.

The workload the paper's introduction motivates: a fine-grained parallel
stencil code whose per-iteration halo exchanges make the communication
layer the bottleneck.  The same program runs over MPI-on-CLIC and
MPI-on-TCP; the CLIC run finishes markedly faster because each of the
many small halo messages pays CLIC's thin per-message cost instead of
the full TCP/IP stack.

Each rank owns a slab of the rod, exchanges one-cell halos with its
neighbours every iteration (8 bytes per boundary cell), computes the
stencil (modeled compute time proportional to local cells), and joins an
allreduce for the convergence check every few iterations.

Run:  python examples/mpi_heat_equation.py
"""

from repro import Cluster, granada2003
from repro.mpi import build_world

CELLS_PER_RANK = 20_000
BYTES_PER_CELL = 8
ITERATIONS = 40
CHECK_EVERY = 10
#: modeled stencil time per cell (a few FLOPs on a 1.5 GHz machine)
COMPUTE_NS_PER_CELL = 4.0


def heat_program(ctx):
    """One rank's time-stepping loop."""
    left = ctx.rank - 1 if ctx.rank > 0 else None
    right = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
    halo = BYTES_PER_CELL

    for step in range(ITERATIONS):
        # Post halo receives first, then send ours (classic non-deadlocking
        # exchange using nonblocking receives).
        reqs = []
        if left is not None:
            reqs.append(ctx.irecv(halo, source=left, tag=step))
        if right is not None:
            reqs.append(ctx.irecv(halo, source=right, tag=step))
        if left is not None:
            yield from ctx.send(left, halo, tag=step)
        if right is not None:
            yield from ctx.send(right, halo, tag=step)
        for req in reqs:
            yield from req.wait()

        # Stencil update over the local slab.
        yield from ctx.proc.compute(CELLS_PER_RANK * COMPUTE_NS_PER_CELL)

        # Periodic global residual check.
        if (step + 1) % CHECK_EVERY == 0:
            yield from ctx.allreduce(8)

    yield from ctx.barrier()
    return ctx.proc.env.now


def run(transport: str, nodes: int = 4) -> float:
    cluster = Cluster(granada2003(num_nodes=nodes))
    world = build_world(cluster, transport)
    finish_times = world.run(heat_program)
    return max(finish_times) / 1e6  # ms


def main() -> None:
    nodes = 4
    print(f"1-D heat equation, {nodes} ranks x {CELLS_PER_RANK} cells, "
          f"{ITERATIONS} iterations\n")
    clic_ms = run("clic", nodes)
    tcp_ms = run("tcp", nodes)
    print(f"MPI over CLIC : {clic_ms:8.2f} ms")
    print(f"MPI over TCP  : {tcp_ms:8.2f} ms")
    print(f"speedup       : {tcp_ms / clic_ms:8.2f}x  "
          "(halo exchanges dominate; CLIC's thin per-message path wins)")


if __name__ == "__main__":
    main()
