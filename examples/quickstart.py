"""Quickstart: two nodes, one message, and the paper's headline numbers.

Builds the calibrated Granada-2003 testbed (two 1.5 GHz PCs with Gigabit
Ethernet NICs on 33 MHz PCI behind a switch), sends a message over CLIC,
then measures the two numbers the paper leads with: 0-byte latency and
asymptotic bandwidth.

Run:  python examples/quickstart.py
"""

from repro import ClicEndpoint, Cluster, granada2003, pingpong, stream
from repro.workloads import clic_pair


def main() -> None:
    # --- 1. a message across the cluster ---------------------------------
    cluster = Cluster(granada2003())
    node_a, node_b = cluster.nodes
    proc_a, proc_b = node_a.spawn("app-a"), node_b.spawn("app-b")
    ep_a, ep_b = ClicEndpoint(proc_a, port=5), ClicEndpoint(proc_b, port=5)

    def sender(proc):
        print(f"[{proc.env.now/1000:8.1f} us] {proc.name}: sending 64 KB over CLIC")
        yield from ep_a.send(node_b.node_id, nbytes=64_000, tag=1)
        yield from ep_a.flush(node_b.node_id)
        print(f"[{proc.env.now/1000:8.1f} us] {proc.name}: all fragments acknowledged")

    def receiver(proc):
        msg = yield from ep_b.recv(tag=1)
        print(
            f"[{proc.env.now/1000:8.1f} us] {proc.name}: received {msg.nbytes} B "
            f"from node {msg.src_node}"
        )

    proc_a.run(sender)
    proc_b.run(receiver)
    cluster.run()

    # --- 2. the paper's headline measurements ------------------------------
    latency = pingpong(Cluster(granada2003()), clic_pair(), nbytes=0, repeats=3, warmup=1)
    print(f"\n0-byte one-way latency : {latency.one_way_ns/1000:6.1f} us   (paper: 36 us)")

    for mtu, paper in ((9000, 600), (1500, 450)):
        result = stream(Cluster(granada2003(mtu=mtu)), clic_pair(), nbytes=2_000_000)
        print(
            f"bandwidth, MTU {mtu:>4}   : {result.bandwidth_mbps:6.0f} Mb/s "
            f"(paper: ~{paper} Mb/s)"
        )


if __name__ == "__main__":
    main()
