"""Multiprogramming: several applications sharing CLIC on one cluster.

One of CLIC's design goals the user-level interfaces gave up (§1, §5):
the OS keeps mediating, so *any number of processes* can use the network
simultaneously, with protection, while compute-only processes keep
running.  This example puts on each node:

* a latency-sensitive ping-pong pair (control messages),
* a bulk transfer pair (checkpoint traffic),
* a pure-compute process (the application's number crunching),

all at once, and shows (a) everyone makes progress, (b) the compute
process loses only the CPU that interrupt/protocol processing genuinely
costs, (c) same-node messaging works alongside network traffic.

Run:  python examples/multiprogramming.py
"""

from repro import ClicEndpoint, Cluster, granada2003

BULK_BYTES = 1_000_000
PINGS = 40
COMPUTE_MS = 8.0


def main() -> None:
    cluster = Cluster(granada2003())
    node_a, node_b = cluster.nodes
    results = {}

    # -- workload 1: latency-sensitive ping-pong ---------------------------
    ping_a = node_a.spawn("ping")
    ping_b = node_b.spawn("pong")
    ep_ping_a = ClicEndpoint(ping_a, port=10)
    ep_ping_b = ClicEndpoint(ping_b, port=10)

    def pinger(proc):
        t0 = proc.env.now
        for _ in range(PINGS):
            yield from ep_ping_a.send(1, 64)
            yield from ep_ping_a.recv()
        results["ping_rtt_us"] = (proc.env.now - t0) / PINGS / 1000

    def ponger(proc):
        for _ in range(PINGS):
            yield from ep_ping_b.recv()
            yield from ep_ping_b.send(0, 64)

    # -- workload 2: bulk transfer ------------------------------------------
    bulk_a = node_a.spawn("bulk-tx")
    bulk_b = node_b.spawn("bulk-rx")
    ep_bulk_a = ClicEndpoint(bulk_a, port=11)
    ep_bulk_b = ClicEndpoint(bulk_b, port=11)

    def bulk_tx(proc):
        yield from ep_bulk_a.send(1, BULK_BYTES)

    def bulk_rx(proc):
        msg = yield from ep_bulk_b.recv()
        results["bulk_done_ms"] = proc.env.now / 1e6
        results["bulk_bytes"] = msg.nbytes

    # -- workload 3: pure compute --------------------------------------------
    crunch = node_b.spawn("crunch")

    def cruncher(proc):
        t0 = proc.env.now
        yield from proc.compute(COMPUTE_MS * 1e6)
        results["compute_wall_ms"] = (proc.env.now - t0) / 1e6

    # -- workload 4: same-node mailbox ---------------------------------------
    local_a = node_a.spawn("local-tx")
    local_b = node_a.spawn("local-rx")
    ep_local_a = ClicEndpoint(local_a, port=12)
    ep_local_b = ClicEndpoint(local_b, port=12)

    def local_tx(proc):
        yield from ep_local_a.send(0, 10_000)  # same node!

    def local_rx(proc):
        msg = yield from ep_local_b.recv()
        results["local_nbytes"] = msg.nbytes

    ping_a.run(pinger)
    ping_b.run(ponger)
    bulk_a.run(bulk_tx)
    bulk_b.run(bulk_rx)
    crunch.run(cruncher)
    local_a.run(local_tx)
    local_b.run(local_rx)
    cluster.run()

    print("all four workloads shared the cluster concurrently:\n")
    print(f"  ping-pong RTT (under load)  : {results['ping_rtt_us']:7.1f} us")
    print(f"  bulk transfer ({results['bulk_bytes']:,} B): done at "
          f"{results['bulk_done_ms']:5.1f} ms")
    print(f"  same-node message           : {results['local_nbytes']:,} B delivered")
    slowdown = results["compute_wall_ms"] / COMPUTE_MS
    print(f"  compute process             : {COMPUTE_MS:.0f} ms of work took "
          f"{results['compute_wall_ms']:.1f} ms ({slowdown:.2f}x — the "
          "interrupt/protocol tax of sharing a CPU with Gigabit traffic)")


if __name__ == "__main__":
    main()
