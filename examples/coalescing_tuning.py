"""Tuning interrupt coalescing: the paper's §2 latency/throughput dial.

"The drivers of present NICs usually allow the dynamic adjustment of
time intervals in coalesced interrupts" — this example is the tuning
session an administrator of the paper's cluster would run: sweep the
hold-off timer (the driver's ``rx-usecs``) and the frame threshold, and
watch lone-packet latency trade against interrupt rate and CPU cost
under load.

Run:  python examples/coalescing_tuning.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.cluster import Cluster
from repro.config import granada2003
from repro.workloads import clic_pair, pingpong, stream

RX_USECS = [0, 2, 5, 10, 20, 50]  # 0 = coalescing off
TRANSFER = 2_000_000


def measure(rx_usecs: int):
    def cfg():
        base = granada2003()
        nic = base.node.nic
        if rx_usecs == 0:
            nic = replace(nic, coalescing_enabled=False)
        else:
            nic = replace(nic, coalesce_timeout_ns=rx_usecs * 1000.0)
        return base.with_node(replace(base.node, nic=nic))

    latency = pingpong(Cluster(cfg()), clic_pair(), 0, repeats=2, warmup=1)
    bulk_cluster = Cluster(cfg())
    bulk = stream(bulk_cluster, clic_pair(), TRANSFER)
    rx_node = bulk_cluster.nodes[1]
    irqs = rx_node.nics[0].counters.get("irqs_asserted")
    cpu_ms = rx_node.cpu.busy.total_busy / 1e6
    return {
        "latency_us": latency.one_way_ns / 1000,
        "mbps": bulk.bandwidth_mbps,
        "irqs": irqs,
        "cpu_ms": cpu_ms,
    }


def main() -> None:
    rows = []
    for usecs in RX_USECS:
        m = measure(usecs)
        rows.append(
            (
                "off" if usecs == 0 else f"{usecs} us",
                round(m["latency_us"], 1),
                round(m["mbps"], 0),
                int(m["irqs"]),
                round(m["cpu_ms"], 2),
            )
        )
    print(
        format_table(
            ["rx-usecs", "0B latency (us)", "bulk Mb/s", "bulk irqs", "rx CPU (ms)"],
            rows,
            title=f"interrupt-coalescing sweep ({TRANSFER:,} B bulk transfer)",
        )
    )
    print(
        "\nevery microsecond of hold-off lands 1:1 on the lone packet's\n"
        "latency, while bulk throughput/IRQ count barely move — under\n"
        "sustained load the driver's batched drain already amortizes\n"
        "interrupts, so the timer only pays off against per-frame-IRQ\n"
        "(pre-NAPI) drivers; see `python -m repro.experiments interrupts`\n"
        "for that comparison.  The paper's testbed runs at ~10 us."
    )


if __name__ == "__main__":
    main()
