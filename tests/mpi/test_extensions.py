"""Tests for MPI extensions: waitall, probe/iprobe, scan, reduce_scatter."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.mpi import mpirun


def make_cluster(nodes=2):
    return Cluster(granada2003(num_nodes=nodes))


def test_waitall_gathers_results_in_order():
    cluster = make_cluster()

    def program(ctx):
        peer = 1 - ctx.rank
        reqs = [ctx.irecv(100 * (i + 1), source=peer, tag=i) for i in range(3)]
        for i in range(3):
            yield from ctx.send(peer, 100 * (i + 1), tag=i)
        msgs = yield from ctx.waitall(reqs)
        return [m.nbytes for m in msgs]

    results = mpirun(cluster, program)
    assert results == [[100, 200, 300]] * 2


def test_iprobe_sees_without_consuming():
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 500, tag=9)
            return None
        found = yield from ctx.probe(source=0, tag=9)
        still_there = ctx.iprobe(source=0, tag=9)
        msg = yield from ctx.recv(500, source=0, tag=9)
        gone = ctx.iprobe(source=0, tag=9)
        return (found.nbytes, still_there is not None, msg.nbytes, gone)

    results = mpirun(cluster, program)
    assert results[1] == (500, True, 500, None)


def test_iprobe_none_when_empty():
    cluster = make_cluster()

    def program(ctx):
        return ctx.iprobe()
        yield  # pragma: no cover

    assert mpirun(cluster, program) == [None, None]


def test_probe_on_tcp_transport_raises():
    cluster = make_cluster()

    def program(ctx):
        try:
            ctx.iprobe()
        except NotImplementedError:
            return "nope"
        return "ok"
        yield  # pragma: no cover

    assert mpirun(cluster, program, transport="tcp") == ["nope", "nope"]


@pytest.mark.parametrize("nodes", [2, 3, 5])
def test_scan_prefix_counts(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        count = yield from ctx.scan(1_000)
        return count

    assert mpirun(cluster, program) == [r + 1 for r in range(nodes)]


@pytest.mark.parametrize("nodes", [2, 4, 5])
def test_reduce_scatter_everyone_combines_all(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        count = yield from ctx.reduce_scatter(2_000)
        return count

    assert mpirun(cluster, program) == [nodes] * nodes


def test_probe_blocks_until_message(capsys=None):
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.proc.compute(200_000)  # delay the send
            yield from ctx.send(1, 64, tag=1)
            return None
        t0 = ctx.proc.env.now
        found = yield from ctx.probe(source=0, tag=1)
        waited = ctx.proc.env.now - t0
        yield from ctx.recv(64, source=0, tag=1)
        return (found.nbytes, waited > 100_000)

    results = mpirun(cluster, program)
    assert results[1] == (64, True)
