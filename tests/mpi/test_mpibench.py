"""Tests for the MPI benchmark kernels."""

import pytest

from repro.config import granada2003
from repro.workloads.mpibench import COLLECTIVES, collective_time, mpi_pingpong


def test_mpi_pingpong_measures_rtt():
    result = mpi_pingpong(granada2003(), "clic", 10_000, repeats=1, warmup=1)
    assert result.rtt_ns > 0
    assert result.nbytes == 10_000


def test_mpi_pingpong_clic_beats_tcp():
    clic = mpi_pingpong(granada2003(), "clic", 50_000)
    tcp = mpi_pingpong(granada2003(), "tcp", 50_000)
    assert clic.rtt_ns < tcp.rtt_ns


def test_collective_time_positive_for_all_ops():
    for op in COLLECTIVES:
        t = collective_time(granada2003(num_nodes=3), "clic", op, 1_000, repeats=1)
        assert t > 0, op


def test_collective_time_unknown_op_rejected():
    with pytest.raises(ValueError):
        collective_time(granada2003(), "clic", "juggle", 100)


def test_barrier_grows_logarithmically():
    t2 = collective_time(granada2003(num_nodes=2), "clic", "barrier", 0, repeats=2)
    t4 = collective_time(granada2003(num_nodes=4), "clic", "barrier", 0, repeats=2)
    t8 = collective_time(granada2003(num_nodes=8), "clic", "barrier", 0, repeats=2)
    # Rounds: 1, 2, 3 -> roughly linear in log2(P), far from linear in P.
    assert t4 < 2.8 * t2
    assert t8 < 2.0 * t4
