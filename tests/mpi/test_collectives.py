"""MPI collective tests (correctness over varying world sizes)."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.mpi import mpirun


def make_cluster(nodes):
    return Cluster(granada2003(num_nodes=nodes))


@pytest.mark.parametrize("nodes", [2, 3, 4, 5, 8])
def test_barrier_synchronizes(nodes):
    cluster = make_cluster(nodes)
    arrivals = {}

    def program(ctx):
        # Stagger the ranks, then barrier: all must leave after the
        # latest arrival.
        yield from ctx.proc.compute(ctx.rank * 10_000)
        arrivals[ctx.rank] = ctx.proc.env.now
        yield from ctx.barrier()
        return ctx.proc.env.now

    leaves = mpirun(cluster, program)
    assert min(leaves) >= max(arrivals.values())


@pytest.mark.parametrize("nodes,root", [(2, 0), (4, 0), (4, 2), (5, 3), (7, 1)])
def test_bcast_reaches_every_rank(nodes, root):
    cluster = make_cluster(nodes)

    def program(ctx):
        got = yield from ctx.bcast(4_000, root=root)
        return got

    assert mpirun(cluster, program) == [4_000] * nodes


@pytest.mark.parametrize("nodes,root", [(2, 0), (4, 1), (5, 0), (8, 7)])
def test_reduce_collects_all_contributions(nodes, root):
    cluster = make_cluster(nodes)

    def program(ctx):
        count = yield from ctx.reduce(1_000, root=root)
        return count

    results = mpirun(cluster, program)
    assert results[root] == nodes


@pytest.mark.parametrize("nodes", [2, 3, 4, 6, 8])
def test_allreduce_everyone_gets_total(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        total = yield from ctx.allreduce(2_000)
        return total

    assert mpirun(cluster, program) == [nodes] * nodes


@pytest.mark.parametrize("nodes", [2, 4, 5])
def test_gather_root_sees_all(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        result = yield from ctx.gather(500, root=0)
        return result

    results = mpirun(cluster, program)
    assert set(results[0].keys()) == set(range(nodes))
    assert all(v == 500 for v in results[0].values())
    assert results[1:] == [None] * (nodes - 1)


@pytest.mark.parametrize("nodes", [2, 4, 5])
def test_scatter_every_rank_gets_slice(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        got = yield from ctx.scatter(750, root=0)
        return got

    assert mpirun(cluster, program) == [750] * nodes


@pytest.mark.parametrize("nodes", [2, 3, 4, 6])
def test_allgather_totals(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        total = yield from ctx.allgather(100)
        return total

    assert mpirun(cluster, program) == [100 * nodes] * nodes


@pytest.mark.parametrize("nodes", [2, 4, 3, 5])
def test_alltoall_totals(nodes):
    cluster = make_cluster(nodes)

    def program(ctx):
        total = yield from ctx.alltoall(200)
        return total

    assert mpirun(cluster, program) == [200 * nodes] * nodes


def test_bcast_binomial_message_count():
    """A binomial bcast sends exactly P-1 messages in total."""
    nodes = 8
    cluster = make_cluster(nodes)

    def program(ctx):
        yield from ctx.bcast(1_000, root=0)

    mpirun(cluster, program)
    total_msgs = sum(
        node.clic.counters.get("msgs_sent") for node in cluster.nodes
    )
    assert total_msgs == nodes - 1


def test_barrier_message_complexity_logarithmic():
    """Dissemination barrier: P * ceil(log2 P) messages."""
    import math

    nodes = 8
    cluster = make_cluster(nodes)

    def program(ctx):
        yield from ctx.barrier()

    mpirun(cluster, program)
    total_msgs = sum(node.clic.counters.get("msgs_sent") for node in cluster.nodes)
    assert total_msgs == nodes * math.ceil(math.log2(nodes))


def test_collectives_over_tcp_odd_world_size():
    """Non-power-of-two worlds hit allreduce's remainder fold, which must
    tolerate the TCP binding's payload-free envelopes."""
    cluster = make_cluster(3)

    def program(ctx):
        total = yield from ctx.allreduce(500)
        return total

    assert mpirun(cluster, program, transport="tcp") == [3, 3, 3]


def test_collectives_over_tcp_transport():
    cluster = make_cluster(4)

    def program(ctx):
        yield from ctx.barrier()
        got = yield from ctx.bcast(1_000, root=0)
        total = yield from ctx.allreduce(500)
        return (got, total)

    assert mpirun(cluster, program, transport="tcp") == [(1_000, 4)] * 4
