"""MPI datatype sizing tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    Datatype,
    contiguous,
    indexed,
    struct,
    vector,
)


def test_base_types():
    assert BYTE.size == 1 and INT.size == 4 and DOUBLE.size == 8
    assert all(t.contiguous for t in (BYTE, INT, FLOAT, DOUBLE))
    assert INT.bytes_for(10) == 40
    assert INT.footprint(10) == 40


def test_bytes_for_negative_count_rejected():
    with pytest.raises(ValueError):
        INT.bytes_for(-1)


def test_invalid_datatype_rejected():
    with pytest.raises(ValueError):
        Datatype("bad", size=8, extent=4)
    with pytest.raises(ValueError):
        Datatype("bad", size=-1, extent=4)


def test_contiguous_constructor():
    row = contiguous(100, DOUBLE)
    assert row.size == 800
    assert row.extent == 800
    assert row.contiguous
    assert not row.needs_pack()


def test_vector_strided_is_not_contiguous():
    # A column of a 10x10 double matrix: 10 blocks of 1, stride 10.
    col = vector(10, 1, 10, DOUBLE)
    assert col.size == 80
    assert col.extent == 8 * (10 * 9 + 1)
    assert not col.contiguous
    assert col.needs_pack()


def test_vector_dense_is_contiguous():
    dense = vector(5, 4, 4, FLOAT)
    assert dense.size == 80
    assert dense.contiguous


def test_vector_overlap_rejected():
    with pytest.raises(ValueError):
        vector(3, 5, 4, INT)


def test_vector_empty():
    empty = vector(0, 1, 1, INT)
    assert empty.size == 0
    assert empty.bytes_for(3) == 0


def test_indexed_tiling_contiguity():
    tiled = indexed([(2, 0), (3, 2)], INT)
    assert tiled.contiguous
    gappy = indexed([(2, 0), (3, 4)], INT)
    assert not gappy.contiguous
    assert gappy.size == 20


def test_indexed_empty():
    assert indexed([], INT).size == 0


def test_struct_mixed_alignment():
    s = struct([(1, CHAR_LIKE := BYTE), (1, DOUBLE)])
    # 1 byte + 7 padding + 8 = extent 16, size 9 -> not contiguous.
    assert s.size == 9
    assert s.extent == 16
    assert not s.contiguous


def test_struct_homogeneous_is_contiguous():
    s = struct([(4, INT)])
    assert s.size == 16 and s.extent == 16
    assert s.contiguous


def test_struct_empty():
    assert struct([]).size == 0


@given(count=st.integers(min_value=0, max_value=1000))
def test_property_footprint_at_least_size(count):
    col = vector(10, 1, 10, DOUBLE)
    assert col.footprint(count) >= col.bytes_for(count) - col.size or count == 0
    assert contiguous(3, INT).footprint(count) == contiguous(3, INT).bytes_for(count)


@given(
    count=st.integers(min_value=1, max_value=50),
    blocklength=st.integers(min_value=1, max_value=8),
    extra_stride=st.integers(min_value=0, max_value=8),
)
def test_property_vector_size_and_extent(count, blocklength, extra_stride):
    stride = blocklength + extra_stride
    v = vector(count, blocklength, stride, INT)
    assert v.size == 4 * blocklength * count
    assert v.extent >= v.size
    if extra_stride == 0:
        assert v.contiguous
    elif count > 1:
        assert not v.contiguous
