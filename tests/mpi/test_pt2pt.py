"""MPI point-to-point tests over both transports."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.mpi import build_world, mpirun


def make_cluster(nodes=2):
    return Cluster(granada2003(num_nodes=nodes))


@pytest.mark.parametrize("transport", ["clic", "tcp"])
def test_send_recv_roundtrip(transport):
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 10_000, tag=3)
            msg = yield from ctx.recv(5_000, source=1, tag=4)
            return msg.nbytes
        msg = yield from ctx.recv(10_000, source=0, tag=3)
        yield from ctx.send(0, 5_000, tag=4)
        return msg.nbytes

    results = mpirun(cluster, program, transport=transport)
    assert results == [5_000, 10_000]


def test_any_source_recv_on_clic():
    cluster = make_cluster(3)

    def program(ctx):
        if ctx.rank == 0:
            sources = set()
            for _ in range(2):
                msg = yield from ctx.recv(100)
                sources.add(msg.source)
            return sources
        yield from ctx.send(0, 100)
        return None

    results = mpirun(cluster, program, transport="clic")
    assert results[0] == {1, 2}


def test_any_source_on_tcp_raises():
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            try:
                yield from ctx.recv(100)
            except NotImplementedError:
                yield from ctx.recv(100, source=1)
                return "fellback"
        else:
            yield from ctx.send(0, 100)
        return None

    results = mpirun(cluster, program, transport="tcp")
    assert results[0] == "fellback"


def test_isend_irecv_overlap():
    cluster = make_cluster()

    def program(ctx):
        peer = 1 - ctx.rank
        rreq = ctx.irecv(2_000, source=peer, tag=1)
        sreq = ctx.isend(peer, 2_000, tag=1)
        msg = yield from rreq.wait()
        yield from sreq.wait()
        return msg.nbytes

    assert mpirun(cluster, program) == [2_000, 2_000]


def test_request_test_polls_completion():
    cluster = make_cluster()

    def program(ctx):
        peer = 1 - ctx.rank
        req = ctx.irecv(100, source=peer)
        assert req.test() is None
        assert not req.done
        yield from ctx.send(peer, 100)
        msg = yield from req.wait()
        assert req.done
        assert req.test() is not None
        return msg.nbytes

    assert mpirun(cluster, program) == [100, 100]


def test_sendrecv_exchanges_without_deadlock():
    cluster = make_cluster()

    def program(ctx):
        peer = 1 - ctx.rank
        msg = yield from ctx.sendrecv(peer, 50_000, peer, 50_000)
        return msg.nbytes

    assert mpirun(cluster, program) == [50_000, 50_000]


def test_wrong_size_recv_detected():
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 200)
        else:
            yield from ctx.recv(100, source=0)

    with pytest.raises(AssertionError):
        mpirun(cluster, program)


def test_rank_out_of_range_rejected():
    cluster = make_cluster()

    def program(ctx):
        yield from ctx.send(5, 100)

    with pytest.raises(ValueError):
        mpirun(cluster, program)


def test_invalid_transport_rejected():
    with pytest.raises(ValueError):
        build_world(make_cluster(), transport="smoke-signals")


def test_tag_matching_across_messages():
    cluster = make_cluster()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 100, tag=7)
            yield from ctx.send(1, 200, tag=8)
        else:
            late = yield from ctx.recv(200, source=0, tag=8)
            early = yield from ctx.recv(100, source=0, tag=7)
            return (early.tag, late.tag)
        return None

    results = mpirun(cluster, program, transport="clic")
    assert results[1] == (7, 8)


def test_mpi_adds_library_overhead_vs_raw_clic():
    """MPI-CLIC must sit below raw CLIC (Figure 6's top two curves)."""
    from repro.workloads import clic_pair, pingpong

    def mpi_latency():
        cluster = make_cluster()
        world = build_world(cluster, "clic")

        def program(ctx):
            peer = 1 - ctx.rank
            if ctx.rank == 0:
                t0 = ctx.proc.env.now
                yield from ctx.send(peer, 0)
                yield from ctx.recv(0, source=peer)
                return ctx.proc.env.now - t0
            msg = yield from ctx.recv(0, source=peer)
            yield from ctx.send(peer, 0)
            return None

        return world.run(program)[0] / 2

    raw = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=2, warmup=1).one_way_ns
    assert mpi_latency() > raw * 0.9  # envelope bytes + per-call cost
