"""NIC-resident collective tests: correctness across world sizes and
fabric topologies, host/NIC agreement, and the zero-kernel-crossing
property the offload exists for.
"""

import pytest

from repro.cluster import Cluster
from repro.config import Topology, granada2003
from repro.faults import FaultPlan
from repro.mpi import build_world, mpirun

PAYLOAD = 1_024

TOPOLOGIES = {
    "star": None,
    "fat-tree": Topology("fat-tree", leaf_fan=2, uplink_fan=2),
    "chain": Topology("chain", leaf_fan=2),
}


def make_cluster(nodes, topology="star", trace=False, faults=None):
    cfg = granada2003(num_nodes=nodes, trace=trace)
    topo = TOPOLOGIES[topology]
    if topo is not None:
        cfg = cfg.with_topology(topo)
    return Cluster(cfg, faults=faults)


def collective_suite(cluster, mode, root=0):
    """Barrier + bcast + allreduce on one world; per-rank results."""

    def program(ctx):
        yield from ctx.barrier()
        got = yield from ctx.bcast(PAYLOAD, root=root)
        count = yield from ctx.allreduce(PAYLOAD)
        return (got, count)

    return mpirun(cluster, program, collectives=mode)


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("nodes", [2, 4, 16, 64])
def test_nic_collectives_correct_on_every_fabric(nodes, topology):
    results = collective_suite(make_cluster(nodes, topology), "nic")
    # bcast delivers the full payload and allreduce folds every rank,
    # on every rank, over every topology.
    assert results == [(PAYLOAD, nodes)] * nodes


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("nodes", [2, 4, 16])
def test_host_and_nic_modes_agree(nodes, topology):
    host = collective_suite(make_cluster(nodes, topology), "host", root=1)
    nic = collective_suite(make_cluster(nodes, topology), "nic", root=1)
    assert host == nic == [(PAYLOAD, nodes)] * nodes


@pytest.mark.parametrize("nodes", [4, 8])
def test_nic_barrier_release_ordering(nodes):
    cluster = make_cluster(nodes)
    arrivals = {}

    def program(ctx):
        # Stagger the ranks, then barrier: nobody may leave before the
        # last doorbell rings (the root only releases a full tree).
        yield from ctx.proc.compute(ctx.rank * 50_000)
        arrivals[ctx.rank] = ctx.proc.env.now
        yield from ctx.barrier()
        return ctx.proc.env.now

    leaves = mpirun(cluster, program, collectives="nic")
    assert min(leaves) >= max(arrivals.values())


def test_nic_allreduce_byte_accounting():
    nodes = 4
    cluster = make_cluster(nodes)

    def program(ctx):
        count = yield from ctx.allreduce(PAYLOAD)
        return count

    assert mpirun(cluster, program, collectives="nic") == [nodes] * nodes
    # Every rank's engine DMAs the full reduced payload to its host.
    delivered = sum(
        cluster.metrics.counter(f"node{i}.nic0.coll.bytes_delivered").value
        for i in range(nodes))
    assert delivered == nodes * PAYLOAD
    completions = sum(
        cluster.metrics.counter(f"node{i}.nic0.coll.completions").value
        for i in range(nodes))
    assert completions == nodes


def test_nic_bcast_fragments_to_mtu():
    # A payload spanning several MTUs must arrive whole on every rank.
    cluster = make_cluster(4, "fat-tree")
    big = 40_000

    def program(ctx):
        got = yield from ctx.bcast(big, root=2)
        return got

    assert mpirun(cluster, program, collectives="nic") == [big] * 4


def test_nic_mode_has_zero_kernel_crossings():
    cluster = make_cluster(4, trace=True)
    world = build_world(cluster, "clic", collectives="nic")
    t0 = []

    def program(ctx):
        yield from ctx.barrier()
        t0.append(ctx.proc.env.now)
        yield from ctx.barrier()
        yield from ctx.bcast(PAYLOAD)
        yield from ctx.allreduce(PAYLOAD)

    world.run(program)
    start = max(t0)
    syscalls = [s for s in cluster.tracer.find(name="syscall")
                if s.start_ns >= start]
    irqs = [s for s in cluster.tracer.find(name="irq")
            if s.start_ns >= start]
    assert syscalls == [], f"{len(syscalls)} syscall spans on the NIC path"
    assert irqs == [], f"{len(irqs)} IRQ spans on the NIC path"
    bh = sum(cluster.metrics.counter(f"node{i}.kernel.bh.scheduled").value
             for i in range(4))
    assert bh == 0, f"{bh} bottom halves scheduled in nic mode"


def test_host_mode_does_cross_the_kernel():
    # The negative control: the same tracer query must light up for the
    # host algorithms, or the zero-crossing assertion proves nothing.
    cluster = make_cluster(4, trace=True)
    world = build_world(cluster, "clic", collectives="host")
    t0 = []

    def program(ctx):
        yield from ctx.barrier()
        t0.append(ctx.proc.env.now)
        yield from ctx.barrier()

    world.run(program)
    start = max(t0)
    syscalls = [s for s in cluster.tracer.find(name="syscall")
                if s.start_ns >= start]
    assert syscalls, "host barrier ran without a single syscall?"


def test_nic_mode_rejects_faulty_fabric():
    cluster = make_cluster(2, faults=FaultPlan.uniform(0.01))
    with pytest.raises(ValueError, match="fault-free"):
        build_world(cluster, "clic", collectives="nic")


def test_unknown_collectives_mode_rejected():
    with pytest.raises(ValueError, match="collectives"):
        build_world(make_cluster(2), "clic", collectives="offload")
