"""PVM layer tests."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.pvm import PvmTask, pvm_pair
from repro.workloads import pingpong, tcp_pair


def make_cluster():
    return Cluster(granada2003())


def test_pvm_roundtrip():
    cluster = make_cluster()
    result = pingpong(cluster, pvm_pair(cluster.cfg.pvm), 10_000, repeats=1, warmup=0)
    assert result.rtt_ns > 0


def test_pvm_slower_than_raw_tcp():
    """Figure 6: PVM (pack copies + daemon route) sits below MPI/TCP."""
    n = 100_000
    pvm = pingpong(make_cluster(), pvm_pair(granada2003().pvm), n, repeats=1, warmup=1)
    tcp = pingpong(make_cluster(), tcp_pair(), n, repeats=1, warmup=1)
    assert pvm.bandwidth_mbps < tcp.bandwidth_mbps


def test_direct_route_faster_than_daemon_route():
    n = 50_000
    daemon = pingpong(
        make_cluster(), pvm_pair(granada2003().pvm, direct_route=False), n, repeats=1, warmup=1
    )
    direct = pingpong(
        make_cluster(), pvm_pair(granada2003().pvm, direct_route=True), n, repeats=1, warmup=1
    )
    assert direct.rtt_ns < daemon.rtt_ns


def test_pack_copy_charges_memory_traffic():
    cluster = make_cluster()
    pingpong(cluster, pvm_pair(cluster.cfg.pvm), 50_000, repeats=1, warmup=0)
    mem = cluster.nodes[0].memory
    # pack on send + unpack on recv crossed the memory bus.
    assert mem.counters.get("cpu_copy_bytes") >= 2 * 50_000
