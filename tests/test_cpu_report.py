"""Tests for the CPU-time breakdown reporting."""

import pytest

from repro.analysis import breakdown_table, categorize, cpu_breakdown
from repro.config import CpuParams
from repro.hw import Cpu, PRIO_KERNEL, PRIO_USER
from repro.sim import Environment


def test_categorize_known_prefixes():
    assert categorize("clic_tx") == "protocol"
    assert categorize("tcp_rx") == "protocol"
    assert categorize("drv_rx_dma") == "driver rx"
    assert categorize("drv_rx_skb") == "driver rx"
    assert categorize("drv_irq") == "interrupts"
    assert categorize("irq_entry") == "interrupts"
    assert categorize("s2u") == "copies"
    assert categorize("user.app") == "application"
    assert categorize("via_poll") == "polling"
    assert categorize("mpi_call") == "middleware"
    assert categorize("weird_thing") == "other"


def test_cpu_breakdown_aggregates_work_labels():
    env = Environment()
    cpu = Cpu(env, CpuParams())

    def work(env):
        yield from cpu.execute(100, PRIO_KERNEL, label="clic_tx")
        yield from cpu.execute(50, PRIO_KERNEL, label="clic_rx")
        yield from cpu.execute(25, PRIO_USER, label="user.app")

    env.run(env.process(work(env)))
    b = cpu_breakdown(cpu)
    assert b["protocol"] == 150
    assert b["application"] == 25


def test_breakdown_ignores_non_work_counters():
    env = Environment()
    cpu = Cpu(env, CpuParams())
    cpu.counters.add("preemptions", 5)
    assert cpu_breakdown(cpu) == {}


def test_breakdown_table_renders_multiple_cpus():
    env = Environment()
    a, b = Cpu(env, CpuParams(), "a"), Cpu(env, CpuParams(), "b")

    def work(env):
        yield from a.execute(1000, PRIO_KERNEL, label="tcp_rx")
        yield from b.execute(500, PRIO_KERNEL, label="clic_rx")

    env.run(env.process(work(env)))
    out = breakdown_table({"A": a, "B": b})
    assert "protocol" in out
    assert "TOTAL busy" in out
    assert "1.0" in out  # 1000 ns -> 1.0 us


def test_breakdown_table_with_wall_percentage():
    env = Environment()
    cpu = Cpu(env, CpuParams())

    def work(env):
        yield from cpu.execute(5_000, PRIO_KERNEL, label="clic_rx")

    env.run(env.process(work(env)))
    out = breakdown_table({"rx": cpu}, wall_ns=10_000)
    assert "50.0" in out  # 50% of wall


def test_breakdown_table_empty_rejected():
    with pytest.raises(ValueError):
        breakdown_table({})


def test_occupy_time_is_labeled():
    env = Environment()
    cpu = Cpu(env, CpuParams())

    def inner(env):
        yield env.timeout(777)

    def work(env):
        yield from cpu.occupy(inner(env), label="drv_rx_dma")

    env.run(env.process(work(env)))
    assert cpu.counters.get("work.drv_rx_dma") == 777
    assert cpu_breakdown(cpu)["driver rx"] == 777
