"""Tests for the analysis helpers: tables, plots, metrics, timelines."""

import pytest

from repro.analysis import (
    crossover_size,
    format_series_table,
    format_table,
    interpolate_half_bandwidth,
    logx_plot,
    ratio_at,
    size_reaching,
)
from repro.workloads import SweepSeries
from repro.workloads.pingpong import PingPongResult


def make_series(label, points):
    s = SweepSeries(label)
    for nbytes, mbps in points:
        one_way = nbytes * 8 / (mbps * 1e6) * 1e9 if mbps else 1.0
        s.points.append(PingPongResult(nbytes=nbytes, repeats=1, rtt_ns=2 * one_way))
    return s


def test_format_table_alignment_and_floats():
    out = format_table(["a", "long-header"], [(1, 2.5), (333, 4.0)])
    lines = out.splitlines()
    assert "a" in lines[0] and "long-header" in lines[0]
    assert "2.5" in out and "4.0" in out
    # All rows equal width.
    widths = {len(line) for line in lines}
    assert len(widths) == 1


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [(1,)])


def test_format_table_title():
    out = format_table(["x"], [(1,)], title="T")
    assert out.splitlines()[0] == "T"


def test_series_table_requires_common_grid():
    s1 = make_series("one", [(10, 1.0), (100, 2.0)])
    s2 = make_series("two", [(10, 1.0), (999, 2.0)])
    with pytest.raises(ValueError):
        format_series_table([s1, s2])
    with pytest.raises(ValueError):
        format_series_table([])


def test_series_table_contents():
    s1 = make_series("one", [(10, 1.0), (100, 2.0)])
    s2 = make_series("two", [(10, 3.0), (100, 4.0)])
    out = format_series_table([s1, s2])
    assert "one" in out and "two" in out and "100" in out


def test_logx_plot_renders_markers_and_legend():
    s = make_series("clic", [(10, 100.0), (1000, 300.0), (100000, 500.0)])
    out = logx_plot([s], width=40, height=10)
    assert "o clic" in out
    assert out.count("o") >= 3  # three plotted points (plus legend char)
    assert "1e3" in out


def test_logx_plot_validates_input():
    with pytest.raises(ValueError):
        logx_plot([])
    s = make_series("zero", [(0, 1.0)])
    with pytest.raises(ValueError):
        logx_plot([s])


def test_half_bandwidth_interpolation():
    sizes = [10, 100, 1_000, 10_000]
    mbps = [10.0, 40.0, 90.0, 100.0]
    half = interpolate_half_bandwidth(sizes, mbps)  # target 50
    assert 100 < half < 1_000
    # Already above half at the first point.
    assert interpolate_half_bandwidth([10, 100], [60.0, 100.0]) == 10.0
    with pytest.raises(ValueError):
        interpolate_half_bandwidth([], [])


def test_size_reaching():
    sizes = [10, 100, 1_000]
    mbps = [10.0, 50.0, 100.0]
    assert size_reaching(sizes, mbps, 50.0) == pytest.approx(100.0)
    assert size_reaching(sizes, mbps, 500.0) is None
    mid = size_reaching(sizes, mbps, 75.0)
    assert 100 < mid < 1_000


def test_crossover_and_ratio():
    sizes = [1, 2, 3]
    a = [10.0, 10.0, 5.0]
    b = [1.0, 1.0, 8.0]
    assert crossover_size(sizes, a, b) == 3
    assert crossover_size(sizes, a, [0.0, 0.0, 0.0]) is None
    assert ratio_at(sizes, a, b, 1) == 10.0
    with pytest.raises(ZeroDivisionError):
        ratio_at(sizes, a, [0.0, 1.0, 1.0], 1)


def test_timeline_extraction_from_real_trace():
    from repro.analysis import extract_packet_timeline
    from repro.cluster import Cluster
    from repro.config import granada2003
    from repro.protocols.clic import ClicEndpoint

    cluster = Cluster(granada2003(trace=True))
    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    ep0, ep1 = ClicEndpoint(p0, 1), ClicEndpoint(p1, 1)

    def a(proc):
        yield from ep0.send(1, 1400)

    def b(proc):
        yield from ep1.recv()

    p0.run(a)
    done = p1.run(b)
    cluster.env.run(done)
    pkt = [r for r in cluster.trace.records if r.event == "driver_tx"][0].detail["pkt"]
    timeline = extract_packet_timeline(cluster.trace, pkt, "node0", "node1")
    names = [s.name for s in timeline.stages]
    assert "NIC DMA + flight" in names
    assert timeline.total_us > 0
    # Stages are contiguous and ordered.
    for first, second in zip(timeline.stages, timeline.stages[1:]):
        assert first.end_ns == second.start_ns
    rows = timeline.as_rows()
    assert len(rows) == len(timeline.stages)
    with pytest.raises(KeyError):
        timeline.stage("nonexistent")


def test_timeline_missing_packet_raises():
    from repro.analysis import extract_packet_timeline
    from repro.sim import Trace

    with pytest.raises(ValueError, match="missing"):
        extract_packet_timeline(Trace(enabled=True), 999, "node0", "node1")


def _synthetic_trace(irq_times):
    """A minimal trace with all Figure-7 anchor records for packet 7."""
    from repro.sim import Trace

    trace = Trace(enabled=True)
    trace.record(0.0, "node0.kernel", "syscall_enter", label="clic_send")
    trace.record(5.0, "node0.eth0", "driver_tx", pkt=7)
    for t in irq_times:
        trace.record(t, "node1.eth0", "irq_begin")
    trace.record(25.0, "node1.eth0", "driver_rx", pkt=7, t0=20.0)
    trace.record(30.0, "node1.clic", "module_rx", pkt=7)
    trace.record(40.0, "node1.kernel", "wake", label="recv:1")
    return trace


def test_timeline_picks_latest_irq_begin_before_driver_rx():
    """Regression: the guard used to be a tautology (r.time <= r.time)
    and with coalesced interrupts any earlier irq_begin could win."""
    from repro.analysis import extract_packet_timeline

    trace = _synthetic_trace(irq_times=[10.0, 20.0, 35.0])
    timeline = extract_packet_timeline(trace, 7, "node0", "node1")
    irq_stage = timeline.stage("receiver: driver interrupt (NIC->system copy)")
    # The 20.0 irq_begin (latest at or before driver_rx@25.0) anchors the
    # stage — not 10.0 (earlier) and not 35.0 (after the drain).
    assert irq_stage.start_ns == 20.0
    assert irq_stage.end_ns == 25.0


def test_timeline_no_irq_before_driver_rx_raises():
    from repro.analysis import extract_packet_timeline

    trace = _synthetic_trace(irq_times=[35.0])  # only after driver_rx
    with pytest.raises(ValueError, match="irq_begin"):
        extract_packet_timeline(trace, 7, "node0", "node1")


def test_span_extraction_matches_record_extraction():
    """The span port must not move any Figure-7 stage boundary."""
    from repro.analysis import (
        extract_packet_timeline,
        extract_packet_timeline_from_spans,
    )
    from repro.experiments import fig7

    cluster, pkt_id, _, _ = fig7.capture(direct_rx=False)
    from_records = extract_packet_timeline(cluster.trace, pkt_id, "node0", "node1")
    from_spans = extract_packet_timeline_from_spans(cluster.tracer, pkt_id, "node0", "node1")
    assert [(s.name, s.start_ns, s.end_ns) for s in from_records.stages] == [
        (s.name, s.start_ns, s.end_ns) for s in from_spans.stages
    ]
